//! The cycle-driven mesh simulator.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use snnmap_hw::{Board, ChipId, Coord, FaultMap, Mesh};
use snnmap_trace::{NocEvent, TraceEvent, TraceSink};

use crate::{NocError, NocStats};

/// Input ports of a router. `LOCAL` receives injections from the bound
/// core; the four directional ports receive from mesh neighbours.
const LOCAL: usize = 0;
const NORTH: usize = 1; // from x−1
const SOUTH: usize = 2; // from x+1
const WEST: usize = 3; // from y−1
const EAST: usize = 4; // from y+1
const NUM_PORTS: usize = 5;

/// Output directions (EJECT delivers to the bound core).
const OUT_NORTH: usize = 0; // toward x−1
const OUT_SOUTH: usize = 1; // toward x+1
const OUT_WEST: usize = 2; // toward y−1
const OUT_EAST: usize = 3; // toward y+1
const OUT_EJECT: usize = 4;
const NUM_OUTS: usize = 5;

/// Routing policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Routing {
    /// Deterministic dimension-ordered routing: resolve the row (x)
    /// offset first, then the column (y). Deadlock-free.
    Xy,
    /// Random minimal ("staircase") routing: at every router with both
    /// offsets unresolved, pick one of the two productive directions
    /// uniformly — the executable counterpart of the paper's `Expe`
    /// congestion model (Algorithm 4). The choice is re-drawn on every
    /// blocked attempt, which in practice avoids the cyclic waits
    /// adaptive minimal routing can otherwise produce.
    RandomMinimal,
}

/// Simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NocConfig {
    /// Per-input-port FIFO depth; full queues exert backpressure.
    pub queue_capacity: usize,
    /// Routing policy.
    pub routing: Routing,
    /// RNG seed (used by [`Routing::RandomMinimal`]).
    pub seed: u64,
}

impl Default for NocConfig {
    fn default() -> Self {
        Self { queue_capacity: 8, routing: Routing::Xy, seed: 0 }
    }
}

/// Marks a `(router, destination)` table entry with no healthy path.
const NH_UNREACHABLE: u8 = u8::MAX;

#[derive(Debug, Clone, Copy)]
struct Packet {
    src: Coord,
    dst: Coord,
    injected_at: u64,
    /// Router-to-router moves taken so far (the path length on delivery).
    hops: u32,
}

#[derive(Debug, Default)]
struct Router {
    inputs: [VecDeque<Packet>; NUM_PORTS],
    /// Round-robin arbitration pointer per output.
    rr: [usize; NUM_OUTS],
}

/// A cycle-driven simulator of the paper's hardware model (§3.1): a 2D
/// mesh of routers with bidirectional links, bounded input FIFOs,
/// round-robin arbitration and one packet per output port per cycle.
///
/// Each spike is a single-flit packet. A packet traverses one router per
/// cycle when unblocked, so an unloaded `d`-hop route delivers in `d + 1`
/// cycles — matching the analytic latency `(d+1)·L_r + d·L_w` for
/// `L_r = 1` up to the small wire term.
///
/// See the crate docs for an end-to-end example.
#[derive(Debug)]
pub struct NocSim {
    mesh: Mesh,
    routers: Vec<Router>,
    cycle: u64,
    in_flight: u64,
    config: NocConfig,
    rng: ChaCha8Rng,
    stats: NocStats,
    /// Scratch: staged moves `(from_router, to_router, to_port)`.
    moves: Vec<(usize, usize, usize)>,
    /// Scratch: staged incoming counts per (router, port).
    incoming: Vec<u8>,
    /// `dead[r]`: router `r` sits on a dead core (empty when fault-free).
    dead: Vec<bool>,
    /// Fault-aware routing table: `next_hop[dst_idx * n + r]` is the
    /// output direction at router `r` toward destination `dst_idx`,
    /// [`NH_UNREACHABLE`] when no healthy path exists. `None` on
    /// fault-free networks (minimal routing needs no table).
    next_hop: Option<Vec<u8>>,
    /// `chip[r]`: the chip owning router `r` (empty on boardless
    /// networks). Used to count inter-chip link traversals.
    chip: Vec<ChipId>,
}

impl NocSim {
    /// Creates an idle network.
    pub fn new(mesh: Mesh, config: NocConfig) -> Self {
        assert!(config.queue_capacity > 0, "queues need capacity");
        let n = mesh.len();
        Self {
            mesh,
            routers: (0..n).map(|_| Router::default()).collect(),
            cycle: 0,
            in_flight: 0,
            config,
            rng: ChaCha8Rng::seed_from_u64(config.seed),
            stats: NocStats::new(mesh),
            moves: Vec::new(),
            incoming: vec![0; n * NUM_PORTS],
            dead: Vec::new(),
            next_hop: None,
            chip: Vec::new(),
        }
    }

    /// Creates an idle network over faulty hardware: packets are refused
    /// at dead cores, and routing follows precomputed shortest paths over
    /// the *healthy* subgraph (healthy cores, healthy links). Where the
    /// fault-free minimal route survives, it is preferred — XY order —
    /// so a fault-free map routes identically to [`Routing::Xy`]; around
    /// faults the path detours, and the extra hops are counted in
    /// [`NocStats::detour_hops`]. The configured [`Routing`] policy is
    /// overridden by the table.
    ///
    /// # Errors
    ///
    /// [`NocError::MeshMismatch`] when the fault map covers a different
    /// mesh.
    pub fn with_faults(
        mesh: Mesh,
        config: NocConfig,
        faults: &FaultMap,
    ) -> Result<Self, NocError> {
        if faults.mesh() != mesh {
            return Err(NocError::MeshMismatch { sim: mesh, faults: faults.mesh() });
        }
        let mut sim = Self::new(mesh, config);
        sim.dead = mesh.iter().map(|c| faults.is_dead(c)).collect();
        sim.next_hop = Some(build_next_hop(mesh, faults));
        Ok(sim)
    }

    /// Creates an idle network over a multi-chip board, optionally
    /// degraded by a fault map. Inter-chip links are the expensive
    /// resource, so routing minimizes boundary crossings *first* and hop
    /// count second: on a healthy board every route still takes its
    /// Manhattan minimum of hops (a monotone path cannot avoid the
    /// boundaries between its endpoints' chips), but detours forced by
    /// faults stay inside the packet's chip row/column wherever a
    /// same-length alternative exists. Crossings are counted in
    /// [`NocStats::interchip_traversals`]. Dead cores refuse traffic as
    /// in [`NocSim::with_faults`].
    ///
    /// # Errors
    ///
    /// [`NocError::BoardMismatch`] when the board covers a different mesh,
    /// [`NocError::MeshMismatch`] when the fault map does.
    pub fn with_board(
        mesh: Mesh,
        config: NocConfig,
        faults: Option<&FaultMap>,
        board: &Board,
    ) -> Result<Self, NocError> {
        if board.mesh() != mesh {
            return Err(NocError::BoardMismatch { sim: mesh, board: board.mesh() });
        }
        if let Some(fm) = faults {
            if fm.mesh() != mesh {
                return Err(NocError::MeshMismatch { sim: mesh, faults: fm.mesh() });
            }
        }
        let mut sim = Self::new(mesh, config);
        if let Some(fm) = faults {
            sim.dead = mesh.iter().map(|c| fm.is_dead(c)).collect();
        }
        sim.next_hop = Some(build_next_hop_board(mesh, faults, board));
        sim.chip = board.chip_table();
        Ok(sim)
    }

    /// The simulated mesh.
    pub fn mesh(&self) -> Mesh {
        self.mesh
    }

    /// Current cycle count.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Packets currently queued in the network.
    pub fn in_flight(&self) -> u64 {
        self.in_flight
    }

    /// Run statistics so far.
    pub fn stats(&self) -> &NocStats {
        &self.stats
    }

    /// Emits the simulator's counters as a single `noc` trace event
    /// (cycles, injected/delivered/rejected packets, link traversals,
    /// latency totals, detour hops).
    ///
    /// Guarded by [`TraceSink::enabled`], so a
    /// [`snnmap_trace::NoopSink`] costs nothing; call it at whatever
    /// cadence the analysis needs — once after [`NocSim::drain`] for a
    /// run summary, or every N cycles for a time series.
    pub fn record_trace<S: TraceSink + ?Sized>(&self, sink: &mut S) {
        if !sink.enabled() {
            return;
        }
        sink.record(&TraceEvent::Noc(NocEvent {
            cycles: self.cycle,
            injected: self.stats.injected,
            delivered: self.stats.delivered,
            rejected: self.stats.rejected,
            traversals: self.stats.traversals.iter().sum(),
            total_latency: self.stats.total_latency,
            max_latency: self.stats.max_latency,
            detour_hops: self.stats.detour_hops,
        }));
    }

    /// Injects one spike from the core at `src` toward the core at `dst`.
    /// Returns `Ok(false)` (and counts a rejection) when the source's
    /// local queue is full — backpressure reaching the core.
    ///
    /// # Errors
    ///
    /// [`NocError::OutOfBounds`] when either coordinate is outside the
    /// mesh; on a fault-aware network (see [`NocSim::with_faults`]),
    /// [`NocError::DeadCore`] when either endpoint is dead and
    /// [`NocError::Unroutable`] when the fault pattern disconnects them.
    pub fn inject(&mut self, src: Coord, dst: Coord) -> Result<bool, NocError> {
        for c in [src, dst] {
            if !self.mesh.contains(c) {
                return Err(NocError::OutOfBounds { coord: c });
            }
        }
        let r = self.mesh.index_of(src);
        if !self.dead.is_empty() {
            for c in [src, dst] {
                if self.dead[self.mesh.index_of(c)] {
                    return Err(NocError::DeadCore { coord: c });
                }
            }
        }
        if let Some(table) = &self.next_hop {
            if table[self.mesh.index_of(dst) * self.mesh.len() + r] == NH_UNREACHABLE {
                return Err(NocError::Unroutable { src, dst });
            }
        }
        let q = &mut self.routers[r].inputs[LOCAL];
        if q.len() >= self.config.queue_capacity {
            self.stats.rejected += 1;
            return Ok(false);
        }
        q.push_back(Packet { src, dst, injected_at: self.cycle, hops: 0 });
        self.stats.injected += 1;
        self.in_flight += 1;
        Ok(true)
    }

    /// Desired output port for a packet sitting at router `at`.
    fn route(&mut self, at: Coord, dst: Coord) -> usize {
        if at == dst {
            return OUT_EJECT;
        }
        if let Some(table) = &self.next_hop {
            let out = table[self.mesh.index_of(dst) * self.mesh.len() + self.mesh.index_of(at)];
            // Injection rejects unroutable pairs and faults are static, so
            // every in-flight packet has a table entry at every hop.
            debug_assert_ne!(out, NH_UNREACHABLE, "in-flight packet lost its route");
            return out as usize;
        }
        let dx = dst.x as i32 - at.x as i32;
        let dy = dst.y as i32 - at.y as i32;
        let x_out = if dx < 0 { OUT_NORTH } else { OUT_SOUTH };
        let y_out = if dy < 0 { OUT_WEST } else { OUT_EAST };
        match self.config.routing {
            Routing::Xy => {
                if dx != 0 {
                    x_out
                } else {
                    y_out
                }
            }
            Routing::RandomMinimal => {
                if dx != 0 && dy != 0 {
                    if self.rng.gen_bool(0.5) {
                        x_out
                    } else {
                        y_out
                    }
                } else if dx != 0 {
                    x_out
                } else {
                    y_out
                }
            }
        }
    }

    /// Neighbour router index and its receiving input port for an output
    /// direction.
    fn link(&self, from: Coord, out: usize) -> (usize, usize) {
        let (to, in_port) = match out {
            OUT_NORTH => (Coord::new(from.x - 1, from.y), SOUTH),
            OUT_SOUTH => (Coord::new(from.x + 1, from.y), NORTH),
            OUT_WEST => (Coord::new(from.x, from.y - 1), EAST),
            OUT_EAST => (Coord::new(from.x, from.y + 1), WEST),
            _ => unreachable!("eject has no link"),
        };
        debug_assert!(self.mesh.contains(to), "minimal routing never leaves the mesh");
        (self.mesh.index_of(to), in_port)
    }

    /// Advances the network one cycle: every router arbitrates each
    /// output port among the input queues whose head requests it, moving
    /// at most one packet per output, subject to the downstream queue's
    /// capacity. Ejections deliver immediately.
    pub fn step(&mut self) {
        self.moves.clear();
        self.incoming.iter_mut().for_each(|c| *c = 0);

        for r in 0..self.routers.len() {
            let here = self.mesh.coord_of_index(r);
            // Desired output of each head-of-queue packet.
            let mut desires = [usize::MAX; NUM_PORTS];
            let heads: [Option<Packet>; NUM_PORTS] =
                std::array::from_fn(|p| self.routers[r].inputs[p].front().copied());
            for (desire, head) in desires.iter_mut().zip(heads) {
                if let Some(pkt) = head {
                    *desire = self.route(here, pkt.dst);
                }
            }
            let mut popped = [false; NUM_PORTS];
            for out in 0..NUM_OUTS {
                // Round-robin scan of input ports for this output.
                let start = self.routers[r].rr[out];
                let mut winner = None;
                for k in 0..NUM_PORTS {
                    let p = (start + k) % NUM_PORTS;
                    if !popped[p] && desires[p] == out {
                        winner = Some(p);
                        break;
                    }
                }
                let Some(p) = winner else { continue };
                if out == OUT_EJECT {
                    let pkt = self.routers[r].inputs[p].pop_front().expect("head exists");
                    popped[p] = true;
                    self.routers[r].rr[out] = (p + 1) % NUM_PORTS;
                    self.stats.traversals[r] += 1;
                    let latency = self.cycle - pkt.injected_at + 1;
                    self.stats.delivered += 1;
                    self.stats.total_latency += latency;
                    self.stats.max_latency = self.stats.max_latency.max(latency);
                    // Path length beyond the fault-free minimum = hops
                    // forced by routing around faults.
                    self.stats.detour_hops +=
                        u64::from(pkt.hops.saturating_sub(pkt.src.manhattan(pkt.dst)));
                    self.in_flight -= 1;
                } else {
                    let (to, in_port) = self.link(here, out);
                    let slot = to * NUM_PORTS + in_port;
                    let room = self.config.queue_capacity
                        > self.routers[to].inputs[in_port].len() + self.incoming[slot] as usize;
                    if room {
                        self.incoming[slot] += 1;
                        self.moves.push((r, to, in_port));
                        // Mark the pop now so another output cannot take
                        // the same head; actual pop happens in commit.
                        popped[p] = true;
                        self.routers[r].rr[out] = (p + 1) % NUM_PORTS;
                        // Remember which port to pop from in commit order.
                        self.moves.last_mut().expect("just pushed").0 = r * NUM_PORTS + p;
                    }
                }
            }
        }

        // Commit staged moves: pop from the recorded input port, push to
        // the downstream queue.
        for k in 0..self.moves.len() {
            let (from_slot, to, in_port) = self.moves[k];
            let (r, p) = (from_slot / NUM_PORTS, from_slot % NUM_PORTS);
            let mut pkt = self.routers[r].inputs[p].pop_front().expect("staged head exists");
            pkt.hops += 1;
            self.stats.traversals[r] += 1;
            if !self.chip.is_empty() && self.chip[r] != self.chip[to] {
                self.stats.interchip_traversals += 1;
            }
            self.routers[to].inputs[in_port].push_back(pkt);
        }

        self.cycle += 1;
    }

    /// Steps until the network is empty or `max_cycles` pass; returns
    /// whether everything was delivered.
    ///
    /// A saturated [`Routing::RandomMinimal`] network can deadlock — a
    /// cycle of full input queues whose heads each want the next full
    /// queue — and no amount of further cycles resolves it. Once no
    /// packet moves or delivers for a full mesh-diameter window the
    /// drain bails out early instead of burning the rest of the bound.
    pub fn drain(&mut self, max_cycles: u64) -> bool {
        let stall_window = u64::from(self.mesh.rows()) + u64::from(self.mesh.cols()) + 1;
        let mut stalled = 0u64;
        for _ in 0..max_cycles {
            if self.in_flight == 0 {
                return true;
            }
            let delivered_before = self.stats.delivered;
            self.step();
            if self.stats.delivered > delivered_before || !self.moves.is_empty() {
                stalled = 0;
            } else {
                stalled += 1;
                if stalled >= stall_window {
                    return false;
                }
            }
        }
        self.in_flight == 0
    }
}

/// Neighbour coordinate in an output direction, if inside the mesh.
fn neighbor_coord(mesh: Mesh, from: Coord, out: usize) -> Option<Coord> {
    let (x, y) = (from.x as i32, from.y as i32);
    let (nx, ny) = match out {
        OUT_NORTH => (x - 1, y),
        OUT_SOUTH => (x + 1, y),
        OUT_WEST => (x, y - 1),
        OUT_EAST => (x, y + 1),
        _ => return None,
    };
    if nx < 0 || ny < 0 || nx >= mesh.rows() as i32 || ny >= mesh.cols() as i32 {
        return None;
    }
    Some(Coord::new(nx as u16, ny as u16))
}

/// Builds the per-destination next-hop table over the healthy subgraph:
/// one BFS per destination, then a deterministic direction choice per
/// router — the XY-preferred productive direction when it lies on a
/// shortest healthy path, else the first distance-decreasing direction in
/// N/S/W/E order. Every entry strictly decreases the BFS distance, so
/// fault-aware routes are loop-free by construction.
fn build_next_hop(mesh: Mesh, faults: &FaultMap) -> Vec<u8> {
    let n = mesh.len();
    let mut table = vec![NH_UNREACHABLE; n * n];
    let mut dist = vec![u32::MAX; n];
    let mut queue: VecDeque<usize> = VecDeque::new();
    for dst_idx in 0..n {
        let dst = mesh.coord_of_index(dst_idx);
        if faults.is_dead(dst) {
            continue;
        }
        dist.iter_mut().for_each(|d| *d = u32::MAX);
        dist[dst_idx] = 0;
        queue.clear();
        queue.push_back(dst_idx);
        while let Some(r) = queue.pop_front() {
            let here = mesh.coord_of_index(r);
            for out in 0..4 {
                let Some(nc) = neighbor_coord(mesh, here, out) else { continue };
                let q = mesh.index_of(nc);
                if faults.is_dead(nc) || !faults.link_ok(here, nc) || dist[q] != u32::MAX {
                    continue;
                }
                dist[q] = dist[r] + 1;
                queue.push_back(q);
            }
        }
        for r in 0..n {
            if r == dst_idx {
                table[dst_idx * n + r] = OUT_EJECT as u8;
                continue;
            }
            if dist[r] == u32::MAX {
                continue;
            }
            let here = mesh.coord_of_index(r);
            for out in preferred_dirs(here, dst) {
                let Some(nc) = neighbor_coord(mesh, here, out) else { continue };
                let q = mesh.index_of(nc);
                if !faults.is_dead(nc)
                    && faults.link_ok(here, nc)
                    && dist[q] != u32::MAX
                    && dist[q] + 1 == dist[r]
                {
                    table[dst_idx * n + r] = out as u8;
                    break;
                }
            }
        }
    }
    table
}

/// Builds the chip-aware next-hop table: a deterministic Dijkstra per
/// destination over the healthy subgraph with lexicographic
/// `(inter-chip crossings, hops)` path cost — a crossing is weighted at
/// `n` (more than any possible hop count), so routes cross chip
/// boundaries only when no cheaper path exists. Direction choice per
/// router follows the same XY-preferred order as [`build_next_hop`]
/// among cost-optimal successors, and every entry strictly decreases the
/// weighted distance, so routes are loop-free by construction.
fn build_next_hop_board(mesh: Mesh, faults: Option<&FaultMap>, board: &Board) -> Vec<u8> {
    let n = mesh.len();
    let chips = board.chip_table();
    // Any simple path has < n hops, so weighting a crossing at n makes
    // one crossing dearer than any number of intra-chip hops.
    let edge = |a: usize, b: usize| -> u64 {
        if chips[a] == chips[b] {
            1
        } else {
            n as u64 + 1
        }
    };
    let healthy = |c: Coord| faults.map_or(true, |fm| !fm.is_dead(c));
    let link_ok = |a: Coord, b: Coord| faults.map_or(true, |fm| fm.link_ok(a, b));
    let mut table = vec![NH_UNREACHABLE; n * n];
    let mut dist = vec![u64::MAX; n];
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    for dst_idx in 0..n {
        let dst = mesh.coord_of_index(dst_idx);
        if !healthy(dst) {
            continue;
        }
        dist.iter_mut().for_each(|d| *d = u64::MAX);
        dist[dst_idx] = 0;
        heap.clear();
        heap.push(Reverse((0, dst_idx)));
        while let Some(Reverse((d, r))) = heap.pop() {
            if d > dist[r] {
                continue;
            }
            let here = mesh.coord_of_index(r);
            for out in 0..4 {
                let Some(nc) = neighbor_coord(mesh, here, out) else { continue };
                let q = mesh.index_of(nc);
                if !healthy(nc) || !link_ok(here, nc) {
                    continue;
                }
                let nd = d + edge(r, q);
                if nd < dist[q] {
                    dist[q] = nd;
                    heap.push(Reverse((nd, q)));
                }
            }
        }
        for r in 0..n {
            if r == dst_idx {
                table[dst_idx * n + r] = OUT_EJECT as u8;
                continue;
            }
            if dist[r] == u64::MAX {
                continue;
            }
            let here = mesh.coord_of_index(r);
            for out in preferred_dirs(here, dst) {
                let Some(nc) = neighbor_coord(mesh, here, out) else { continue };
                let q = mesh.index_of(nc);
                if healthy(nc)
                    && link_ok(here, nc)
                    && dist[q] != u64::MAX
                    && dist[q] + edge(r, q) == dist[r]
                {
                    table[dst_idx * n + r] = out as u8;
                    break;
                }
            }
        }
    }
    table
}

/// Direction preference at `at` toward `dst`: the XY productive
/// directions first (x, then y — or y first when the x offset is already
/// resolved), then the remaining directions in fixed N/S/W/E order.
fn preferred_dirs(at: Coord, dst: Coord) -> [usize; 4] {
    let dx = dst.x as i32 - at.x as i32;
    let dy = dst.y as i32 - at.y as i32;
    let x_out = if dx < 0 { OUT_NORTH } else { OUT_SOUTH };
    let y_out = if dy < 0 { OUT_WEST } else { OUT_EAST };
    let mut order = [x_out, y_out, 0, 0];
    if dx == 0 {
        order.swap(0, 1);
    }
    let mut k = 2;
    for out in [OUT_NORTH, OUT_SOUTH, OUT_WEST, OUT_EAST] {
        if out != order[0] && out != order[1] {
            order[k] = out;
            k += 1;
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(rows: u16, cols: u16) -> NocSim {
        NocSim::new(Mesh::new(rows, cols).unwrap(), NocConfig::default())
    }

    #[test]
    fn single_packet_latency_is_hops_plus_one() {
        for (src, dst, d) in [
            (Coord::new(0, 0), Coord::new(0, 3), 3u64),
            (Coord::new(0, 0), Coord::new(3, 3), 6),
            (Coord::new(2, 2), Coord::new(2, 2), 0),
            (Coord::new(3, 0), Coord::new(0, 0), 3),
        ] {
            let mut s = sim(4, 4);
            s.inject(src, dst).unwrap();
            assert!(s.drain(100));
            assert_eq!(s.stats().delivered, 1);
            assert_eq!(s.stats().max_latency, d + 1, "{src} -> {dst}");
        }
    }

    #[test]
    fn record_trace_mirrors_the_stats() {
        use snnmap_trace::{MemorySink, NoopSink};
        let mut s = sim(4, 4);
        s.inject(Coord::new(0, 0), Coord::new(3, 3)).unwrap();
        s.inject(Coord::new(1, 1), Coord::new(2, 0)).unwrap();
        assert!(s.drain(100));
        s.record_trace(&mut NoopSink); // must be a no-op
        let mut sink = MemorySink::new();
        s.record_trace(&mut sink);
        assert_eq!(sink.len(), 1);
        match &sink.events()[0] {
            TraceEvent::Noc(e) => {
                assert_eq!(e.cycles, s.cycle());
                assert_eq!(e.injected, s.stats().injected);
                assert_eq!(e.delivered, 2);
                assert_eq!(e.traversals, s.stats().traversals.iter().sum::<u64>());
                assert_eq!(e.max_latency, s.stats().max_latency);
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn traversals_equal_route_length() {
        let mut s = sim(5, 5);
        s.inject(Coord::new(0, 0), Coord::new(2, 3)).unwrap();
        s.drain(100);
        let total: u64 = s.stats().traversals.iter().sum();
        assert_eq!(total, 6); // 5 hops + source router
    }

    #[test]
    fn xy_route_loads_the_expected_routers() {
        let mut s = sim(4, 4);
        s.inject(Coord::new(0, 0), Coord::new(2, 2)).unwrap();
        s.drain(100);
        // XY (x first): (0,0) (1,0) (2,0) (2,1) (2,2).
        let expect = [(0, 0), (1, 0), (2, 0), (2, 1), (2, 2)];
        for (x, y) in expect {
            let idx = s.mesh().index_of(Coord::new(x, y));
            assert_eq!(s.stats().traversals[idx], 1, "({x},{y})");
        }
        assert_eq!(s.stats().traversals.iter().sum::<u64>(), 5);
    }

    #[test]
    fn conservation_under_load() {
        let mut s = sim(4, 4);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..500 {
            let src = Coord::new(rng.gen_range(0..4), rng.gen_range(0..4));
            let dst = Coord::new(rng.gen_range(0..4), rng.gen_range(0..4));
            s.inject(src, dst).unwrap();
            s.step();
        }
        assert!(s.drain(10_000));
        let st = s.stats();
        assert_eq!(st.delivered + st.rejected, 500);
        assert_eq!(st.injected, st.delivered);
        assert_eq!(s.in_flight(), 0);
    }

    #[test]
    fn backpressure_rejects_when_local_queue_full() {
        let mut s = NocSim::new(
            Mesh::new(2, 2).unwrap(),
            NocConfig { queue_capacity: 2, ..NocConfig::default() },
        );
        let src = Coord::new(0, 0);
        let dst = Coord::new(1, 1);
        assert!(s.inject(src, dst).unwrap());
        assert!(s.inject(src, dst).unwrap());
        assert!(!s.inject(src, dst).unwrap(), "third injection must be rejected");
        assert_eq!(s.stats().rejected, 1);
        assert!(s.drain(100));
    }

    #[test]
    fn random_minimal_is_deterministic_per_seed_and_delivers() {
        let cfg = NocConfig { routing: Routing::RandomMinimal, seed: 9, queue_capacity: 8 };
        let run = || {
            let mut s = NocSim::new(Mesh::new(6, 6).unwrap(), cfg);
            let mut rng = ChaCha8Rng::seed_from_u64(3);
            for _ in 0..200 {
                let src = Coord::new(rng.gen_range(0..6), rng.gen_range(0..6));
                let dst = Coord::new(rng.gen_range(0..6), rng.gen_range(0..6));
                s.inject(src, dst).unwrap();
                s.step();
            }
            assert!(s.drain(10_000));
            s.stats().clone()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert_eq!(a.delivered + a.rejected, 200);
    }

    #[test]
    fn random_minimal_spreads_over_the_rectangle() {
        // Many packets over the same long diagonal flow: XY loads only the
        // L-shaped path; random minimal touches interior routers too.
        let count_loaded = |routing| {
            let mut s = NocSim::new(
                Mesh::new(6, 6).unwrap(),
                NocConfig { routing, seed: 4, queue_capacity: 64 },
            );
            for _ in 0..64 {
                s.inject(Coord::new(0, 0), Coord::new(5, 5)).unwrap();
                s.step();
            }
            assert!(s.drain(10_000));
            s.stats().traversals.iter().filter(|&&t| t > 0).count()
        };
        let xy = count_loaded(Routing::Xy);
        let rm = count_loaded(Routing::RandomMinimal);
        assert_eq!(xy, 11); // 10 hops + source
        assert!(rm > xy, "random minimal should use more routers: {rm} vs {xy}");
    }

    #[test]
    fn inject_reports_typed_errors() {
        // Satellite check: inject returns typed errors, not a bare bool.
        let mesh = Mesh::new(3, 3).unwrap();
        let mut plain = NocSim::new(mesh, NocConfig::default());
        assert_eq!(
            plain.inject(Coord::new(0, 0), Coord::new(3, 0)),
            Err(NocError::OutOfBounds { coord: Coord::new(3, 0) })
        );
        assert_eq!(
            plain.inject(Coord::new(9, 9), Coord::new(0, 0)),
            Err(NocError::OutOfBounds { coord: Coord::new(9, 9) })
        );

        let mut fm = FaultMap::new(mesh);
        fm.kill_core(Coord::new(1, 1)).unwrap();
        let mut s = NocSim::with_faults(mesh, NocConfig::default(), &fm).unwrap();
        assert_eq!(
            s.inject(Coord::new(1, 1), Coord::new(0, 0)),
            Err(NocError::DeadCore { coord: Coord::new(1, 1) })
        );
        assert_eq!(
            s.inject(Coord::new(0, 0), Coord::new(1, 1)),
            Err(NocError::DeadCore { coord: Coord::new(1, 1) })
        );
        assert_eq!(s.stats().injected, 0, "failed injections must not count");

        assert!(matches!(
            NocSim::with_faults(Mesh::new(2, 2).unwrap(), NocConfig::default(), &fm),
            Err(NocError::MeshMismatch { .. })
        ));
    }

    #[test]
    fn disconnected_destination_is_unroutable() {
        // Kill the middle column: left and right thirds are severed.
        let mesh = Mesh::new(3, 3).unwrap();
        let mut fm = FaultMap::new(mesh);
        for x in 0..3u16 {
            fm.kill_core(Coord::new(x, 1)).unwrap();
        }
        let mut s = NocSim::with_faults(mesh, NocConfig::default(), &fm).unwrap();
        assert_eq!(
            s.inject(Coord::new(0, 0), Coord::new(0, 2)),
            Err(NocError::Unroutable { src: Coord::new(0, 0), dst: Coord::new(0, 2) })
        );
        // Same-side traffic still flows.
        assert!(s.inject(Coord::new(0, 0), Coord::new(2, 0)).unwrap());
        assert!(s.drain(100));
        assert_eq!(s.stats().delivered, 1);
    }

    #[test]
    fn enclosed_destination_is_unroutable_without_looping() {
        // The destination itself is healthy but every core around it is
        // dead: injection must fail fast with a typed error rather than
        // loop or panic, and the network must stay empty.
        let mesh = Mesh::new(5, 5).unwrap();
        let mut fm = FaultMap::new(mesh);
        for c in [Coord::new(1, 2), Coord::new(3, 2), Coord::new(2, 1), Coord::new(2, 3)] {
            fm.kill_core(c).unwrap();
        }
        let mut s = NocSim::with_faults(mesh, NocConfig::default(), &fm).unwrap();
        assert_eq!(
            s.inject(Coord::new(0, 0), Coord::new(2, 2)),
            Err(NocError::Unroutable { src: Coord::new(0, 0), dst: Coord::new(2, 2) })
        );
        // Outbound traffic from inside the enclosure is equally refused.
        assert_eq!(
            s.inject(Coord::new(2, 2), Coord::new(0, 0)),
            Err(NocError::Unroutable { src: Coord::new(2, 2), dst: Coord::new(0, 0) })
        );
        assert_eq!(s.stats().injected, 0);
        assert_eq!(s.in_flight(), 0);
        assert!(s.drain(10), "an empty network drains immediately");
        // Traffic that skirts the enclosure still flows, and its forced
        // detours are accounted.
        assert!(s.inject(Coord::new(2, 0), Coord::new(2, 4)).unwrap());
        assert!(s.drain(100));
        assert_eq!(s.stats().delivered, 1);
        assert!(s.stats().detour_hops >= 2, "detour {}", s.stats().detour_hops);
    }

    #[test]
    fn link_severed_destination_is_unroutable() {
        // All four links of a healthy core fail: the core is alive but
        // unreachable, and injection toward it reports Unroutable.
        let mesh = Mesh::new(3, 3).unwrap();
        let mut fm = FaultMap::new(mesh);
        let dst = Coord::new(1, 1);
        for nb in [Coord::new(0, 1), Coord::new(2, 1), Coord::new(1, 0), Coord::new(1, 2)] {
            fm.fail_link(dst, nb).unwrap();
        }
        let mut s = NocSim::with_faults(mesh, NocConfig::default(), &fm).unwrap();
        assert_eq!(
            s.inject(Coord::new(0, 0), dst),
            Err(NocError::Unroutable { src: Coord::new(0, 0), dst })
        );
        // A self-addressed spike never leaves the router, so it still
        // delivers.
        assert!(s.inject(dst, dst).unwrap());
        assert!(s.drain(10));
        assert_eq!(s.stats().delivered, 1);
    }

    #[test]
    fn faulty_link_forces_a_counted_detour() {
        let mesh = Mesh::new(3, 3).unwrap();
        let mut fm = FaultMap::new(mesh);
        // Sever the XY route (0,0)->(0,1)->(0,2) at its first link.
        fm.fail_link(Coord::new(0, 0), Coord::new(0, 1)).unwrap();
        let mut s = NocSim::with_faults(mesh, NocConfig::default(), &fm).unwrap();
        s.inject(Coord::new(0, 0), Coord::new(0, 2)).unwrap();
        assert!(s.drain(100));
        assert_eq!(s.stats().delivered, 1);
        // Shortest healthy path is 4 hops vs the Manhattan 2.
        assert_eq!(s.stats().detour_hops, 2);
        assert_eq!(s.stats().max_latency, 5);
    }

    #[test]
    fn dead_core_region_is_routed_around() {
        let mesh = Mesh::new(5, 5).unwrap();
        let mut fm = FaultMap::new(mesh);
        // A dead plus-shape in the centre.
        for c in [
            Coord::new(2, 2),
            Coord::new(1, 2),
            Coord::new(3, 2),
            Coord::new(2, 1),
            Coord::new(2, 3),
        ] {
            fm.kill_core(c).unwrap();
        }
        let mut s = NocSim::with_faults(mesh, NocConfig::default(), &fm).unwrap();
        s.inject(Coord::new(2, 0), Coord::new(2, 4)).unwrap();
        assert!(s.drain(100));
        assert_eq!(s.stats().delivered, 1);
        assert!(s.stats().detour_hops >= 2, "detour {}", s.stats().detour_hops);
    }

    #[test]
    fn fault_free_fault_map_reproduces_xy() {
        // An empty fault map must route exactly like plain XY.
        let mesh = Mesh::new(4, 4).unwrap();
        let fm = FaultMap::new(mesh);
        let mut a = NocSim::new(mesh, NocConfig::default());
        let mut b = NocSim::with_faults(mesh, NocConfig::default(), &fm).unwrap();
        for s in [&mut a, &mut b] {
            s.inject(Coord::new(0, 0), Coord::new(2, 2)).unwrap();
            s.inject(Coord::new(3, 3), Coord::new(1, 0)).unwrap();
            assert!(s.drain(100));
        }
        assert_eq!(a.stats(), b.stats());
        assert_eq!(b.stats().detour_hops, 0);
    }

    #[test]
    fn fault_aware_run_is_deterministic() {
        let mesh = Mesh::new(6, 6).unwrap();
        let mut fm = FaultMap::new(mesh);
        fm.kill_core(Coord::new(2, 2)).unwrap();
        fm.kill_core(Coord::new(3, 4)).unwrap();
        fm.fail_link(Coord::new(0, 0), Coord::new(0, 1)).unwrap();
        let run = || {
            let mut s = NocSim::with_faults(mesh, NocConfig::default(), &fm).unwrap();
            let mut rng = ChaCha8Rng::seed_from_u64(8);
            let mut sent = 0;
            while sent < 150 {
                let src = Coord::new(rng.gen_range(0..6), rng.gen_range(0..6));
                let dst = Coord::new(rng.gen_range(0..6), rng.gen_range(0..6));
                if s.inject(src, dst).is_ok() {
                    sent += 1;
                }
                s.step();
            }
            assert!(s.drain(10_000));
            s.stats().clone()
        };
        let a = run();
        assert_eq!(a, run());
        assert_eq!(a.delivered + a.rejected, a.injected + a.rejected);
    }

    #[test]
    fn board_routing_counts_interchip_crossings() {
        let board = Board::parse("2x2/2x2").unwrap();
        let mesh = board.mesh();
        let mut s = NocSim::with_board(mesh, NocConfig::default(), None, &board).unwrap();
        s.inject(Coord::new(0, 0), Coord::new(3, 3)).unwrap();
        assert!(s.drain(100));
        assert_eq!(s.stats().delivered, 1);
        assert_eq!(s.stats().detour_hops, 0, "fault-free board routes stay minimal");
        // Any minimal route from chip (0,0) to chip (1,1) crosses exactly
        // one row and one column boundary.
        assert_eq!(s.stats().interchip_traversals, 2);
        // Intra-chip traffic never crosses.
        let mut s = NocSim::with_board(mesh, NocConfig::default(), None, &board).unwrap();
        s.inject(Coord::new(0, 0), Coord::new(1, 1)).unwrap();
        assert!(s.drain(100));
        assert_eq!(s.stats().interchip_traversals, 0);
    }

    #[test]
    fn board_routing_detours_within_the_chip_row() {
        // The direct link crosses the column boundary and is severed;
        // both 3-hop detours exist, but only the northern one (through
        // the packet's own chip row) keeps a single crossing — the
        // southern detour would cross three boundaries. Plain XY-first
        // fault routing picks south; board-aware routing must pick north.
        let board = Board::parse("2x2/2x2").unwrap();
        let mesh = board.mesh();
        let mut fm = FaultMap::new(mesh);
        fm.fail_link(Coord::new(1, 1), Coord::new(1, 2)).unwrap();
        let mut s =
            NocSim::with_board(mesh, NocConfig::default(), Some(&fm), &board).unwrap();
        s.inject(Coord::new(1, 1), Coord::new(1, 2)).unwrap();
        assert!(s.drain(100));
        assert_eq!(s.stats().delivered, 1);
        assert_eq!(s.stats().detour_hops, 2);
        assert_eq!(s.stats().interchip_traversals, 1);
        assert_eq!(s.stats().traversals[mesh.index_of(Coord::new(0, 1))], 1);
        assert_eq!(s.stats().traversals[mesh.index_of(Coord::new(2, 1))], 0);
    }

    #[test]
    fn dead_chip_refuses_traffic_and_is_routed_around() {
        let board = Board::parse("2x2/2x2").unwrap();
        let mesh = board.mesh();
        let mut fm = FaultMap::new(mesh);
        fm.kill_chip(&board, 1).unwrap(); // rows 0-1, cols 2-3
        let mut s =
            NocSim::with_board(mesh, NocConfig::default(), Some(&fm), &board).unwrap();
        assert_eq!(
            s.inject(Coord::new(0, 0), Coord::new(0, 3)),
            Err(NocError::DeadCore { coord: Coord::new(0, 3) })
        );
        // Traffic between survivors flows around the dead chip at the
        // minimal two crossings.
        assert!(s.inject(Coord::new(0, 0), Coord::new(2, 3)).unwrap());
        assert!(s.drain(100));
        assert_eq!(s.stats().delivered, 1);
        assert_eq!(s.stats().detour_hops, 0);
        assert_eq!(s.stats().interchip_traversals, 2);
    }

    #[test]
    fn with_board_rejects_mismatched_meshes() {
        let board = Board::parse("2x2/2x2").unwrap();
        let other = Mesh::new(2, 2).unwrap();
        assert!(matches!(
            NocSim::with_board(other, NocConfig::default(), None, &board),
            Err(NocError::BoardMismatch { .. })
        ));
        let fm = FaultMap::new(other);
        assert!(matches!(
            NocSim::with_board(board.mesh(), NocConfig::default(), Some(&fm), &board),
            Err(NocError::MeshMismatch { .. })
        ));
    }

    #[test]
    fn board_aware_run_is_deterministic() {
        let board = Board::parse("2x3/2x2").unwrap();
        let mesh = board.mesh();
        let mut fm = FaultMap::new(mesh);
        fm.kill_core(Coord::new(1, 2)).unwrap();
        fm.fail_link(Coord::new(2, 0), Coord::new(2, 1)).unwrap();
        let run = || {
            let mut s =
                NocSim::with_board(mesh, NocConfig::default(), Some(&fm), &board).unwrap();
            let mut rng = ChaCha8Rng::seed_from_u64(5);
            let mut sent = 0;
            while sent < 120 {
                let src = Coord::new(rng.gen_range(0..4), rng.gen_range(0..6));
                let dst = Coord::new(rng.gen_range(0..4), rng.gen_range(0..6));
                if s.inject(src, dst).is_ok() {
                    sent += 1;
                }
                s.step();
            }
            assert!(s.drain(10_000));
            s.stats().clone()
        };
        let a = run();
        assert_eq!(a, run());
        assert!(a.interchip_traversals > 0);
    }

    #[test]
    fn contention_serializes_on_shared_output() {
        // Two packets from different inputs racing for the same output
        // port: both delivered, one delayed.
        let mut s = sim(3, 3);
        s.inject(Coord::new(0, 1), Coord::new(2, 1)).unwrap();
        s.inject(Coord::new(1, 0), Coord::new(1, 2)).unwrap();
        assert!(s.drain(100));
        assert_eq!(s.stats().delivered, 2);
    }
}
