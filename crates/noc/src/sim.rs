//! The cycle-driven mesh simulator.

use std::collections::VecDeque;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use snnmap_hw::{Coord, Mesh};

use crate::NocStats;

/// Input ports of a router. `LOCAL` receives injections from the bound
/// core; the four directional ports receive from mesh neighbours.
const LOCAL: usize = 0;
const NORTH: usize = 1; // from x−1
const SOUTH: usize = 2; // from x+1
const WEST: usize = 3; // from y−1
const EAST: usize = 4; // from y+1
const NUM_PORTS: usize = 5;

/// Output directions (EJECT delivers to the bound core).
const OUT_NORTH: usize = 0; // toward x−1
const OUT_SOUTH: usize = 1; // toward x+1
const OUT_WEST: usize = 2; // toward y−1
const OUT_EAST: usize = 3; // toward y+1
const OUT_EJECT: usize = 4;
const NUM_OUTS: usize = 5;

/// Routing policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Routing {
    /// Deterministic dimension-ordered routing: resolve the row (x)
    /// offset first, then the column (y). Deadlock-free.
    Xy,
    /// Random minimal ("staircase") routing: at every router with both
    /// offsets unresolved, pick one of the two productive directions
    /// uniformly — the executable counterpart of the paper's `Expe`
    /// congestion model (Algorithm 4). The choice is re-drawn on every
    /// blocked attempt, which in practice avoids the cyclic waits
    /// adaptive minimal routing can otherwise produce.
    RandomMinimal,
}

/// Simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NocConfig {
    /// Per-input-port FIFO depth; full queues exert backpressure.
    pub queue_capacity: usize,
    /// Routing policy.
    pub routing: Routing,
    /// RNG seed (used by [`Routing::RandomMinimal`]).
    pub seed: u64,
}

impl Default for NocConfig {
    fn default() -> Self {
        Self { queue_capacity: 8, routing: Routing::Xy, seed: 0 }
    }
}

#[derive(Debug, Clone, Copy)]
struct Packet {
    dst: Coord,
    injected_at: u64,
}

#[derive(Debug, Default)]
struct Router {
    inputs: [VecDeque<Packet>; NUM_PORTS],
    /// Round-robin arbitration pointer per output.
    rr: [usize; NUM_OUTS],
}

/// A cycle-driven simulator of the paper's hardware model (§3.1): a 2D
/// mesh of routers with bidirectional links, bounded input FIFOs,
/// round-robin arbitration and one packet per output port per cycle.
///
/// Each spike is a single-flit packet. A packet traverses one router per
/// cycle when unblocked, so an unloaded `d`-hop route delivers in `d + 1`
/// cycles — matching the analytic latency `(d+1)·L_r + d·L_w` for
/// `L_r = 1` up to the small wire term.
///
/// See the crate docs for an end-to-end example.
#[derive(Debug)]
pub struct NocSim {
    mesh: Mesh,
    routers: Vec<Router>,
    cycle: u64,
    in_flight: u64,
    config: NocConfig,
    rng: ChaCha8Rng,
    stats: NocStats,
    /// Scratch: staged moves `(from_router, to_router, to_port)`.
    moves: Vec<(usize, usize, usize)>,
    /// Scratch: staged incoming counts per (router, port).
    incoming: Vec<u8>,
}

impl NocSim {
    /// Creates an idle network.
    pub fn new(mesh: Mesh, config: NocConfig) -> Self {
        assert!(config.queue_capacity > 0, "queues need capacity");
        let n = mesh.len();
        Self {
            mesh,
            routers: (0..n).map(|_| Router::default()).collect(),
            cycle: 0,
            in_flight: 0,
            config,
            rng: ChaCha8Rng::seed_from_u64(config.seed),
            stats: NocStats::new(mesh),
            moves: Vec::new(),
            incoming: vec![0; n * NUM_PORTS],
        }
    }

    /// The simulated mesh.
    pub fn mesh(&self) -> Mesh {
        self.mesh
    }

    /// Current cycle count.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Packets currently queued in the network.
    pub fn in_flight(&self) -> u64 {
        self.in_flight
    }

    /// Run statistics so far.
    pub fn stats(&self) -> &NocStats {
        &self.stats
    }

    /// Injects one spike from the core at `src` toward the core at `dst`.
    /// Returns `false` (and counts a rejection) when the source's local
    /// queue is full — backpressure reaching the core.
    ///
    /// # Panics
    ///
    /// Panics if either coordinate is outside the mesh.
    pub fn inject(&mut self, src: Coord, dst: Coord) -> bool {
        assert!(self.mesh.contains(src) && self.mesh.contains(dst));
        let r = self.mesh.index_of(src);
        let q = &mut self.routers[r].inputs[LOCAL];
        if q.len() >= self.config.queue_capacity {
            self.stats.rejected += 1;
            return false;
        }
        q.push_back(Packet { dst, injected_at: self.cycle });
        self.stats.injected += 1;
        self.in_flight += 1;
        true
    }

    /// Desired output port for a packet sitting at router `at`.
    fn route(&mut self, at: Coord, dst: Coord) -> usize {
        if at == dst {
            return OUT_EJECT;
        }
        let dx = dst.x as i32 - at.x as i32;
        let dy = dst.y as i32 - at.y as i32;
        let x_out = if dx < 0 { OUT_NORTH } else { OUT_SOUTH };
        let y_out = if dy < 0 { OUT_WEST } else { OUT_EAST };
        match self.config.routing {
            Routing::Xy => {
                if dx != 0 {
                    x_out
                } else {
                    y_out
                }
            }
            Routing::RandomMinimal => {
                if dx != 0 && dy != 0 {
                    if self.rng.gen_bool(0.5) {
                        x_out
                    } else {
                        y_out
                    }
                } else if dx != 0 {
                    x_out
                } else {
                    y_out
                }
            }
        }
    }

    /// Neighbour router index and its receiving input port for an output
    /// direction.
    fn link(&self, from: Coord, out: usize) -> (usize, usize) {
        let (to, in_port) = match out {
            OUT_NORTH => (Coord::new(from.x - 1, from.y), SOUTH),
            OUT_SOUTH => (Coord::new(from.x + 1, from.y), NORTH),
            OUT_WEST => (Coord::new(from.x, from.y - 1), EAST),
            OUT_EAST => (Coord::new(from.x, from.y + 1), WEST),
            _ => unreachable!("eject has no link"),
        };
        debug_assert!(self.mesh.contains(to), "minimal routing never leaves the mesh");
        (self.mesh.index_of(to), in_port)
    }

    /// Advances the network one cycle: every router arbitrates each
    /// output port among the input queues whose head requests it, moving
    /// at most one packet per output, subject to the downstream queue's
    /// capacity. Ejections deliver immediately.
    pub fn step(&mut self) {
        self.moves.clear();
        self.incoming.iter_mut().for_each(|c| *c = 0);

        for r in 0..self.routers.len() {
            let here = self.mesh.coord_of_index(r);
            // Desired output of each head-of-queue packet.
            let mut desires = [usize::MAX; NUM_PORTS];
            let heads: [Option<Packet>; NUM_PORTS] =
                std::array::from_fn(|p| self.routers[r].inputs[p].front().copied());
            for (desire, head) in desires.iter_mut().zip(heads) {
                if let Some(pkt) = head {
                    *desire = self.route(here, pkt.dst);
                }
            }
            let mut popped = [false; NUM_PORTS];
            for out in 0..NUM_OUTS {
                // Round-robin scan of input ports for this output.
                let start = self.routers[r].rr[out];
                let mut winner = None;
                for k in 0..NUM_PORTS {
                    let p = (start + k) % NUM_PORTS;
                    if !popped[p] && desires[p] == out {
                        winner = Some(p);
                        break;
                    }
                }
                let Some(p) = winner else { continue };
                if out == OUT_EJECT {
                    let pkt = self.routers[r].inputs[p].pop_front().expect("head exists");
                    popped[p] = true;
                    self.routers[r].rr[out] = (p + 1) % NUM_PORTS;
                    self.stats.traversals[r] += 1;
                    let latency = self.cycle - pkt.injected_at + 1;
                    self.stats.delivered += 1;
                    self.stats.total_latency += latency;
                    self.stats.max_latency = self.stats.max_latency.max(latency);
                    self.in_flight -= 1;
                } else {
                    let (to, in_port) = self.link(here, out);
                    let slot = to * NUM_PORTS + in_port;
                    let room = self.config.queue_capacity
                        > self.routers[to].inputs[in_port].len() + self.incoming[slot] as usize;
                    if room {
                        self.incoming[slot] += 1;
                        self.moves.push((r, to, in_port));
                        // Mark the pop now so another output cannot take
                        // the same head; actual pop happens in commit.
                        popped[p] = true;
                        self.routers[r].rr[out] = (p + 1) % NUM_PORTS;
                        // Remember which port to pop from in commit order.
                        self.moves.last_mut().expect("just pushed").0 = r * NUM_PORTS + p;
                    }
                }
            }
        }

        // Commit staged moves: pop from the recorded input port, push to
        // the downstream queue.
        for k in 0..self.moves.len() {
            let (from_slot, to, in_port) = self.moves[k];
            let (r, p) = (from_slot / NUM_PORTS, from_slot % NUM_PORTS);
            let pkt = self.routers[r].inputs[p].pop_front().expect("staged head exists");
            self.stats.traversals[r] += 1;
            self.routers[to].inputs[in_port].push_back(pkt);
        }

        self.cycle += 1;
    }

    /// Steps until the network is empty or `max_cycles` pass; returns
    /// whether everything was delivered.
    pub fn drain(&mut self, max_cycles: u64) -> bool {
        for _ in 0..max_cycles {
            if self.in_flight == 0 {
                return true;
            }
            self.step();
        }
        self.in_flight == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(rows: u16, cols: u16) -> NocSim {
        NocSim::new(Mesh::new(rows, cols).unwrap(), NocConfig::default())
    }

    #[test]
    fn single_packet_latency_is_hops_plus_one() {
        for (src, dst, d) in [
            (Coord::new(0, 0), Coord::new(0, 3), 3u64),
            (Coord::new(0, 0), Coord::new(3, 3), 6),
            (Coord::new(2, 2), Coord::new(2, 2), 0),
            (Coord::new(3, 0), Coord::new(0, 0), 3),
        ] {
            let mut s = sim(4, 4);
            s.inject(src, dst);
            assert!(s.drain(100));
            assert_eq!(s.stats().delivered, 1);
            assert_eq!(s.stats().max_latency, d + 1, "{src} -> {dst}");
        }
    }

    #[test]
    fn traversals_equal_route_length() {
        let mut s = sim(5, 5);
        s.inject(Coord::new(0, 0), Coord::new(2, 3));
        s.drain(100);
        let total: u64 = s.stats().traversals.iter().sum();
        assert_eq!(total, 6); // 5 hops + source router
    }

    #[test]
    fn xy_route_loads_the_expected_routers() {
        let mut s = sim(4, 4);
        s.inject(Coord::new(0, 0), Coord::new(2, 2));
        s.drain(100);
        // XY (x first): (0,0) (1,0) (2,0) (2,1) (2,2).
        let expect = [(0, 0), (1, 0), (2, 0), (2, 1), (2, 2)];
        for (x, y) in expect {
            let idx = s.mesh().index_of(Coord::new(x, y));
            assert_eq!(s.stats().traversals[idx], 1, "({x},{y})");
        }
        assert_eq!(s.stats().traversals.iter().sum::<u64>(), 5);
    }

    #[test]
    fn conservation_under_load() {
        let mut s = sim(4, 4);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..500 {
            let src = Coord::new(rng.gen_range(0..4), rng.gen_range(0..4));
            let dst = Coord::new(rng.gen_range(0..4), rng.gen_range(0..4));
            s.inject(src, dst);
            s.step();
        }
        assert!(s.drain(10_000));
        let st = s.stats();
        assert_eq!(st.delivered + st.rejected, 500);
        assert_eq!(st.injected, st.delivered);
        assert_eq!(s.in_flight(), 0);
    }

    #[test]
    fn backpressure_rejects_when_local_queue_full() {
        let mut s = NocSim::new(
            Mesh::new(2, 2).unwrap(),
            NocConfig { queue_capacity: 2, ..NocConfig::default() },
        );
        let src = Coord::new(0, 0);
        let dst = Coord::new(1, 1);
        assert!(s.inject(src, dst));
        assert!(s.inject(src, dst));
        assert!(!s.inject(src, dst), "third injection must be rejected");
        assert_eq!(s.stats().rejected, 1);
        assert!(s.drain(100));
    }

    #[test]
    fn random_minimal_is_deterministic_per_seed_and_delivers() {
        let cfg = NocConfig { routing: Routing::RandomMinimal, seed: 9, queue_capacity: 8 };
        let run = || {
            let mut s = NocSim::new(Mesh::new(6, 6).unwrap(), cfg);
            let mut rng = ChaCha8Rng::seed_from_u64(3);
            for _ in 0..200 {
                let src = Coord::new(rng.gen_range(0..6), rng.gen_range(0..6));
                let dst = Coord::new(rng.gen_range(0..6), rng.gen_range(0..6));
                s.inject(src, dst);
                s.step();
            }
            assert!(s.drain(10_000));
            s.stats().clone()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert_eq!(a.delivered + a.rejected, 200);
    }

    #[test]
    fn random_minimal_spreads_over_the_rectangle() {
        // Many packets over the same long diagonal flow: XY loads only the
        // L-shaped path; random minimal touches interior routers too.
        let count_loaded = |routing| {
            let mut s = NocSim::new(
                Mesh::new(6, 6).unwrap(),
                NocConfig { routing, seed: 4, queue_capacity: 64 },
            );
            for _ in 0..64 {
                s.inject(Coord::new(0, 0), Coord::new(5, 5));
                s.step();
            }
            assert!(s.drain(10_000));
            s.stats().traversals.iter().filter(|&&t| t > 0).count()
        };
        let xy = count_loaded(Routing::Xy);
        let rm = count_loaded(Routing::RandomMinimal);
        assert_eq!(xy, 11); // 10 hops + source
        assert!(rm > xy, "random minimal should use more routers: {rm} vs {xy}");
    }

    #[test]
    fn contention_serializes_on_shared_output() {
        // Two packets from different inputs racing for the same output
        // port: both delivered, one delayed.
        let mut s = sim(3, 3);
        s.inject(Coord::new(0, 1), Coord::new(2, 1));
        s.inject(Coord::new(1, 0), Coord::new(1, 2));
        assert!(s.drain(100));
        assert_eq!(s.stats().delivered, 2);
    }
}
