//! The `/metrics` Prometheus page.
//!
//! Rendered with the shared [`snnmap_metrics::PromText`] builder, so the
//! daemon's operational gauges live in the same `snnmap_` namespace (and
//! follow the same escaping/formatting rules) as the placement-quality
//! metrics from `snnmap eval --format prometheus`.

use std::sync::atomic::Ordering::SeqCst;

use snnmap_core::par;
use snnmap_metrics::PromText;

use crate::job::JobState;
use crate::server::{lock, Shared};

/// Renders the current operational metrics as a Prometheus text page.
pub(crate) fn render(shared: &Shared) -> String {
    let states = [
        JobState::Queued,
        JobState::Running,
        JobState::Done,
        JobState::Failed,
        JobState::Cancelled,
    ];
    let mut counts = [0usize; 5];
    for job in lock(&shared.jobs).values() {
        let state = job.state();
        if let Some(slot) = states.iter().position(|s| *s == state) {
            counts[slot] += 1;
        }
    }
    let queue_depth = lock(&shared.queue).len();

    let mut prom = PromText::new();
    prom.header("serve_jobs", "gauge", "Jobs known to the daemon, by lifecycle state.");
    for (state, count) in states.iter().zip(counts) {
        prom.sample("serve_jobs", &[("state", state.as_str())], count as f64);
    }
    prom.header("serve_queue_depth", "gauge", "Jobs waiting for a worker.");
    prom.sample("serve_queue_depth", &[], queue_depth as f64);
    prom.header("serve_queue_capacity", "gauge", "Bound on the job queue.");
    prom.sample("serve_queue_capacity", &[], shared.queue_capacity as f64);
    prom.header("serve_workers", "gauge", "Worker pool size.");
    prom.sample("serve_workers", &[], shared.workers as f64);
    prom.header("serve_workers_busy", "gauge", "Workers currently mapping a job.");
    prom.sample("serve_workers_busy", &[], shared.busy_workers.load(SeqCst) as f64);
    prom.header(
        "serve_jobs_submitted_total",
        "counter",
        "Jobs accepted over the daemon's lifetime (including recovered).",
    );
    prom.sample("serve_jobs_submitted_total", &[], shared.submitted_total.load(SeqCst) as f64);
    prom.header(
        "serve_spool_retries_total",
        "counter",
        "Transient spool/checkpoint I/O failures absorbed by retry-with-backoff.",
    );
    prom.sample("serve_spool_retries_total", &[], shared.spool.retries() as f64);
    prom.header(
        "serve_io_timeouts_total",
        "counter",
        "Connections answered 408 after exhausting the read deadline.",
    );
    prom.sample("serve_io_timeouts_total", &[], shared.timeouts_total.load(SeqCst) as f64);
    prom.header(
        "serve_lease_takeovers_total",
        "counter",
        "Jobs adopted from a dead peer's expired lease.",
    );
    prom.sample("serve_lease_takeovers_total", &[], shared.takeovers_total.load(SeqCst) as f64);
    prom.header(
        "serve_quarantined_jobs_total",
        "counter",
        "Corrupt job directories moved to spool/quarantine at startup.",
    );
    prom.sample(
        "serve_quarantined_jobs_total",
        &[],
        shared.quarantined_total.load(SeqCst) as f64,
    );
    prom.header(
        "serve_chip_faults_total",
        "counter",
        "Whole-chip losses applied via POST /faults/chip.",
    );
    prom.sample("serve_chip_faults_total", &[], shared.chip_faults_total.load(SeqCst) as f64);
    prom.header(
        "serve_chaos_injected_total",
        "counter",
        "Faults injected by the chaos schedule (0 unless SNNMAP_CHAOS is armed).",
    );
    prom.sample("serve_chaos_injected_total", &[], snnmap_chaos::injected_total() as f64);

    // Process-wide FD parallelism counters (`snnmap_core::par`).
    let par = par::counters();
    prom.header(
        "par_calls_total",
        "counter",
        "Parallel-helper invocations in the FD engine (including serial runs).",
    );
    prom.sample("par_calls_total", &[], par.calls as f64);
    prom.header(
        "par_parallel_calls_total",
        "counter",
        "Invocations that fanned out to at least one extra worker.",
    );
    prom.sample("par_parallel_calls_total", &[], par.parallel_calls as f64);
    prom.header("par_workers_spawned_total", "counter", "FD worker threads spawned in total.");
    prom.sample("par_workers_spawned_total", &[], par.workers_spawned as f64);
    prom.header("par_items_total", "counter", "Items handed to the parallel helpers in total.");
    prom.sample("par_items_total", &[], par.items as f64);
    prom.header(
        "par_busy_ns_total",
        "counter",
        "Nanoseconds spent inside granularity-tuned parallel helpers.",
    );
    prom.sample("par_busy_ns_total", &[], par.busy_ns as f64);
    prom.finish()
}
