//! A deliberately small HTTP/1.1 implementation over [`std::net`].
//!
//! The build environment is offline-vendored, so the daemon speaks the
//! protocol directly (cf. the hand-rolled SHA-256 in `snnmap-trace`):
//! request-line + headers + `Content-Length` body in, status + headers +
//! body out, `Connection: close` per exchange. That subset is everything
//! `curl`, the bench load generator, and a reverse proxy need, and
//! keeping it tiny keeps the attack surface auditable — header size and
//! body size are hard-capped before any allocation scales with input.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Hard cap on a request body (the embedded PCN dominates; 64 MiB is
/// ~1.6M clusters of edge-list text, far beyond the service workloads).
pub(crate) const MAX_BODY: usize = 64 << 20;

/// Hard cap on the request line plus headers.
const MAX_HEAD: usize = 64 << 10;

/// One parsed request.
#[derive(Debug)]
pub(crate) struct Request {
    pub method: String,
    pub path: String,
    pub body: Vec<u8>,
}

/// A request that failed to parse, with the status the peer should see.
#[derive(Debug)]
pub(crate) struct BadRequest {
    pub status: u16,
    pub reason: &'static str,
    pub message: String,
}

impl BadRequest {
    fn new(status: u16, reason: &'static str, message: impl Into<String>) -> Self {
        Self { status, reason, message: message.into() }
    }
}

/// Reads and parses one request from the stream.
///
/// `Ok(None)` means the peer closed the connection before sending a
/// request line (a health-checker's connect-and-close probe) — not an
/// error, just nothing to answer.
pub(crate) fn read_request(
    stream: &mut TcpStream,
) -> Result<Option<Request>, BadRequest> {
    let mut reader = BufReader::new(stream);
    let io_err =
        |e: std::io::Error| BadRequest::new(400, "Bad Request", format!("read failed: {e}"));

    let mut line = String::new();
    let mut head_bytes = 0usize;
    reader.read_line(&mut line).map_err(io_err)?;
    if line.is_empty() {
        return Ok(None);
    }
    head_bytes += line.len();
    let mut parts = line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) => (m.to_string(), t.to_string(), v.to_string()),
        _ => return Err(BadRequest::new(400, "Bad Request", "malformed request line")),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(BadRequest::new(505, "HTTP Version Not Supported", version));
    }

    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).map_err(io_err)?;
        head_bytes += header.len();
        if head_bytes > MAX_HEAD {
            return Err(BadRequest::new(431, "Request Header Fields Too Large", ""));
        }
        let header = header.trim_end_matches(['\r', '\n']);
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else { continue };
        let (name, value) = (name.trim().to_ascii_lowercase(), value.trim());
        match name.as_str() {
            "content-length" => {
                content_length = value.parse().map_err(|_| {
                    BadRequest::new(400, "Bad Request", format!("bad content-length `{value}`"))
                })?;
            }
            "transfer-encoding" => {
                return Err(BadRequest::new(
                    501,
                    "Not Implemented",
                    "transfer-encoding is not supported; send a content-length body",
                ));
            }
            _ => {}
        }
    }
    if content_length > MAX_BODY {
        return Err(BadRequest::new(413, "Payload Too Large", format!("{content_length} bytes")));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(io_err)?;
    // Strip the query string; the API has none, and ignoring it keeps
    // `GET /jobs/3?x=y` a clean 404 rather than a parser quirk.
    let path = target.split('?').next().unwrap_or("").to_string();
    Ok(Some(Request { method, path, body }))
}

/// Writes one response and flushes. `Connection: close` always — one
/// exchange per connection keeps the server loop stateless.
pub(crate) fn respond(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body)?;
    stream.flush()
}

/// Writes a `{"error": ...}` JSON response.
pub(crate) fn respond_error(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    message: &str,
) -> std::io::Result<()> {
    let body = serde_json::json!({ "error": message });
    let body = serde_json::to_string(&body).unwrap_or_default();
    respond(stream, status, reason, "application/json", body.as_bytes())
}
