//! A deliberately small HTTP/1.1 implementation over [`std::net`].
//!
//! The build environment is offline-vendored, so the daemon speaks the
//! protocol directly (cf. the hand-rolled SHA-256 in `snnmap-trace`):
//! request-line + headers + `Content-Length` body in, status + headers +
//! body out, `Connection: close` per exchange. That subset is everything
//! `curl`, the bench load generator, and a reverse proxy need, and
//! keeping it tiny keeps the attack surface auditable — header size and
//! body size are hard-capped before any allocation scales with input.
//!
//! Reading is bounded by a **total deadline**, not a per-`read(2)`
//! timeout: the socket's read timeout is re-armed with the *remaining*
//! budget before every read, so a slow-loris client trickling one byte
//! per second exhausts the same budget as one that stalls outright.
//! Either way the worker thread answers `408 Request Timeout` and moves
//! on — it is never wedged.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

/// Hard cap on a request body (the embedded PCN dominates; 64 MiB is
/// ~1.6M clusters of edge-list text, far beyond the service workloads).
pub(crate) const MAX_BODY: usize = 64 << 20;

/// Hard cap on the request line plus headers.
const MAX_HEAD: usize = 64 << 10;

/// Body bytes read per deadline re-arm; small enough that a trickling
/// client cannot stretch one `read_exact` far past the deadline.
const BODY_CHUNK: usize = 64 << 10;

/// One parsed request.
#[derive(Debug)]
pub(crate) struct Request {
    pub method: String,
    pub path: String,
    pub body: Vec<u8>,
}

/// A request that failed to parse, with the status the peer should see.
#[derive(Debug)]
pub(crate) struct BadRequest {
    pub status: u16,
    pub reason: &'static str,
    pub message: String,
}

impl BadRequest {
    fn new(status: u16, reason: &'static str, message: impl Into<String>) -> Self {
        Self { status, reason, message: message.into() }
    }

    fn timeout(what: &str) -> Self {
        Self::new(408, "Request Timeout", format!("deadline exceeded while reading {what}"))
    }
}

/// Maps a read error: a timed-out socket is the client's fault (408),
/// anything else is a malformed exchange (400).
fn io_err(what: &'static str) -> impl Fn(std::io::Error) -> BadRequest {
    move |e: std::io::Error| match e.kind() {
        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => BadRequest::timeout(what),
        _ => BadRequest::new(400, "Bad Request", format!("read failed: {e}")),
    }
}

/// Arms the socket's read timeout with the time left until `deadline`.
/// An already-spent deadline is an immediate 408.
fn arm(stream: &TcpStream, deadline: Instant, what: &'static str) -> Result<(), BadRequest> {
    let remaining = deadline.saturating_duration_since(Instant::now());
    if remaining.is_zero() {
        return Err(BadRequest::timeout(what));
    }
    stream.set_read_timeout(Some(remaining)).map_err(io_err(what))
}

/// Reads and parses one request from the stream, all of it before
/// `deadline`.
///
/// `Ok(None)` means the peer closed the connection before sending a
/// request line (a health-checker's connect-and-close probe) — not an
/// error, just nothing to answer.
pub(crate) fn read_request(
    stream: &mut TcpStream,
    deadline: Instant,
) -> Result<Option<Request>, BadRequest> {
    let mut reader = BufReader::new(stream);

    let mut line = String::new();
    let mut head_bytes = 0usize;
    arm(reader.get_ref(), deadline, "the request line")?;
    reader.read_line(&mut line).map_err(io_err("the request line"))?;
    if line.is_empty() {
        return Ok(None);
    }
    head_bytes += line.len();
    let mut parts = line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) => (m.to_string(), t.to_string(), v.to_string()),
        _ => return Err(BadRequest::new(400, "Bad Request", "malformed request line")),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(BadRequest::new(505, "HTTP Version Not Supported", version));
    }

    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        arm(reader.get_ref(), deadline, "headers")?;
        reader.read_line(&mut header).map_err(io_err("headers"))?;
        head_bytes += header.len();
        if head_bytes > MAX_HEAD {
            return Err(BadRequest::new(431, "Request Header Fields Too Large", ""));
        }
        let header = header.trim_end_matches(['\r', '\n']);
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else { continue };
        let (name, value) = (name.trim().to_ascii_lowercase(), value.trim());
        match name.as_str() {
            "content-length" => {
                content_length = value.parse().map_err(|_| {
                    BadRequest::new(400, "Bad Request", format!("bad content-length `{value}`"))
                })?;
            }
            "transfer-encoding" => {
                return Err(BadRequest::new(
                    501,
                    "Not Implemented",
                    "transfer-encoding is not supported; send a content-length body",
                ));
            }
            _ => {}
        }
    }
    if content_length > MAX_BODY {
        return Err(BadRequest::new(413, "Payload Too Large", format!("{content_length} bytes")));
    }
    let mut body = vec![0u8; content_length];
    let mut filled = 0usize;
    while filled < content_length {
        if snnmap_chaos::check("serve.read_body").is_some() {
            return Err(BadRequest::new(
                400,
                "Bad Request",
                "read failed: injected client disconnect mid-body",
            ));
        }
        arm(reader.get_ref(), deadline, "the body")?;
        let end = (filled + BODY_CHUNK).min(content_length);
        let n = reader.read(&mut body[filled..end]).map_err(io_err("the body"))?;
        if n == 0 {
            return Err(BadRequest::new(
                400,
                "Bad Request",
                format!("body truncated at {filled} of {content_length} bytes"),
            ));
        }
        filled += n;
    }
    // Strip the query string; the API has none, and ignoring it keeps
    // `GET /jobs/3?x=y` a clean 404 rather than a parser quirk.
    let path = target.split('?').next().unwrap_or("").to_string();
    Ok(Some(Request { method, path, body }))
}

/// Writes one response and flushes. `Connection: close` always — one
/// exchange per connection keeps the server loop stateless. `extra`
/// headers (e.g. `Retry-After`) are emitted verbatim. The `serve.write`
/// failpoint can sever the connection mid-response, simulating a client
/// that vanished while the answer was in flight.
pub(crate) fn respond_with_headers(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    extra: &[(&str, String)],
    body: &[u8],
) -> std::io::Result<()> {
    if snnmap_chaos::check("serve.write").is_some() {
        let _ = stream.shutdown(std::net::Shutdown::Both);
        return Err(std::io::Error::other("injected peer disconnect mid-response"));
    }
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n",
        body.len()
    );
    for (name, value) in extra {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("Connection: close\r\n\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// [`respond_with_headers`] without extra headers.
pub(crate) fn respond(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    respond_with_headers(stream, status, reason, content_type, &[], body)
}

/// Writes a `{"error": ...}` JSON response with extra headers.
pub(crate) fn respond_error_with_headers(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    extra: &[(&str, String)],
    message: &str,
) -> std::io::Result<()> {
    let body = serde_json::json!({ "error": message });
    let body = serde_json::to_string(&body).unwrap_or_default();
    respond_with_headers(stream, status, reason, "application/json", extra, body.as_bytes())
}

/// Writes a `{"error": ...}` JSON response.
pub(crate) fn respond_error(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    message: &str,
) -> std::io::Result<()> {
    respond_error_with_headers(stream, status, reason, &[], message)
}
