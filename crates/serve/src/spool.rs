//! The on-disk spool: everything the daemon needs to survive `kill -9`.
//!
//! Layout, one directory per job:
//!
//! ```text
//! <spool>/job-<id>/request.json     # the POST body, verbatim
//! <spool>/job-<id>/state            # lifecycle label (+ detail lines)
//! <spool>/job-<id>/checkpoint.json  # FdCheckpoint, atomically replaced
//! <spool>/job-<id>/placement.json   # the result, once done
//! <spool>/job-<id>/LEASE            # owner + heartbeat (multi-daemon)
//! <spool>/quarantine/job-<id>/      # corrupt dirs moved aside, + REASON
//! ```
//!
//! Every file is written atomically (temp + rename, like
//! [`snnmap_io::write_checkpoint`]), so a daemon killed mid-write leaves
//! either the old record or the new one — never a torn file. All writes
//! go through the `spool.*` chaos failpoints and a bounded
//! exponential-backoff retry ([`crate::retry`]), so a transiently full
//! disk shows up as a `/metrics` counter, not a failed job.
//!
//! Recovery is a directory scan: terminal jobs load as history,
//! `queued`/`running` jobs re-enter the queue, and a `running` job with
//! a checkpoint resumes from it — byte-identical to never having been
//! killed, by the FD engine's resume guarantee. Job dirs that cannot be
//! read at all surface as [`ScanEntry::Malformed`] for the caller to
//! quarantine (at startup) or skip (while peers may be mid-create).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Duration;

use snnmap_chaos::cfs;

use crate::retry::{with_retry, RetryPolicy};

/// Handle on the spool directory.
#[derive(Debug)]
pub(crate) struct Spool {
    dir: PathBuf,
    retry: RetryPolicy,
    retries: AtomicU64,
}

/// One job directory as found on disk during recovery.
#[derive(Debug)]
pub(crate) struct SpooledJob {
    pub id: u64,
    /// The original request body.
    pub request: String,
    /// The persisted lifecycle label (first line of `state`).
    pub state: String,
    /// Detail lines after the label (failure message).
    pub detail: Option<String>,
    /// `placement.json` contents, when present.
    pub placement: Option<String>,
}

/// One entry of a spool scan.
#[derive(Debug)]
pub(crate) enum ScanEntry {
    /// A readable job directory.
    Job(SpooledJob),
    /// A job directory missing its request or state record.
    Malformed {
        id: u64,
        /// Why it could not be read.
        reason: String,
        /// Time since the directory was last modified — young stubs may
        /// be a live peer mid-`create_job`, old ones are debris.
        age: Duration,
    },
}

impl Spool {
    /// Opens (creating if needed) the spool directory.
    pub fn open(dir: &Path) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        Ok(Self { dir: dir.to_path_buf(), retry: RetryPolicy::default(), retries: AtomicU64::new(0) })
    }

    /// Transient-I/O retries performed so far (for `/metrics`).
    pub fn retries(&self) -> u64 {
        self.retries.load(Relaxed)
    }

    /// The spool's retry schedule, for callers (the checkpoint writer)
    /// that retry their own I/O against the same disk.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// The shared retry counter those callers should bump.
    pub fn retry_counter(&self) -> &AtomicU64 {
        &self.retries
    }

    pub fn job_dir(&self, id: u64) -> PathBuf {
        self.dir.join(format!("job-{id}"))
    }

    pub fn checkpoint_path(&self, id: u64) -> PathBuf {
        self.job_dir(id).join("checkpoint.json")
    }

    pub fn placement_path(&self, id: u64) -> PathBuf {
        self.job_dir(id).join("placement.json")
    }

    fn quarantine_root(&self) -> PathBuf {
        self.dir.join("quarantine")
    }

    /// Persists a freshly accepted job: its directory, the verbatim
    /// request body, and a `queued` state record.
    ///
    /// The directory is created with `create_dir` (not `create_dir_all`)
    /// so it doubles as the id-allocation arbiter between daemons
    /// sharing the spool: `AlreadyExists` propagates untouched and means
    /// "pick another id", every other error is retried as transient.
    pub fn create_job(&self, id: u64, request_body: &str) -> io::Result<()> {
        let dir = self.job_dir(id);
        with_retry(
            &self.retry,
            &self.retries,
            |e: &io::Error| e.kind() == io::ErrorKind::AlreadyExists,
            || cfs::create_dir("spool.mkdir", &dir),
        )?;
        self.write_atomic(&dir.join("request.json"), request_body.as_bytes())?;
        self.write_state(id, "queued", None)
    }

    /// Atomically replaces the job's lifecycle record.
    pub fn write_state(&self, id: u64, label: &str, detail: Option<&str>) -> io::Result<()> {
        let mut text = format!("{label}\n");
        if let Some(detail) = detail {
            text.push_str(detail);
            text.push('\n');
        }
        self.write_atomic(&self.job_dir(id).join("state"), text.as_bytes())
    }

    /// Atomically writes the finished placement document.
    pub fn write_placement(&self, id: u64, placement_json: &str) -> io::Result<()> {
        self.write_atomic(&self.placement_path(id), placement_json.as_bytes())
    }

    /// Loads one job directory, the same way [`Self::scan`] would.
    pub fn load(&self, id: u64) -> Option<SpooledJob> {
        read_job_dir(id, &self.job_dir(id)).ok()
    }

    /// Scans the spool for job directories, sorted by id.
    pub fn scan(&self) -> io::Result<Vec<ScanEntry>> {
        let mut entries = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(id) = name.to_str().and_then(|n| n.strip_prefix("job-")) else {
                continue;
            };
            let Ok(id) = id.parse::<u64>() else { continue };
            let dir = entry.path();
            match read_job_dir(id, &dir) {
                Ok(job) => entries.push(ScanEntry::Job(job)),
                Err(reason) => {
                    let age = entry
                        .metadata()
                        .and_then(|m| m.modified())
                        .ok()
                        .and_then(|t| t.elapsed().ok())
                        .unwrap_or(Duration::MAX);
                    entries.push(ScanEntry::Malformed { id, reason, age });
                }
            }
        }
        entries.sort_by_key(|e| match e {
            ScanEntry::Job(j) => j.id,
            ScanEntry::Malformed { id, .. } => *id,
        });
        Ok(entries)
    }

    /// Largest job id present under the quarantine directory, so freshly
    /// allocated ids never collide with a quarantined job a client may
    /// still be polling.
    pub fn max_quarantined_id(&self) -> u64 {
        let Ok(read) = fs::read_dir(self.quarantine_root()) else { return 0 };
        read.filter_map(|e| e.ok())
            .filter_map(|e| {
                let name = e.file_name();
                let stem = name.to_str()?.strip_prefix("job-")?;
                stem.split('.').next()?.parse::<u64>().ok()
            })
            .max()
            .unwrap_or(0)
    }

    /// Moves a corrupt job directory into `quarantine/` and records why
    /// in a `REASON` file next to the preserved evidence. Returns the
    /// quarantine location.
    pub fn quarantine(&self, id: u64, reason: &str) -> io::Result<PathBuf> {
        let root = self.quarantine_root();
        fs::create_dir_all(&root)?;
        let mut dest = root.join(format!("job-{id}"));
        // A re-quarantined id (corrupted again after re-use) gets a
        // numbered sibling rather than clobbering the first evidence.
        let mut k = 1;
        while dest.exists() {
            k += 1;
            dest = root.join(format!("job-{id}.{k}"));
        }
        fs::rename(self.job_dir(id), &dest)?;
        let _ = fs::write(dest.join("REASON"), format!("{reason}\n"));
        Ok(dest)
    }

    /// Deletes leftover `*.tmp` files (torn atomic writes from a crashed
    /// daemon) inside every job directory. Returns how many were
    /// removed. Safe against live peers: a peer whose in-flight temp
    /// file vanishes simply retries the write.
    pub fn sweep_tmp_files(&self) -> usize {
        let mut removed = 0;
        let Ok(read) = fs::read_dir(&self.dir) else { return 0 };
        for entry in read.filter_map(|e| e.ok()) {
            let name = entry.file_name();
            if !name.to_str().is_some_and(|n| n.starts_with("job-")) {
                continue;
            }
            let Ok(files) = fs::read_dir(entry.path()) else { continue };
            for file in files.filter_map(|f| f.ok()) {
                let is_tmp = file
                    .file_name()
                    .to_str()
                    .is_some_and(|n| n.ends_with(".tmp") || n == "LEASE.hb" || n == "LEASE.stale");
                if is_tmp && fs::remove_file(file.path()).is_ok() {
                    removed += 1;
                }
            }
        }
        removed
    }

    /// Temp-and-rename atomic write with bounded retry; both steps are
    /// chaos failpoints (`spool.write`, `spool.rename`). A torn write
    /// only ever tears the `.tmp` sibling — the destination either keeps
    /// its old bytes or atomically receives all the new ones.
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = Path::new(&tmp);
        with_retry(&self.retry, &self.retries, |_| false, || {
            cfs::write("spool.write", tmp, bytes)?;
            cfs::rename("spool.rename", tmp, path)
        })
    }
}

/// Reads one job directory; `Err(reason)` when its request or state
/// record is missing/unreadable.
fn read_job_dir(id: u64, dir: &Path) -> Result<SpooledJob, String> {
    let request = cfs::read_to_string("spool.read", &dir.join("request.json"))
        .map_err(|e| format!("unreadable request.json: {e}"))?;
    let state_text = cfs::read_to_string("spool.read", &dir.join("state"))
        .map_err(|e| format!("unreadable state record: {e}"))?;
    let mut lines = state_text.lines();
    let state = lines.next().unwrap_or("").to_string();
    let detail: String = lines.collect::<Vec<_>>().join("\n");
    Ok(SpooledJob {
        id,
        request,
        state,
        detail: (!detail.is_empty()).then_some(detail),
        placement: fs::read_to_string(dir.join("placement.json")).ok(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_spool(tag: &str) -> Spool {
        let dir = std::env::temp_dir().join(format!("snnmap_serve_spool_{tag}"));
        let _ = fs::remove_dir_all(&dir);
        Spool::open(&dir).unwrap()
    }

    fn scanned_jobs(spool: &Spool) -> Vec<SpooledJob> {
        spool
            .scan()
            .unwrap()
            .into_iter()
            .filter_map(|e| match e {
                ScanEntry::Job(j) => Some(j),
                ScanEntry::Malformed { .. } => None,
            })
            .collect()
    }

    #[test]
    fn jobs_roundtrip_through_the_scan() {
        let spool = temp_spool("roundtrip");
        spool.create_job(1, "{\"a\": 1}").unwrap();
        spool.create_job(2, "{\"b\": 2}").unwrap();
        spool.write_state(2, "failed", Some("mesh too small")).unwrap();
        spool.write_placement(1, "{\"placement\": true}").unwrap();
        spool.write_state(1, "done", None).unwrap();

        let jobs = scanned_jobs(&spool);
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].id, 1);
        assert_eq!(jobs[0].state, "done");
        assert_eq!(jobs[0].placement.as_deref(), Some("{\"placement\": true}"));
        assert_eq!(jobs[0].detail, None);
        assert_eq!(jobs[1].id, 2);
        assert_eq!(jobs[1].state, "failed");
        assert_eq!(jobs[1].detail.as_deref(), Some("mesh too small"));

        // Non-job clutter is skipped; torn stubs surface as malformed.
        fs::create_dir_all(spool.dir.join("not-a-job")).unwrap();
        fs::create_dir_all(spool.dir.join("job-9")).unwrap(); // no request/state
        let entries = spool.scan().unwrap();
        assert_eq!(entries.len(), 3);
        assert!(matches!(&entries[2], ScanEntry::Malformed { id: 9, .. }));
        assert_eq!(scanned_jobs(&spool).len(), 2);

        // Single-dir loads agree with the scan.
        assert_eq!(spool.load(2).unwrap().state, "failed");
        assert!(spool.load(9).is_none());
    }

    #[test]
    fn create_job_reports_id_collisions() {
        let spool = temp_spool("collide");
        spool.create_job(5, "{}").unwrap();
        let err = spool.create_job(5, "{}").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::AlreadyExists);
        assert_eq!(spool.retries(), 0, "AlreadyExists must not be retried");
    }

    #[test]
    fn quarantine_moves_the_directory_and_keeps_evidence() {
        let spool = temp_spool("quarantine");
        spool.create_job(3, "{\"broken\": true}").unwrap();
        let dest = spool.quarantine(3, "unparseable request").unwrap();
        assert!(!spool.job_dir(3).exists());
        assert!(dest.join("request.json").is_file(), "evidence preserved");
        assert_eq!(fs::read_to_string(dest.join("REASON")).unwrap(), "unparseable request\n");
        assert!(scanned_jobs(&spool).is_empty(), "quarantined jobs leave the spool");
        assert_eq!(spool.max_quarantined_id(), 3);

        // Same id corrupted again: fresh evidence, numbered sibling.
        spool.create_job(3, "{}").unwrap();
        let dest2 = spool.quarantine(3, "again").unwrap();
        assert_ne!(dest, dest2);
        assert_eq!(spool.max_quarantined_id(), 3);
    }

    #[test]
    fn sweep_removes_only_debris() {
        let spool = temp_spool("sweep");
        spool.create_job(1, "{}").unwrap();
        fs::write(spool.job_dir(1).join("state.tmp"), "torn").unwrap();
        fs::write(spool.job_dir(1).join("LEASE.stale"), "").unwrap();
        assert_eq!(spool.sweep_tmp_files(), 2);
        assert!(spool.job_dir(1).join("state").is_file(), "real records survive");
        assert_eq!(spool.load(1).unwrap().state, "queued");
        assert_eq!(spool.sweep_tmp_files(), 0);
    }
}
