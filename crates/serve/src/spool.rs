//! The on-disk spool: everything the daemon needs to survive `kill -9`.
//!
//! Layout, one directory per job:
//!
//! ```text
//! <spool>/job-<id>/request.json     # the POST body, verbatim
//! <spool>/job-<id>/state            # lifecycle label (+ detail lines)
//! <spool>/job-<id>/checkpoint.json  # FdCheckpoint, atomically replaced
//! <spool>/job-<id>/placement.json   # the result, once done
//! ```
//!
//! Every file is written atomically (temp + rename, like
//! [`snnmap_io::write_checkpoint`]), so a daemon killed mid-write leaves
//! either the old record or the new one — never a torn file. Recovery is
//! a directory scan: terminal jobs load as history, `queued`/`running`
//! jobs re-enter the queue, and a `running` job with a checkpoint
//! resumes from it — byte-identical to never having been killed, by the
//! FD engine's resume guarantee.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Handle on the spool directory.
#[derive(Debug)]
pub(crate) struct Spool {
    dir: PathBuf,
}

/// One job directory as found on disk during recovery.
#[derive(Debug)]
pub(crate) struct SpooledJob {
    pub id: u64,
    /// The original request body.
    pub request: String,
    /// The persisted lifecycle label (first line of `state`).
    pub state: String,
    /// Detail lines after the label (failure message).
    pub detail: Option<String>,
    /// `placement.json` contents, when present.
    pub placement: Option<String>,
}

impl Spool {
    /// Opens (creating if needed) the spool directory.
    pub fn open(dir: &Path) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        Ok(Self { dir: dir.to_path_buf() })
    }

    pub fn job_dir(&self, id: u64) -> PathBuf {
        self.dir.join(format!("job-{id}"))
    }

    pub fn checkpoint_path(&self, id: u64) -> PathBuf {
        self.job_dir(id).join("checkpoint.json")
    }

    pub fn placement_path(&self, id: u64) -> PathBuf {
        self.job_dir(id).join("placement.json")
    }

    /// Persists a freshly accepted job: its directory, the verbatim
    /// request body, and a `queued` state record.
    pub fn create_job(&self, id: u64, request_body: &str) -> io::Result<()> {
        let dir = self.job_dir(id);
        fs::create_dir_all(&dir)?;
        write_atomic(&dir.join("request.json"), request_body.as_bytes())?;
        self.write_state(id, "queued", None)
    }

    /// Atomically replaces the job's lifecycle record.
    pub fn write_state(&self, id: u64, label: &str, detail: Option<&str>) -> io::Result<()> {
        let mut text = format!("{label}\n");
        if let Some(detail) = detail {
            text.push_str(detail);
            text.push('\n');
        }
        write_atomic(&self.job_dir(id).join("state"), text.as_bytes())
    }

    /// Atomically writes the finished placement document.
    pub fn write_placement(&self, id: u64, placement_json: &str) -> io::Result<()> {
        write_atomic(&self.placement_path(id), placement_json.as_bytes())
    }

    /// Scans the spool for job directories, sorted by id. Directories
    /// missing a readable request or state record are skipped (a daemon
    /// killed between `create_dir_all` and the first state write leaves
    /// at most one such stub; it never held an acknowledged job).
    pub fn scan(&self) -> io::Result<Vec<SpooledJob>> {
        let mut jobs = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(id) = name.to_str().and_then(|n| n.strip_prefix("job-")) else {
                continue;
            };
            let Ok(id) = id.parse::<u64>() else { continue };
            let dir = entry.path();
            let Ok(request) = fs::read_to_string(dir.join("request.json")) else { continue };
            let Ok(state_text) = fs::read_to_string(dir.join("state")) else { continue };
            let mut lines = state_text.lines();
            let state = lines.next().unwrap_or("").to_string();
            let detail: String = lines.collect::<Vec<_>>().join("\n");
            jobs.push(SpooledJob {
                id,
                request,
                state,
                detail: (!detail.is_empty()).then_some(detail),
                placement: fs::read_to_string(dir.join("placement.json")).ok(),
            });
        }
        jobs.sort_by_key(|j| j.id);
        Ok(jobs)
    }
}

/// Temp-and-rename atomic write, matching `snnmap_io::write_checkpoint`.
fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = Path::new(&tmp);
    fs::write(tmp, bytes)?;
    fs::rename(tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_spool(tag: &str) -> Spool {
        let dir = std::env::temp_dir().join(format!("snnmap_serve_spool_{tag}"));
        let _ = fs::remove_dir_all(&dir);
        Spool::open(&dir).unwrap()
    }

    #[test]
    fn jobs_roundtrip_through_the_scan() {
        let spool = temp_spool("roundtrip");
        spool.create_job(1, "{\"a\": 1}").unwrap();
        spool.create_job(2, "{\"b\": 2}").unwrap();
        spool.write_state(2, "failed", Some("mesh too small")).unwrap();
        spool.write_placement(1, "{\"placement\": true}").unwrap();
        spool.write_state(1, "done", None).unwrap();

        let jobs = spool.scan().unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].id, 1);
        assert_eq!(jobs[0].state, "done");
        assert_eq!(jobs[0].placement.as_deref(), Some("{\"placement\": true}"));
        assert_eq!(jobs[0].detail, None);
        assert_eq!(jobs[1].id, 2);
        assert_eq!(jobs[1].state, "failed");
        assert_eq!(jobs[1].detail.as_deref(), Some("mesh too small"));

        // Non-job clutter and torn stubs are skipped.
        fs::create_dir_all(spool.dir.join("not-a-job")).unwrap();
        fs::create_dir_all(spool.dir.join("job-9")).unwrap(); // no request/state
        assert_eq!(spool.scan().unwrap().len(), 2);
    }
}
