//! Job records and their lifecycle.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use snnmap_core::DegradedPlacement;
use snnmap_hw::FaultMap;
use snnmap_io::JobSpec;
use snnmap_trace::Progress;

/// Lifecycle of a mapping job: `Queued → Running → Done | Failed |
/// Cancelled`. A drained-while-running job goes back to `Queued` (its
/// spooled state stays `running`, so a restart resumes it from the last
/// checkpoint).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Waiting for a worker.
    Queued,
    /// A worker is mapping it right now.
    Running,
    /// Finished; the placement is available.
    Done,
    /// The mapper returned an error (or a worker panicked — surfaced as
    /// [`snnmap_core::CoreError::WorkerPanicked`], never daemon death).
    Failed,
    /// Cancelled by a client `DELETE`.
    Cancelled,
}

impl JobState {
    /// Stable lower-case label (status JSON, spool state files,
    /// Prometheus label values).
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Whether the job can no longer change state.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Done | JobState::Failed | JobState::Cancelled)
    }
}

impl std::fmt::Display for JobState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The mutable part of a job, behind one mutex.
#[derive(Debug)]
pub(crate) struct JobInner {
    pub state: JobState,
    /// Failure message when `Failed`.
    pub error: Option<String>,
    /// [`snnmap_core::StopReason`] label once the FD phase finished.
    pub stop: Option<String>,
    /// The rendered placement document when `Done`.
    pub placement_json: Option<String>,
    /// sha256 of `placement_json` (the offline-equivalence digest).
    pub placement_sha256: Option<String>,
    /// Faults applied so far via `POST /faults/chip` (board jobs only).
    pub faults: Option<FaultMap>,
    /// Chips killed via `POST /faults/chip`, in injection order.
    pub dead_chips: Vec<u32>,
    /// The typed capacity-shortfall report of the latest chip repair,
    /// when the surviving capacity could not absorb the load. The job
    /// stays `done` — degradation is data, never daemon death.
    pub degraded: Option<DegradedPlacement>,
}

/// One job: immutable spec + shared progress + lifecycle state.
#[derive(Debug)]
pub(crate) struct Job {
    pub id: u64,
    pub spec: JobSpec,
    /// Fed by the worker's `ProgressSink`, read by status handlers.
    pub progress: Arc<Progress>,
    /// The FD engine's cooperative cancel flag ([`snnmap_core::RunBudget`]).
    pub cancel: Arc<AtomicBool>,
    /// Raised only by a client `DELETE` — distinguishes a cancelled job
    /// from one interrupted by a daemon drain.
    pub client_cancelled: AtomicBool,
    /// Chip faults injected while the job was queued or running, waiting
    /// for its worker to apply them (board jobs only). An injection into
    /// a running job also raises `cancel`, so the FD engine stops at the
    /// next sweep boundary and the worker repairs the best-so-far
    /// placement instead of refining a layout that is already wrong.
    pending_chips: Mutex<Vec<u32>>,
    /// Serializes chip repairs on a finished job: concurrent
    /// `POST /faults/chip` requests each read, repair, and write the
    /// placement, so overlapping repairs would lose updates.
    repair_gate: Mutex<()>,
    inner: Mutex<JobInner>,
}

impl Job {
    pub fn new(id: u64, spec: JobSpec, state: JobState) -> Self {
        Self {
            id,
            spec,
            progress: Arc::new(Progress::new()),
            cancel: Arc::new(AtomicBool::new(false)),
            client_cancelled: AtomicBool::new(false),
            pending_chips: Mutex::new(Vec::new()),
            repair_gate: Mutex::new(()),
            inner: Mutex::new(JobInner {
                state,
                error: None,
                stop: None,
                placement_json: None,
                placement_sha256: None,
                faults: None,
                dead_chips: Vec::new(),
                degraded: None,
            }),
        }
    }

    /// Runs `f` under the job mutex. A poisoned lock only means a worker
    /// thread died mid-update; the data is still the best record we
    /// have, so recover it rather than propagate the poison.
    pub fn with_inner<T>(&self, f: impl FnOnce(&mut JobInner) -> T) -> T {
        let mut guard = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        f(&mut guard)
    }

    pub fn state(&self) -> JobState {
        self.with_inner(|i| i.state)
    }

    pub fn set_state(&self, state: JobState) {
        self.with_inner(|i| i.state = state);
    }

    /// Whether a client asked for cancellation.
    pub fn client_cancelled(&self) -> bool {
        self.client_cancelled.load(Ordering::SeqCst)
    }

    /// Records a chip fault for the worker to apply; `false` if that
    /// chip is already pending (the duplicate is a client error).
    pub fn push_pending_chip(&self, chip: u32) -> bool {
        let mut pending = lock_pending(&self.pending_chips);
        if pending.contains(&chip) {
            return false;
        }
        pending.push(chip);
        true
    }

    /// Takes the next pending chip fault, preserving injection order.
    pub fn pop_pending_chip(&self) -> Option<u32> {
        let mut pending = lock_pending(&self.pending_chips);
        if pending.is_empty() { None } else { Some(pending.remove(0)) }
    }

    /// How many chip faults are waiting for the worker.
    pub fn pending_chip_count(&self) -> usize {
        lock_pending(&self.pending_chips).len()
    }

    /// Takes the repair gate for the duration of one chip repair.
    pub fn repair_lock(&self) -> std::sync::MutexGuard<'_, ()> {
        match self.repair_gate.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Poison recovery for the pending-chips list, mirroring
/// [`Job::with_inner`].
fn lock_pending(m: &Mutex<Vec<u32>>) -> std::sync::MutexGuard<'_, Vec<u32>> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Parses a spool state label back to a [`JobState`].
pub(crate) fn parse_state(label: &str) -> Option<JobState> {
    Some(match label {
        "queued" => JobState::Queued,
        "running" => JobState::Running,
        "done" => JobState::Done,
        "failed" => JobState::Failed,
        "cancelled" => JobState::Cancelled,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_labels_roundtrip() {
        for s in [
            JobState::Queued,
            JobState::Running,
            JobState::Done,
            JobState::Failed,
            JobState::Cancelled,
        ] {
            assert_eq!(parse_state(s.as_str()), Some(s));
            assert_eq!(s.to_string(), s.as_str());
        }
        assert_eq!(parse_state("zombie"), None);
        assert!(!JobState::Queued.is_terminal());
        assert!(!JobState::Running.is_terminal());
        assert!(JobState::Done.is_terminal());
        assert!(JobState::Failed.is_terminal());
        assert!(JobState::Cancelled.is_terminal());
    }
}
