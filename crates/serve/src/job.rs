//! Job records and their lifecycle.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use snnmap_io::JobSpec;
use snnmap_trace::Progress;

/// Lifecycle of a mapping job: `Queued → Running → Done | Failed |
/// Cancelled`. A drained-while-running job goes back to `Queued` (its
/// spooled state stays `running`, so a restart resumes it from the last
/// checkpoint).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Waiting for a worker.
    Queued,
    /// A worker is mapping it right now.
    Running,
    /// Finished; the placement is available.
    Done,
    /// The mapper returned an error (or a worker panicked — surfaced as
    /// [`snnmap_core::CoreError::WorkerPanicked`], never daemon death).
    Failed,
    /// Cancelled by a client `DELETE`.
    Cancelled,
}

impl JobState {
    /// Stable lower-case label (status JSON, spool state files,
    /// Prometheus label values).
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Whether the job can no longer change state.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Done | JobState::Failed | JobState::Cancelled)
    }
}

impl std::fmt::Display for JobState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The mutable part of a job, behind one mutex.
#[derive(Debug)]
pub(crate) struct JobInner {
    pub state: JobState,
    /// Failure message when `Failed`.
    pub error: Option<String>,
    /// [`snnmap_core::StopReason`] label once the FD phase finished.
    pub stop: Option<String>,
    /// The rendered placement document when `Done`.
    pub placement_json: Option<String>,
    /// sha256 of `placement_json` (the offline-equivalence digest).
    pub placement_sha256: Option<String>,
}

/// One job: immutable spec + shared progress + lifecycle state.
#[derive(Debug)]
pub(crate) struct Job {
    pub id: u64,
    pub spec: JobSpec,
    /// Fed by the worker's `ProgressSink`, read by status handlers.
    pub progress: Arc<Progress>,
    /// The FD engine's cooperative cancel flag ([`snnmap_core::RunBudget`]).
    pub cancel: Arc<AtomicBool>,
    /// Raised only by a client `DELETE` — distinguishes a cancelled job
    /// from one interrupted by a daemon drain.
    pub client_cancelled: AtomicBool,
    inner: Mutex<JobInner>,
}

impl Job {
    pub fn new(id: u64, spec: JobSpec, state: JobState) -> Self {
        Self {
            id,
            spec,
            progress: Arc::new(Progress::new()),
            cancel: Arc::new(AtomicBool::new(false)),
            client_cancelled: AtomicBool::new(false),
            inner: Mutex::new(JobInner {
                state,
                error: None,
                stop: None,
                placement_json: None,
                placement_sha256: None,
            }),
        }
    }

    /// Runs `f` under the job mutex. A poisoned lock only means a worker
    /// thread died mid-update; the data is still the best record we
    /// have, so recover it rather than propagate the poison.
    pub fn with_inner<T>(&self, f: impl FnOnce(&mut JobInner) -> T) -> T {
        let mut guard = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        f(&mut guard)
    }

    pub fn state(&self) -> JobState {
        self.with_inner(|i| i.state)
    }

    pub fn set_state(&self, state: JobState) {
        self.with_inner(|i| i.state = state);
    }

    /// Whether a client asked for cancellation.
    pub fn client_cancelled(&self) -> bool {
        self.client_cancelled.load(Ordering::SeqCst)
    }
}

/// Parses a spool state label back to a [`JobState`].
pub(crate) fn parse_state(label: &str) -> Option<JobState> {
    Some(match label {
        "queued" => JobState::Queued,
        "running" => JobState::Running,
        "done" => JobState::Done,
        "failed" => JobState::Failed,
        "cancelled" => JobState::Cancelled,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_labels_roundtrip() {
        for s in [
            JobState::Queued,
            JobState::Running,
            JobState::Done,
            JobState::Failed,
            JobState::Cancelled,
        ] {
            assert_eq!(parse_state(s.as_str()), Some(s));
            assert_eq!(s.to_string(), s.as_str());
        }
        assert_eq!(parse_state("zombie"), None);
        assert!(!JobState::Queued.is_terminal());
        assert!(!JobState::Running.is_terminal());
        assert!(JobState::Done.is_terminal());
        assert!(JobState::Failed.is_terminal());
        assert!(JobState::Cancelled.is_terminal());
    }
}
