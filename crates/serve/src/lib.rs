//! `snnmap-serve` — mapping as a service.
//!
//! A concurrent daemon that queues Force-Directed mapping jobs behind a
//! deliberately small, dependency-free HTTP/1.1 API (the build is
//! offline-vendored, so the protocol is hand-rolled over
//! [`std::net::TcpListener`], like the hand-rolled SHA-256 in
//! `snnmap-trace`):
//!
//! | Endpoint | Meaning |
//! |---|---|
//! | `POST /jobs` | Submit a job (`snnmap-job-v1` JSON: embedded PCN + mapper knobs) |
//! | `GET /jobs/{id}` | Status + live sweep/swap/energy progress |
//! | `GET /jobs/{id}/placement` | The finished placement document |
//! | `DELETE /jobs/{id}` | Cooperative cancel (FD sweep boundary) |
//! | `POST /faults/chip` | Kill a chip of a board job's hardware, with online repair |
//! | `GET /healthz` | Liveness |
//! | `GET /metrics` | Prometheus operational metrics |
//!
//! The pillars, each reusing an existing subsystem rather than inventing
//! a parallel one:
//!
//! * **Validation** — request bodies go through the hardened
//!   `snnmap-io` job reader: duplicate-key rejection, mesh dimension
//!   caps, typed errors.
//! * **Progress** — workers run the mapper with a
//!   [`snnmap_trace::ProgressSink`], so `GET /jobs/{id}` reads live
//!   counters off the trace stream the engine already emits.
//! * **Cancellation** — `DELETE` raises the engine's own
//!   [`RunBudget::cancel`](snnmap_core::RunBudget) flag.
//! * **Crash recovery** — running jobs checkpoint to a spool directory
//!   via the engine's [`FdCheckpoint`](snnmap_core::FdCheckpoint)
//!   machinery; a `kill -9`'d daemon restarts, cross-checks provenance
//!   digests like `snnmap resume`, and finishes the job bit-identically
//!   to an uninterrupted run.
//! * **Isolation** — a panicking worker surfaces as one `failed` job
//!   (`CoreError::WorkerPanicked`), never daemon death.
//! * **Fault tolerance** — all spool and checkpoint I/O flows through
//!   the `snnmap-chaos` failpoint seam, transient failures are absorbed
//!   by bounded retry-with-backoff, socket reads run under a total
//!   deadline (slow-loris → `408`, never a wedged worker), and corrupt
//!   job directories are quarantined at startup instead of crashing the
//!   daemon.
//! * **Graceful degradation** — jobs submitted with a `board` map onto
//!   a capacity-constrained multi-chip topology; `POST /faults/chip`
//!   kills a whole chip under a finished *or still-running* job, and the
//!   board-aware incremental repair evacuates only the dead chip's
//!   clusters into surviving spare capacity. When that capacity runs
//!   out, the job reports a typed degraded placement in its status JSON
//!   instead of failing — and the daemon never dies.
//! * **Multi-daemon failover** — N daemons can share one spool: each
//!   running job holds a heartbeated `LEASE` file, and a daemon
//!   that dies mid-job has its work adopted by a peer once the lease
//!   expires — finishing byte-identically, because mapping is
//!   deterministic.
//!
//! [`signal`] is the crate's single audited `unsafe` module (OS signal
//! handler registration); everything else is `#![deny(unsafe_code)]`.

#![deny(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod http;
mod job;
mod lease;
mod metrics;
mod retry;
mod server;
pub mod signal;
mod spool;

pub use job::JobState;
pub use server::{DrainReport, ServeConfig, ServeError, Server};
