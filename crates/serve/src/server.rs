//! The daemon: listener, worker pool, job routes, drain, and recovery.
//!
//! Concurrency layout — three thread families over one [`Shared`] state:
//!
//! * the **accept loop** (the thread that calls [`Server::run`]) polls a
//!   non-blocking listener and spawns one short-lived thread per
//!   connection (one HTTP exchange each, `Connection: close`);
//! * **connection threads** parse a request, take the job or queue lock
//!   briefly, and respond — they never block on mapping work;
//! * **workers** (a fixed pool, count via [`snnmap_core::par::resolve_threads`])
//!   pop the bounded queue and run the FD pipeline; each running job
//!   checkpoints to the spool, so workers are the only threads doing
//!   heavy lifting and the only ones a `kill -9` can interrupt
//!   mid-flight.
//!
//! Shutdown is a drain: stop accepting, let in-flight responses finish,
//! raise every running job's cancel flag (the FD engine stops at the
//! next sweep boundary *after flushing a checkpoint*), and leave queued
//! jobs spooled. A restarted daemon picks both kinds back up —
//! interrupted runs resume bit-identically from their checkpoint.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering::SeqCst};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use snnmap_core::{
    par, DegradedPlacement, FdCheckpoint, FdRunOpts, InitialPlacement, Mapper, Potential,
    RunBudget, StopReason,
};
use snnmap_hw::{CostModel, FaultMap};
use snnmap_io::{
    parse_job, parse_placement, read_checkpoint, reject_duplicate_keys, render_placement,
    write_checkpoint, IoError, JobSpec,
};
use snnmap_noc::NocReweighter;
use snnmap_trace::{sha256_hex, ProgressSink};

use crate::http::{self, Request};
use crate::job::{parse_state, Job, JobState};
use crate::lease::{self, Acquire};
use crate::metrics;
use crate::retry::with_retry;
use crate::spool::{ScanEntry, Spool, SpooledJob};

/// Daemon configuration (the `snnmap serve` flags).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, `host:port` (port 0 picks a free port).
    pub addr: String,
    /// Worker pool size; 0 = auto, like `snnmap map --threads 0`.
    pub workers: usize,
    /// Spool directory for crash recovery (created if missing).
    pub spool_dir: PathBuf,
    /// Bound on jobs waiting in the queue; submissions beyond it get
    /// `429 Too Many Requests`.
    pub queue_capacity: usize,
    /// Lease time-to-live: a running job whose `LEASE` heartbeat is
    /// older than this is considered abandoned, and any daemon sharing
    /// the spool may take it over.
    pub lease_ttl: Duration,
    /// This daemon's identity in `LEASE` files; `None` derives a
    /// process-unique id.
    pub daemon_id: Option<String>,
    /// Total per-connection deadline for reading a request (and the
    /// per-write socket timeout). Slow-loris and stalled-body clients
    /// get `408 Request Timeout` when it runs out.
    pub io_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7077".to_string(),
            workers: 0,
            spool_dir: PathBuf::from("snnmap-spool"),
            queue_capacity: 64,
            lease_ttl: Duration::from_secs(30),
            daemon_id: None,
            io_timeout: Duration::from_secs(10),
        }
    }
}

/// Startup failure (spool or listener).
#[derive(Debug)]
pub enum ServeError {
    /// An I/O operation failed while starting the daemon.
    Io {
        /// What the daemon was doing.
        context: String,
        /// The underlying error.
        source: std::io::Error,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io { context, source } => write!(f, "{context}: {source}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io { source, .. } => Some(source),
        }
    }
}

/// What the daemon reports after a graceful drain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// Jobs accepted over the daemon's lifetime (including recovered).
    pub jobs_total: u64,
    /// Running jobs interrupted by the drain; each left a spooled
    /// checkpoint and resumes on restart.
    pub interrupted: usize,
    /// Jobs still queued at drain; they re-queue on restart.
    pub queued_left: usize,
}

/// State shared by the accept loop, connection threads, workers, and
/// the janitor/heartbeat background threads.
pub(crate) struct Shared {
    pub(crate) spool: Spool,
    pub(crate) jobs: Mutex<BTreeMap<u64, Arc<Job>>>,
    pub(crate) queue: Mutex<VecDeque<Arc<Job>>>,
    pub(crate) queue_cond: Condvar,
    pub(crate) queue_capacity: usize,
    pub(crate) workers: usize,
    pub(crate) busy_workers: AtomicUsize,
    pub(crate) draining: AtomicBool,
    pub(crate) submitted_total: AtomicU64,
    /// This daemon's identity in spool `LEASE` files.
    pub(crate) daemon_id: String,
    pub(crate) lease_ttl: Duration,
    pub(crate) io_timeout: Duration,
    /// Jobs taken over from a dead peer's expired lease.
    pub(crate) takeovers_total: AtomicU64,
    /// Connections answered `408 Request Timeout`.
    pub(crate) timeouts_total: AtomicU64,
    /// Corrupt job dirs moved to `quarantine/` (at startup).
    pub(crate) quarantined_total: AtomicU64,
    /// Chip faults applied via `POST /faults/chip`.
    pub(crate) chip_faults_total: AtomicU64,
    next_id: AtomicU64,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared").field("workers", &self.workers).finish_non_exhaustive()
    }
}

/// Locks a mutex, recovering from poison: a panicking worker is an
/// isolated job failure, never a reason to wedge the whole daemon.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// The daemon. [`Server::bind`] recovers the spool and binds the
/// listener; [`Server::run`] serves until the shutdown flag rises.
#[derive(Debug)]
pub struct Server {
    shared: Arc<Shared>,
    listener: TcpListener,
}

impl Server {
    /// Opens the spool, recovers every job found in it, and binds the
    /// listen socket.
    ///
    /// Recovery rules: terminal jobs (`done` / `failed` / `cancelled`)
    /// load as queryable history; `queued` and `running` jobs re-enter
    /// the queue — a `running` job kept its spooled checkpoint, so its
    /// worker resumes it bit-identically instead of starting over.
    ///
    /// Corrupt job directories — an unparseable request, an unknown
    /// state label, a `done` record without its placement, a garbled
    /// checkpoint, or a stale stub missing its records entirely — are
    /// moved to `spool/quarantine/<id>/` with a `REASON` file instead of
    /// being silently skipped or allowed to wedge startup.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the spool directory or the listener
    /// cannot be opened.
    pub fn bind(config: &ServeConfig) -> Result<Self, ServeError> {
        let io_err = |context: &str| {
            let context = context.to_string();
            move |source: std::io::Error| ServeError::Io { context, source }
        };
        let spool = Spool::open(&config.spool_dir)
            .map_err(io_err(&format!("opening spool {}", config.spool_dir.display())))?;
        spool.sweep_tmp_files();

        let mut jobs = BTreeMap::new();
        let mut queue = VecDeque::new();
        let mut next_id = spool.max_quarantined_id() + 1;
        let mut quarantined = 0u64;
        let mut quarantine = |spool: &Spool, id: u64, reason: &str| {
            if spool.quarantine(id, reason).is_ok() {
                quarantined += 1;
            }
        };
        for entry in spool.scan().map_err(io_err("scanning spool"))? {
            let spooled = match entry {
                ScanEntry::Job(spooled) => spooled,
                ScanEntry::Malformed { id, reason, age } => {
                    next_id = next_id.max(id + 1);
                    // A *young* stub can be a live peer mid-`create_job`
                    // on a shared spool; leave those alone. Older than a
                    // lease TTL, it is debris from a crash.
                    if age >= config.lease_ttl {
                        quarantine(&spool, id, &reason);
                    }
                    continue;
                }
            };
            next_id = next_id.max(spooled.id + 1);
            let Some(state) = parse_state(&spooled.state) else {
                quarantine(
                    &spool,
                    spooled.id,
                    &format!("unknown state label `{}`", spooled.state),
                );
                continue;
            };
            let spec = match parse_job(&spooled.request) {
                Ok(spec) => spec,
                Err(e) => {
                    // Requests are validated before they are spooled, so
                    // this is disk corruption.
                    quarantine(&spool, spooled.id, &format!("unparseable spooled request: {e}"));
                    continue;
                }
            };
            if state == JobState::Done && spooled.placement.is_none() {
                quarantine(&spool, spooled.id, "done but placement.json is missing");
                continue;
            }
            // A torn or bit-flipped checkpoint cannot happen through the
            // atomic write path, so it is external corruption; the job
            // dir is evidence. (A transient read error is not.)
            if !state.is_terminal() {
                let cp_path = spool.checkpoint_path(spooled.id);
                if cp_path.is_file() {
                    match read_checkpoint(&cp_path) {
                        Ok(_) | Err(IoError::Io(_)) => {}
                        Err(e) => {
                            quarantine(&spool, spooled.id, &format!("corrupt checkpoint: {e}"));
                            continue;
                        }
                    }
                }
            }
            let job = Arc::new(Job::new(spooled.id, spec, state));
            match state {
                JobState::Done | JobState::Failed | JobState::Cancelled => {
                    adopt_disk_record(&job, &spooled);
                }
                JobState::Queued | JobState::Running => {
                    job.set_state(JobState::Queued);
                    queue.push_back(Arc::clone(&job));
                }
            }
            jobs.insert(spooled.id, job);
        }

        let listener = TcpListener::bind(&config.addr)
            .map_err(io_err(&format!("binding {}", config.addr)))?;
        listener.set_nonblocking(true).map_err(io_err("setting the listener non-blocking"))?;

        let submitted = jobs.len() as u64;
        let daemon_id = config
            .daemon_id
            .clone()
            .unwrap_or_else(|| format!("pid{}-{:x}", std::process::id(), lease::now_ms()));
        Ok(Self {
            shared: Arc::new(Shared {
                spool,
                jobs: Mutex::new(jobs),
                queue: Mutex::new(queue),
                queue_cond: Condvar::new(),
                queue_capacity: config.queue_capacity.max(1),
                workers: par::resolve_threads(config.workers),
                busy_workers: AtomicUsize::new(0),
                draining: AtomicBool::new(false),
                submitted_total: AtomicU64::new(submitted),
                daemon_id,
                lease_ttl: config.lease_ttl,
                io_timeout: config.io_timeout,
                takeovers_total: AtomicU64::new(0),
                timeouts_total: AtomicU64::new(0),
                quarantined_total: AtomicU64::new(quarantined),
                chip_faults_total: AtomicU64::new(0),
                next_id: AtomicU64::new(next_id),
            }),
            listener,
        })
    }

    /// The bound address (useful after binding port 0).
    ///
    /// # Errors
    ///
    /// Propagates the OS error if the socket has no local address.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The resolved worker-pool size.
    pub fn workers(&self) -> usize {
        self.shared.workers
    }

    /// Serves until `shutdown` goes high (typically the
    /// [`signal::install`] flag), then drains gracefully.
    pub fn run(&self, shutdown: &AtomicBool) -> DrainReport {
        let workers: Vec<_> = (0..self.shared.workers)
            .map(|_| {
                let shared = Arc::clone(&self.shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();

        // Janitor: reconciles the shared spool (peer-created jobs, jobs
        // whose lease holder died) until the drain begins. Heartbeat:
        // keeps our running jobs' leases fresh until the last worker is
        // gone, so peers don't "take over" jobs we are still finishing.
        let bg_stop = Arc::new(AtomicBool::new(false));
        let janitor = {
            let shared = Arc::clone(&self.shared);
            let interval = (shared.lease_ttl / 2)
                .clamp(Duration::from_millis(50), Duration::from_secs(2));
            std::thread::spawn(move || {
                let mut last = Instant::now();
                while !shared.draining.load(SeqCst) {
                    std::thread::sleep(Duration::from_millis(20));
                    if last.elapsed() >= interval {
                        janitor_pass(&shared);
                        last = Instant::now();
                    }
                }
            })
        };
        let heartbeater = {
            let shared = Arc::clone(&self.shared);
            let stop = Arc::clone(&bg_stop);
            let interval = (shared.lease_ttl / 4).max(Duration::from_millis(10));
            std::thread::spawn(move || {
                let mut last = Instant::now();
                while !stop.load(SeqCst) {
                    std::thread::sleep(Duration::from_millis(10));
                    if last.elapsed() >= interval {
                        heartbeat_pass(&shared);
                        last = Instant::now();
                    }
                }
            })
        };

        let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !shutdown.load(SeqCst) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let shared = Arc::clone(&self.shared);
                    conns.push(std::thread::spawn(move || handle_connection(&shared, stream)));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    conns.retain(|h| !h.is_finished());
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(_) => {
                    // A failed accept (e.g. EMFILE) is transient; back
                    // off instead of spinning.
                    std::thread::sleep(Duration::from_millis(100));
                }
            }
        }

        // Drain: no new work, finish in-flight responses, interrupt
        // running jobs at their next sweep boundary (checkpoint flushed
        // by the engine), keep queued jobs spooled for restart.
        self.shared.draining.store(true, SeqCst);
        self.shared.queue_cond.notify_all();
        for conn in conns {
            let _ = conn.join();
        }
        for job in lock(&self.shared.jobs).values() {
            if job.state() == JobState::Running {
                job.cancel.store(true, SeqCst);
            }
        }
        for worker in workers {
            let _ = worker.join();
        }
        bg_stop.store(true, SeqCst);
        let _ = janitor.join();
        let _ = heartbeater.join();

        let jobs = lock(&self.shared.jobs);
        DrainReport {
            jobs_total: self.shared.submitted_total.load(SeqCst),
            interrupted: jobs
                .values()
                .filter(|j| j.state() == JobState::Queued && j.progress.snapshot().sweeps > 0)
                .count(),
            queued_left: jobs.values().filter(|j| j.state() == JobState::Queued).count(),
        }
    }
}

/// One worker: pop, run, repeat; exit on drain.
fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = lock(&shared.queue);
            loop {
                if shared.draining.load(SeqCst) {
                    break None;
                }
                if let Some(job) = q.pop_front() {
                    break Some(job);
                }
                q = match shared.queue_cond.wait_timeout(q, Duration::from_millis(200)) {
                    Ok((guard, _)) => guard,
                    Err(poisoned) => poisoned.into_inner().0,
                };
            }
        };
        let Some(job) = job else { return };
        // A DELETE may have landed while the job sat in the queue.
        if job.state() != JobState::Queued {
            continue;
        }
        shared.busy_workers.fetch_add(1, SeqCst);
        run_job(shared, &job);
        shared.busy_workers.fetch_sub(1, SeqCst);
    }
}

/// Runs one job: lease arbitration first, then the FD pipeline.
fn run_job(shared: &Shared, job: &Job) {
    if job.client_cancelled() {
        job.set_state(JobState::Cancelled);
        let _ = shared.spool.write_state(job.id, "cancelled", None);
        return;
    }
    let dir = shared.spool.job_dir(job.id);
    match lease::acquire_or_steal(&dir, &shared.daemon_id, shared.lease_ttl) {
        Ok(Acquire::Acquired) => {}
        Ok(Acquire::Stolen { from: _ }) => {
            shared.takeovers_total.fetch_add(1, SeqCst);
        }
        Ok(Acquire::Held) | Err(_) => {
            // A live peer owns this job (or the lease file is briefly
            // unreachable). Leave it Queued; the janitor re-enqueues it
            // once the peer finishes, dies, or the fault clears.
            return;
        }
    }
    // The peer that held the lease may have finished the job already;
    // adopt its on-disk result instead of recomputing.
    if let Some(spooled) = shared.spool.load(job.id) {
        if parse_state(&spooled.state).is_some_and(JobState::is_terminal) {
            adopt_disk_record(job, &spooled);
            lease::release(&dir, &shared.daemon_id);
            return;
        }
    }
    execute_job(shared, job);
    lease::release(&dir, &shared.daemon_id);
}

/// The FD pipeline itself, spool-checkpointing as it goes. The caller
/// holds the job's lease.
fn execute_job(shared: &Shared, job: &Job) {
    job.set_state(JobState::Running);
    let _ = shared.spool.write_state(job.id, "running", None);

    let spec = &job.spec;
    let Some(mapper) = job_mapper(spec) else {
        // parse_job validated the vocabulary, so this is unreachable;
        // fail the job rather than panic the worker if it ever isn't.
        fail_job(shared, job, "unknown init or potential in spooled spec");
        return;
    };

    let meta = spec.provenance();
    let cp_path = shared.spool.checkpoint_path(job.id);
    // The engine resumes only from a checkpoint proven to belong to this
    // exact job (same PCN, same configuration) — the `snnmap resume`
    // provenance check, applied automatically. Sim-in-the-loop jobs are
    // never checkpointed (the heat-derived weight field is not part of
    // a checkpoint), so they always start from scratch.
    let resume_from = if spec.sim_in_loop.is_none() && cp_path.is_file() {
        match read_checkpoint(&cp_path) {
            Ok((cp, on_disk)) if on_disk == meta && cp.mesh == spec.mesh => Some(cp),
            _ => None,
        }
    } else {
        None
    };

    let writer_path = cp_path.clone();
    let writer_meta = meta;
    let retry_policy = shared.spool.retry_policy();
    let retry_counter = shared.spool.retry_counter();
    // Transient checkpoint-write failures (a briefly full disk, an
    // injected torn write) retry with backoff; only an exhausted budget
    // aborts the run — as `CoreError::CheckpointFailed`, a typed error.
    let mut writer = move |cp: &FdCheckpoint| -> Result<(), String> {
        with_retry(&retry_policy, retry_counter, |_| false, || {
            write_checkpoint(&writer_path, cp, &writer_meta)
        })
        .map_err(|e| e.to_string())
    };
    // Sim-in-the-loop: a seeded NoC replays the PCN's traffic over the
    // evolving placement every `sim_in_loop` sweeps and re-weights the
    // hot routers — the CLI's `--sim-in-loop` hook. An edgeless PCN has
    // no traffic; the engine then falls back to its own heat estimate.
    let mut sim_hook = spec.sim_in_loop.and_then(|_| {
        let scale = noc_scale(&spec.pcn);
        (scale > 0.0).then(|| NocReweighter::new(&spec.pcn, scale, SIM_CYCLES, spec.seed))
    });
    let mut run_opts = FdRunOpts {
        budget: RunBudget {
            deadline: None,
            max_sweeps: spec.max_sweeps,
            cancel: Some(Arc::clone(&job.cancel)),
        },
        checkpoint_every: (spec.checkpoint_every > 0).then_some(spec.checkpoint_every),
        ..FdRunOpts::default()
    };
    if spec.sim_in_loop.is_none() {
        // The engine refuses a checkpoint writer alongside reweighting;
        // `parse_job` already pinned `checkpoint_every` to 0 for these
        // jobs, so no periodic flush is lost by skipping the writer.
        run_opts.on_checkpoint =
            Some(&mut writer as &mut dyn FnMut(&FdCheckpoint) -> Result<(), String>);
    }
    if let Some(hook) = sim_hook.as_mut() {
        run_opts.reweighter = Some(hook);
    }

    let mut sink = ProgressSink::new(Arc::clone(&job.progress));
    let result = match &resume_from {
        Some(cp) => mapper.resume_traced(&spec.pcn, cp, &mut run_opts, &mut sink),
        None => mapper.map_budgeted_traced(&spec.pcn, spec.mesh, &mut run_opts, &mut sink),
    };

    match result {
        Ok(outcome) => {
            let stop = outcome.fd_stats.as_ref().map(|s| s.stop);
            if stop == Some(StopReason::Cancelled) {
                if job.client_cancelled() {
                    job.with_inner(|i| {
                        i.state = JobState::Cancelled;
                        i.stop = Some(StopReason::Cancelled.as_str().to_string());
                    });
                    let _ = shared.spool.write_state(job.id, "cancelled", None);
                    return;
                }
                if job.pending_chip_count() == 0 {
                    // Drain interrupt: the engine flushed a checkpoint;
                    // the spooled state stays `running`, so a restart
                    // resumes this job exactly where it stopped.
                    job.set_state(JobState::Queued);
                    return;
                }
                // Chip-fault interrupt: refinement stopped because part
                // of the board just died under it. The best-so-far
                // placement is complete and becomes the `done` result,
                // repaired below before it is published.
            }
            // Chip faults injected while the job was queued or running
            // are repaired into the placement *before* it is published,
            // so a client that sees `done` also sees the repair's dead
            // chips and digest in the same status snapshot.
            let mut placement = outcome.placement;
            let mut applied: Option<FaultMap> = None;
            let mut applied_chips: Vec<u32> = Vec::new();
            let mut degraded: Option<DegradedPlacement> = None;
            while let Some(chip) = job.pop_pending_chip() {
                let previous =
                    applied.clone().unwrap_or_else(|| FaultMap::new(placement.mesh()));
                match repair_chip(&mapper, spec, &mut placement, &previous, chip) {
                    Ok((current, report)) => {
                        applied = Some(current);
                        applied_chips.push(chip);
                        degraded = report.degraded;
                        shared.chip_faults_total.fetch_add(1, SeqCst);
                    }
                    Err(message) => {
                        fail_job(shared, job, &format!("applying chip fault {chip}: {message}"));
                        return;
                    }
                }
            }
            let text = render_placement(&placement);
            let digest = sha256_hex(text.as_bytes());
            if let Err(e) = shared.spool.write_placement(job.id, &text) {
                fail_job(shared, job, &format!("writing placement to spool: {e}"));
                return;
            }
            let stop_label = stop.map(|s| s.as_str().to_string());
            let _ = shared.spool.write_state(job.id, "done", stop_label.as_deref());
            job.with_inner(|i| {
                i.state = JobState::Done;
                i.stop = stop_label;
                i.placement_json = Some(text);
                i.placement_sha256 = Some(digest);
                if applied.is_some() {
                    i.faults = applied;
                    i.dead_chips.extend(applied_chips);
                    i.degraded = degraded;
                }
            });
            // The checkpoint has served its purpose.
            let _ = std::fs::remove_file(&cp_path);
            // A fault that landed between the pre-publish drain above and
            // the state flip is picked up here (or by the handler's own
            // post-push drain — pop atomicity makes either side apply it
            // exactly once).
            while let Some(chip) = job.pop_pending_chip() {
                if let Err(message) = apply_chip_fault(shared, job, chip) {
                    fail_job(shared, job, &format!("applying chip fault {chip}: {message}"));
                    return;
                }
            }
        }
        // Mapper errors — including a worker panic inside the FD engine,
        // surfaced as `CoreError::WorkerPanicked` — fail this job only.
        Err(e) => fail_job(shared, job, &e.to_string()),
    }
}

fn fail_job(shared: &Shared, job: &Job, message: &str) {
    job.with_inner(|i| {
        i.state = JobState::Failed;
        i.error = Some(message.to_string());
    });
    let _ = shared.spool.write_state(job.id, "failed", Some(message));
}

/// Copies a terminal on-disk record into the in-memory job: `done` loads
/// the placement (and its digest), `failed` the error, and a `done`
/// record missing its placement becomes a typed failure.
fn adopt_disk_record(job: &Job, spooled: &SpooledJob) {
    match parse_state(&spooled.state) {
        Some(JobState::Done) => match &spooled.placement {
            Some(text) => job.with_inner(|i| {
                i.state = JobState::Done;
                i.placement_sha256 = Some(sha256_hex(text.as_bytes()));
                i.placement_json = Some(text.clone());
                i.stop = spooled.detail.clone();
            }),
            None => job.with_inner(|i| {
                i.state = JobState::Failed;
                i.error = Some("placement file missing from spool".to_string());
            }),
        },
        Some(JobState::Failed) => job.with_inner(|i| {
            i.state = JobState::Failed;
            i.error = spooled.detail.clone();
        }),
        Some(JobState::Cancelled) => job.set_state(JobState::Cancelled),
        _ => {}
    }
}

/// One janitor sweep over the shared spool. Two duties:
///
/// 1. Local `Queued` jobs that are *not* in the queue (their worker
///    yielded to a peer's lease) — re-enqueue once the peer's lease is
///    gone or expired, or adopt the peer's finished result.
/// 2. Job directories created by peers that this daemon has never seen —
///    terminal ones load as queryable history; non-terminal ones whose
///    lease is free or expired are adopted into the queue (this is how a
///    survivor picks up a crashed peer's jobs).
///
/// The janitor never quarantines: a directory that looks malformed
/// mid-flight may be a live peer's half-created job. Quarantine happens
/// only in [`Server::bind`].
fn janitor_pass(shared: &Shared) {
    let known: Vec<Arc<Job>> = lock(&shared.jobs).values().cloned().collect();
    let enqueued: BTreeSet<u64> = lock(&shared.queue).iter().map(|j| j.id).collect();
    for job in &known {
        if job.state() != JobState::Queued || enqueued.contains(&job.id) {
            continue;
        }
        if let Some(spooled) = shared.spool.load(job.id) {
            if parse_state(&spooled.state).is_some_and(JobState::is_terminal) {
                adopt_disk_record(job, &spooled);
                continue;
            }
        }
        let lease_blocks = lease::read(&shared.spool.job_dir(job.id)).is_some_and(|info| {
            info.owner != shared.daemon_id && !info.is_expired(shared.lease_ttl)
        });
        if !lease_blocks {
            lock(&shared.queue).push_back(Arc::clone(job));
            shared.queue_cond.notify_one();
        }
    }

    let Ok(entries) = shared.spool.scan() else { return };
    for entry in entries {
        let ScanEntry::Job(spooled) = entry else { continue };
        shared.next_id.fetch_max(spooled.id + 1, SeqCst);
        if lock(&shared.jobs).contains_key(&spooled.id) {
            continue;
        }
        let Some(state) = parse_state(&spooled.state) else { continue };
        let Ok(spec) = parse_job(&spooled.request) else { continue };
        if state.is_terminal() {
            let job = Arc::new(Job::new(spooled.id, spec, state));
            adopt_disk_record(&job, &spooled);
            lock(&shared.jobs).insert(spooled.id, job);
            shared.submitted_total.fetch_add(1, SeqCst);
        } else {
            let claimable = match lease::read(&shared.spool.job_dir(spooled.id)) {
                None => true,
                Some(info) => {
                    info.owner == shared.daemon_id || info.is_expired(shared.lease_ttl)
                }
            };
            if !claimable {
                // A live peer is on it; don't even register the job, so
                // a later pass re-evaluates from a clean slate.
                continue;
            }
            let job = Arc::new(Job::new(spooled.id, spec, JobState::Queued));
            lock(&shared.jobs).insert(spooled.id, Arc::clone(&job));
            lock(&shared.queue).push_back(job);
            shared.queue_cond.notify_one();
            shared.submitted_total.fetch_add(1, SeqCst);
        }
    }
}

/// Refreshes the `LEASE` heartbeat of every job this daemon is running.
fn heartbeat_pass(shared: &Shared) {
    let running: Vec<Arc<Job>> = lock(&shared.jobs)
        .values()
        .filter(|j| j.state() == JobState::Running)
        .cloned()
        .collect();
    for job in running {
        let _ = lease::heartbeat(&shared.spool.job_dir(job.id), &shared.daemon_id);
    }
}

/// Simulated cycles per sim-in-the-loop NoC run — the `snnmap map
/// --sim-in-loop` constant, so a job produces the same placement as the
/// CLI invocation it mirrors.
const SIM_CYCLES: u64 = 256;

/// Injection scale for the seeded NoC replays (the CLI's formula): the
/// hottest PCN connection injects with probability 1/4 per cycle, so
/// traversal counts stay proportional to edge weights. 0.0 for an
/// edgeless PCN, which has no traffic to replay.
fn noc_scale(pcn: &snnmap_model::Pcn) -> f64 {
    let mut wmax = 0.0f64;
    for c in 0..pcn.num_clusters() {
        for (_, w) in pcn.out_edges(c) {
            wmax = wmax.max(w as f64);
        }
    }
    if wmax > 0.0 {
        0.25 / wmax
    } else {
        0.0
    }
}

fn job_init(spec: &JobSpec) -> Option<InitialPlacement> {
    Some(match spec.init.as_str() {
        "hilbert" => InitialPlacement::Hilbert,
        "zigzag" => InitialPlacement::ZigZag,
        "circle" => InitialPlacement::Circle,
        "serpentine" => InitialPlacement::Serpentine,
        "random" => InitialPlacement::Random(spec.seed),
        _ => return None,
    })
}

fn job_potential(spec: &JobSpec) -> Option<Potential> {
    Some(match spec.potential.as_str() {
        "l1" => Potential::L1,
        "l1sq" => Potential::L1Squared,
        "l2sq" => Potential::L2Squared,
        "energy" => Potential::energy_model(CostModel::paper_target()),
        _ => return None,
    })
}

/// Builds the mapper a job's spec describes (board-aware when the spec
/// carries one); `None` for an unknown init or potential name.
fn job_mapper(spec: &JobSpec) -> Option<Mapper> {
    let mut builder = Mapper::builder()
        .initial_placement(job_init(spec)?)
        .potential(job_potential(spec)?)
        .lambda(spec.lambda)
        .threads(spec.threads);
    if let Some(board) = &spec.board {
        builder = builder.board(board.clone());
    }
    if !spec.objective.is_energy() {
        builder = builder.objective(spec.objective);
    }
    if let Some(every) = spec.sim_in_loop {
        builder = builder.reweight_every(every);
    }
    Some(builder.build())
}

/// Halo radius (in hops) around evacuated clusters the chip-repair FD
/// pass may touch.
const REPAIR_RADIUS: u16 = 2;

/// Fixed sweep budget for the region-masked repair FD pass — fixed so a
/// repair is deterministic across daemons, replays, and thread counts.
const REPAIR_SWEEPS: u64 = 16;

/// Kills one chip on top of `previous` and runs the board-aware
/// incremental repair on `placement` (evacuation plus a fixed-budget,
/// capacity-respecting local FD pass). Returns the new fault map and the
/// repair report.
fn repair_chip(
    mapper: &Mapper,
    spec: &JobSpec,
    placement: &mut snnmap_hw::Placement,
    previous: &FaultMap,
    chip: u32,
) -> Result<(FaultMap, snnmap_core::RepairReport), String> {
    let board = spec.board.as_ref().ok_or("job has no board")?;
    let mut current = previous.clone();
    current.kill_chip(board, chip).map_err(|e| e.to_string())?;
    let budget = RunBudget { max_sweeps: Some(REPAIR_SWEEPS), ..RunBudget::default() };
    let report = mapper
        .repair_incremental(&spec.pcn, placement, previous, &current, REPAIR_RADIUS, budget)
        .map_err(|e| e.to_string())?;
    Ok((current, report))
}

/// Outcome summary of one applied chip fault, for the response body.
struct ChipRepair {
    moved: u64,
    region_cores: u64,
    degraded: Option<DegradedPlacement>,
    placement_sha256: String,
}

/// Applies one whole-chip loss to a finished job: kills the chip in the
/// job's accumulated fault map, runs the board-aware incremental repair
/// (evacuation + capacity-respecting local FD), and persists the
/// repaired placement to the spool.
///
/// The job stays `done` whatever the capacity situation — when the
/// survivors cannot absorb the load, the repair commits the placeable
/// subset and the typed [`DegradedPlacement`] lands in the status JSON.
/// A second loss of the same chip reports zero new dead cores and
/// performs no moves (repair is idempotent).
fn apply_chip_fault(shared: &Shared, job: &Job, chip: u32) -> Result<ChipRepair, String> {
    let _gate = job.repair_lock();
    let Some(board) = job.spec.board.clone() else {
        return Err("job has no board".to_string());
    };
    let mapper = job_mapper(&job.spec).ok_or("unknown init or potential in spooled spec")?;
    let (text, previous) = job.with_inner(|i| (i.placement_json.clone(), i.faults.clone()));
    let text = text.ok_or("job has no placement")?;
    let mut placement = parse_placement(&text).map_err(|e| e.to_string())?;
    let previous = previous.unwrap_or_else(|| FaultMap::new(board.mesh()));
    let (current, report) = repair_chip(&mapper, &job.spec, &mut placement, &previous, chip)?;
    let text = render_placement(&placement);
    let digest = sha256_hex(text.as_bytes());
    shared.spool.write_placement(job.id, &text).map_err(|e| e.to_string())?;
    job.with_inner(|i| {
        i.placement_json = Some(text);
        i.placement_sha256 = Some(digest.clone());
        i.faults = Some(current);
        if !i.dead_chips.contains(&chip) {
            i.dead_chips.push(chip);
        }
        i.degraded = report.degraded.clone();
    });
    shared.chip_faults_total.fetch_add(1, SeqCst);
    Ok(ChipRepair {
        moved: report.moved,
        region_cores: report.region_cores,
        degraded: report.degraded,
        placement_sha256: digest,
    })
}

/// Handles one connection: one request, one response, close — all of it
/// inside the configured I/O deadline, so no client behavior (slow
/// loris, stalled body, mid-body disconnect) can wedge this thread.
fn handle_connection(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(shared.io_timeout));
    let deadline = Instant::now() + shared.io_timeout;
    let request = match http::read_request(&mut stream, deadline) {
        Ok(Some(request)) => request,
        Ok(None) => return,
        Err(bad) => {
            if bad.status == 408 {
                shared.timeouts_total.fetch_add(1, SeqCst);
            }
            let _ = http::respond_error(&mut stream, bad.status, bad.reason, &bad.message);
            return;
        }
    };
    let _ = route(shared, &request, &mut stream);
}

/// Dispatches one request to its handler.
fn route(shared: &Shared, req: &Request, stream: &mut TcpStream) -> std::io::Result<()> {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/jobs") => post_job(shared, req, stream),
        ("POST", "/faults/chip") => post_chip_fault(shared, req, stream),
        ("GET", "/healthz") => {
            let body = serde_json::json!({ "status": "ok" });
            respond_json(stream, 200, "OK", &body)
        }
        ("GET", "/metrics") => {
            let page = metrics::render(shared);
            http::respond(stream, 200, "OK", "text/plain; version=0.0.4", page.as_bytes())
        }
        (method, path) => match (method, parse_job_path(path)) {
            ("GET", Some((id, false))) => get_job(shared, id, stream),
            ("GET", Some((id, true))) => get_placement(shared, id, stream),
            ("DELETE", Some((id, false))) => delete_job(shared, id, stream),
            _ => http::respond_error(stream, 404, "Not Found", &format!("{method} {path}")),
        },
    }
}

/// `/jobs/{id}` → `(id, false)`; `/jobs/{id}/placement` → `(id, true)`.
fn parse_job_path(path: &str) -> Option<(u64, bool)> {
    let rest = path.strip_prefix("/jobs/")?;
    let (id, placement) = match rest.strip_suffix("/placement") {
        Some(id) => (id, true),
        None => (rest, false),
    };
    if id.is_empty() || id.contains('/') {
        return None;
    }
    id.parse().ok().map(|id| (id, placement))
}

/// `Retry-After` hint on 503: a drain ends with a daemon restart (or a
/// peer taking over), which takes seconds, not milliseconds.
const RETRY_AFTER_DRAINING: &str = "5";

/// `Retry-After` hint on 429: queue pressure clears as fast as one job
/// finishes.
const RETRY_AFTER_QUEUE_FULL: &str = "1";

fn post_job(shared: &Shared, req: &Request, stream: &mut TcpStream) -> std::io::Result<()> {
    if shared.draining.load(SeqCst) {
        return http::respond_error_with_headers(
            stream,
            503,
            "Service Unavailable",
            &[("Retry-After", RETRY_AFTER_DRAINING.to_string())],
            "daemon is draining",
        );
    }
    let Ok(body) = std::str::from_utf8(&req.body) else {
        return http::respond_error(stream, 400, "Bad Request", "body is not UTF-8");
    };
    let spec = match parse_job(body) {
        Ok(spec) => spec,
        Err(e) => return http::respond_error(stream, 400, "Bad Request", &e.to_string()),
    };
    if lock(&shared.queue).len() >= shared.queue_capacity {
        return http::respond_error_with_headers(
            stream,
            429,
            "Too Many Requests",
            &[("Retry-After", RETRY_AFTER_QUEUE_FULL.to_string())],
            &format!("queue is full ({} jobs)", shared.queue_capacity),
        );
    }
    // Spool before acknowledging: every job a client has an id for
    // survives a crash. `create_job`'s `create_dir` is the id arbiter
    // between daemons sharing the spool — on a collision (a peer
    // allocated this id first), advance and try the next one.
    let mut id = shared.next_id.fetch_add(1, SeqCst);
    loop {
        match shared.spool.create_job(id, body) {
            Ok(()) => break,
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                shared.next_id.fetch_max(id + 1, SeqCst);
                id = shared.next_id.fetch_add(1, SeqCst);
            }
            Err(e) => {
                return http::respond_error(
                    stream,
                    500,
                    "Internal Server Error",
                    &format!("spooling job: {e}"),
                );
            }
        }
    }
    let job = Arc::new(Job::new(id, spec, JobState::Queued));
    lock(&shared.jobs).insert(id, Arc::clone(&job));
    lock(&shared.queue).push_back(job);
    shared.queue_cond.notify_one();
    shared.submitted_total.fetch_add(1, SeqCst);
    let body = serde_json::json!({ "id": id, "state": "queued" });
    respond_json(stream, 201, "Created", &body)
}

/// The `POST /faults/chip` body.
#[derive(serde::Deserialize)]
struct ChipFaultDoc {
    /// The target job.
    id: u64,
    /// The chip to kill (row-major chip index on the job's board).
    chip: u32,
}

/// `POST /faults/chip` — injects a whole-chip loss into a board job.
///
/// A `done` job is repaired synchronously (`200` with the repair
/// summary). A `queued` or `running` job records the fault as pending
/// (`202`); injection into a running job additionally raises the
/// engine's cancel flag, so refinement stops at the next sweep boundary
/// and the worker repairs the best-so-far placement online. Jobs without
/// a board, terminal-failed/cancelled jobs, and repeat kills of the same
/// chip conflict (`409`).
fn post_chip_fault(shared: &Shared, req: &Request, stream: &mut TcpStream) -> std::io::Result<()> {
    let Ok(body) = std::str::from_utf8(&req.body) else {
        return http::respond_error(stream, 400, "Bad Request", "body is not UTF-8");
    };
    // Hardened like every network-facing parser in this workspace.
    if let Err(e) = reject_duplicate_keys(body) {
        return http::respond_error(stream, 400, "Bad Request", &e.to_string());
    }
    let doc: ChipFaultDoc = match serde_json::from_str(body) {
        Ok(doc) => doc,
        Err(e) => return http::respond_error(stream, 400, "Bad Request", &e.to_string()),
    };
    let Some(job) = lock(&shared.jobs).get(&doc.id).cloned() else {
        return no_such_job(stream, doc.id);
    };
    let Some(board) = &job.spec.board else {
        return http::respond_error(
            stream,
            409,
            "Conflict",
            &format!("job {} has no board; submit it with a `board` to inject chip faults", doc.id),
        );
    };
    if doc.chip >= board.num_chips() {
        return http::respond_error(
            stream,
            400,
            "Bad Request",
            &format!("chip {} outside the job's {}-chip board", doc.chip, board.num_chips()),
        );
    }
    let already = job.with_inner(|i| i.dead_chips.contains(&doc.chip));
    if already {
        return http::respond_error(
            stream,
            409,
            "Conflict",
            &format!("chip {} of job {} is already dead", doc.chip, doc.id),
        );
    }
    match job.state() {
        JobState::Done => match apply_chip_fault(shared, &job, doc.chip) {
            Ok(repair) => {
                let body = serde_json::json!({
                    "id": doc.id,
                    "chip": doc.chip,
                    "state": "done",
                    "moved": repair.moved,
                    "region_cores": repair.region_cores,
                    "degraded": repair.degraded.as_ref().map(degraded_value),
                    "placement_sha256": repair.placement_sha256,
                });
                respond_json(stream, 200, "OK", &body)
            }
            Err(message) => http::respond_error(
                stream,
                500,
                "Internal Server Error",
                &format!("repairing job {} after losing chip {}: {message}", doc.id, doc.chip),
            ),
        },
        state @ (JobState::Queued | JobState::Running) => {
            if !job.push_pending_chip(doc.chip) {
                return http::respond_error(
                    stream,
                    409,
                    "Conflict",
                    &format!("chip {} of job {} is already scheduled to die", doc.chip, doc.id),
                );
            }
            // Stop refining a layout whose board just lost a chip; the
            // worker finishes with the best-so-far placement and repairs
            // it. (Raised for queued jobs too: their run stops at the
            // first sweep boundary and goes straight to repair — the
            // hardware is already degraded, so long refinement of the
            // pre-fault layout would be wasted work.)
            job.cancel.store(true, SeqCst);
            // The worker may have finished between the state read and the
            // push; drain here so the fault is never stranded.
            if job.state() == JobState::Done {
                while let Some(chip) = job.pop_pending_chip() {
                    if let Err(message) = apply_chip_fault(shared, &job, chip) {
                        return http::respond_error(
                            stream,
                            500,
                            "Internal Server Error",
                            &format!(
                                "repairing job {} after losing chip {chip}: {message}",
                                doc.id
                            ),
                        );
                    }
                }
            }
            let body = serde_json::json!({
                "id": doc.id,
                "chip": doc.chip,
                "state": state.as_str(),
                "pending": true,
            });
            respond_json(stream, 202, "Accepted", &body)
        }
        state => http::respond_error(
            stream,
            409,
            "Conflict",
            &format!("job {} is {state}; chip faults apply to queued, running, or done jobs", doc.id),
        ),
    }
}

/// Renders a [`DegradedPlacement`] for status/repair JSON bodies.
fn degraded_value(d: &DegradedPlacement) -> serde_json::Value {
    serde_json::json!({
        "unplaced": d.unplaced,
        "demand_neurons": d.demand_neurons,
        "demand_synapses": d.demand_synapses,
        "spare_neurons": d.spare_neurons,
        "spare_synapses": d.spare_synapses,
    })
}

fn get_job(shared: &Shared, id: u64, stream: &mut TcpStream) -> std::io::Result<()> {
    let Some(job) = lock(&shared.jobs).get(&id).cloned() else {
        return no_such_job(stream, id);
    };
    let snap = job.progress.snapshot();
    let (state, error, stop, sha, dead_chips, degraded) = job.with_inner(|i| {
        (
            i.state,
            i.error.clone(),
            i.stop.clone(),
            i.placement_sha256.clone(),
            i.dead_chips.clone(),
            i.degraded.clone(),
        )
    });
    let body = serde_json::json!({
        "id": job.id,
        "state": state.as_str(),
        "clusters": job.spec.pcn.num_clusters(),
        "mesh": format!("{}x{}", job.spec.mesh.rows(), job.spec.mesh.cols()),
        "board": opt_value(job.spec.board.as_ref().map(|b| b.to_string())),
        "objective": job.spec.objective.label(),
        "sim_in_loop": opt_value(job.spec.sim_in_loop),
        "sweeps": snap.sweeps,
        "swaps": snap.swaps,
        "energy": opt_value(snap.energy),
        "stop": opt_value(stop),
        "error": opt_value(error),
        "placement_sha256": opt_value(sha),
        "dead_chips": dead_chips,
        "degraded": degraded.as_ref().map(degraded_value),
    });
    respond_json(stream, 200, "OK", &body)
}

fn get_placement(shared: &Shared, id: u64, stream: &mut TcpStream) -> std::io::Result<()> {
    let Some(job) = lock(&shared.jobs).get(&id).cloned() else {
        return no_such_job(stream, id);
    };
    let (state, placement) = job.with_inner(|i| (i.state, i.placement_json.clone()));
    match placement {
        Some(text) if state == JobState::Done => {
            http::respond(stream, 200, "OK", "application/json", text.as_bytes())
        }
        _ => http::respond_error(
            stream,
            409,
            "Conflict",
            &format!("job {id} is {state}, not done"),
        ),
    }
}

fn delete_job(shared: &Shared, id: u64, stream: &mut TcpStream) -> std::io::Result<()> {
    let Some(job) = lock(&shared.jobs).get(&id).cloned() else {
        return no_such_job(stream, id);
    };
    let state = job.state();
    if state.is_terminal() {
        return http::respond_error(
            stream,
            409,
            "Conflict",
            &format!("job {id} is already {state}"),
        );
    }
    job.client_cancelled.store(true, SeqCst);
    job.cancel.store(true, SeqCst);
    // A queued job cancels immediately; a running one stops at the FD
    // engine's next sweep boundary (its worker persists the state).
    let state = if state == JobState::Queued {
        job.set_state(JobState::Cancelled);
        let _ = shared.spool.write_state(id, "cancelled", None);
        JobState::Cancelled
    } else {
        state
    };
    let body = serde_json::json!({ "id": id, "state": state.as_str() });
    respond_json(stream, 202, "Accepted", &body)
}

fn no_such_job(stream: &mut TcpStream, id: u64) -> std::io::Result<()> {
    http::respond_error(stream, 404, "Not Found", &format!("no job {id}"))
}

fn respond_json(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    body: &serde_json::Value,
) -> std::io::Result<()> {
    let text = serde_json::to_string(body).unwrap_or_default();
    http::respond(stream, status, reason, "application/json", text.as_bytes())
}

/// `Some(v)` → its JSON value, `None` → `null`.
fn opt_value<T: serde::Serialize>(v: Option<T>) -> serde_json::Value {
    match v {
        Some(v) => serde_json::to_value(&v),
        None => serde_json::Value::Null,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snnmap_io::render_pcn;
    use snnmap_model::generators::random_pcn;

    /// Minimal blocking HTTP client for the tests.
    fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
        use std::io::{Read as _, Write as _};
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .expect("send");
        let mut text = String::new();
        stream.read_to_string(&mut text).expect("read");
        let status = text
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("bad response: {text}"));
        let body = text.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
        (status, body)
    }

    fn json_field(body: &str, key: &str) -> serde_json::Value {
        let value: serde_json::Value = serde_json::from_str(body).expect("response is JSON");
        value.as_object().and_then(|o| o.get(key)).cloned().unwrap_or(serde_json::Value::Null)
    }

    fn json_u64(body: &str, key: &str) -> u64 {
        match json_field(body, key) {
            serde_json::Value::Number(n) => n.as_f64() as u64,
            other => panic!("`{key}` is not a number: {other:?}"),
        }
    }

    fn temp_config(tag: &str) -> ServeConfig {
        let spool_dir = std::env::temp_dir().join(format!("snnmap_serve_server_{tag}"));
        let _ = std::fs::remove_dir_all(&spool_dir);
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            spool_dir,
            queue_capacity: 8,
            ..ServeConfig::default()
        }
    }

    fn job_body(clusters: u32, seed: u64, max_sweeps: u64) -> String {
        let pcn = random_pcn(clusters, 3.0, seed).unwrap();
        let body = serde_json::json!({
            "format": "snnmap-job-v1",
            "pcn": render_pcn(&pcn),
            "max_sweeps": max_sweeps,
        });
        serde_json::to_string(&body).unwrap()
    }

    fn wait_terminal(addr: SocketAddr, id: u64) -> (String, String) {
        for _ in 0..600 {
            let (status, body) = request(addr, "GET", &format!("/jobs/{id}"), "");
            assert_eq!(status, 200, "{body}");
            let state = json_field(&body, "state").as_str().unwrap_or_default().to_string();
            if ["done", "failed", "cancelled"].contains(&state.as_str()) {
                return (state, body);
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        panic!("job {id} never reached a terminal state");
    }

    #[test]
    fn round_trip_matches_the_offline_mapper() {
        let server = Server::bind(&temp_config("roundtrip")).unwrap();
        let addr = server.local_addr().unwrap();
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let handle = std::thread::spawn(move || server.run(&flag));

        let (status, body) = request(addr, "GET", "/healthz", "");
        assert_eq!(status, 200, "{body}");

        let (status, body) = request(addr, "POST", "/jobs", &job_body(60, 7, 12));
        assert_eq!(status, 201, "{body}");
        let id = json_u64(&body, "id");
        let (state, status_body) = wait_terminal(addr, id);
        assert_eq!(state, "done", "{status_body}");
        assert_eq!(
            json_field(&status_body, "stop").as_str(),
            Some("sweep_cap_reached"),
            "{status_body}"
        );

        let (status, placement) = request(addr, "GET", &format!("/jobs/{id}/placement"), "");
        assert_eq!(status, 200);
        // Byte-for-byte what the offline pipeline produces.
        let pcn = random_pcn(60, 3.0, 7).unwrap();
        let mesh = snnmap_hw::Mesh::square_for(60).unwrap();
        let mut opts = FdRunOpts {
            budget: RunBudget { max_sweeps: Some(12), ..RunBudget::default() },
            ..FdRunOpts::default()
        };
        let offline = Mapper::builder()
            .initial_placement(InitialPlacement::Hilbert)
            .potential(Potential::L2Squared)
            .lambda(0.3)
            .build()
            .map_budgeted(&pcn, mesh, &mut opts)
            .unwrap();
        assert_eq!(placement, render_placement(&offline.placement));
        assert_eq!(
            json_field(&status_body, "placement_sha256").as_str(),
            Some(sha256_hex(placement.as_bytes()).as_str())
        );

        let (status, metrics_page) = request(addr, "GET", "/metrics", "");
        assert_eq!(status, 200);
        assert!(metrics_page.contains("snnmap_serve_jobs{state=\"done\"} 1"), "{metrics_page}");
        assert!(metrics_page.contains("snnmap_serve_workers 2"), "{metrics_page}");

        shutdown.store(true, SeqCst);
        let report = handle.join().unwrap();
        assert_eq!(report.jobs_total, 1);
        assert_eq!(report.queued_left, 0);
    }

    #[test]
    fn objective_jobs_run_sim_in_loop_and_match_the_offline_mapper() {
        let server = Server::bind(&temp_config("objective")).unwrap();
        let addr = server.local_addr().unwrap();
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let handle = std::thread::spawn(move || server.run(&flag));

        let pcn = random_pcn(36, 3.0, 9).unwrap();
        let body = serde_json::json!({
            "format": "snnmap-job-v1",
            "pcn": render_pcn(&pcn),
            "max_sweeps": 8,
            "objective": "composite",
            "lambda_congestion": 1.5,
            "sim_in_loop": 2,
        });
        let (status, body) =
            request(addr, "POST", "/jobs", &serde_json::to_string(&body).unwrap());
        assert_eq!(status, 201, "{body}");
        let id = json_u64(&body, "id");
        let (state, status_body) = wait_terminal(addr, id);
        assert_eq!(state, "done", "{status_body}");
        assert_eq!(json_field(&status_body, "objective").as_str(), Some("composite"));
        assert_eq!(json_u64(&status_body, "sim_in_loop"), 2, "{status_body}");

        // Byte-for-byte what the CLI-shaped offline pipeline produces
        // with the same objective, cadence, and seeded NoC hook.
        let (status, placement) = request(addr, "GET", &format!("/jobs/{id}/placement"), "");
        assert_eq!(status, 200);
        let mesh = snnmap_hw::Mesh::square_for(36).unwrap();
        let mut hook = NocReweighter::new(&pcn, noc_scale(&pcn), SIM_CYCLES, 42);
        let mut opts = FdRunOpts {
            budget: RunBudget { max_sweeps: Some(8), ..RunBudget::default() },
            ..FdRunOpts::default()
        };
        opts.reweighter = Some(&mut hook);
        let offline = Mapper::builder()
            .initial_placement(InitialPlacement::Hilbert)
            .potential(Potential::L2Squared)
            .lambda(0.3)
            .objective(snnmap_core::Objective::Composite { lambda_c: 1.5, lambda_t: 0.0 })
            .reweight_every(2)
            .build()
            .map_budgeted(&pcn, mesh, &mut opts)
            .unwrap();
        assert_eq!(placement, render_placement(&offline.placement));

        // Checkpoint-incompatible knob combinations die at submission.
        let bad = serde_json::json!({
            "format": "snnmap-job-v1",
            "pcn": render_pcn(&pcn),
            "objective": "congestion",
            "sim_in_loop": 2,
            "checkpoint_every": 4,
        });
        let (status, body) =
            request(addr, "POST", "/jobs", &serde_json::to_string(&bad).unwrap());
        assert_eq!(status, 400, "{body}");

        shutdown.store(true, SeqCst);
        handle.join().unwrap();
    }

    #[test]
    fn chip_fault_on_a_done_board_job_repairs_in_place() {
        let server = Server::bind(&temp_config("chipfault")).unwrap();
        let addr = server.local_addr().unwrap();
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let handle = std::thread::spawn(move || server.run(&flag));

        const BOARD: &str = "2x2/4x4@4096,65536";
        let pcn = random_pcn(40, 3.0, 7).unwrap();
        let body = serde_json::json!({
            "format": "snnmap-job-v1",
            "pcn": render_pcn(&pcn),
            "board": BOARD,
            "max_sweeps": 8,
        });
        let (status, body) = request(addr, "POST", "/jobs", &serde_json::to_string(&body).unwrap());
        assert_eq!(status, 201, "{body}");
        let id = json_u64(&body, "id");
        let (state, status_body) = wait_terminal(addr, id);
        assert_eq!(state, "done", "{status_body}");
        assert!(
            json_field(&status_body, "board").as_str().unwrap_or_default().contains("2x2 chips"),
            "{status_body}"
        );

        // Kill chip 3; the repair summary comes back synchronously.
        let fault = format!("{{\"id\": {id}, \"chip\": 3}}");
        let (status, body) = request(addr, "POST", "/faults/chip", &fault);
        assert_eq!(status, 200, "{body}");
        assert!(json_field(&body, "degraded").is_null(), "{body}");
        let sha = json_field(&body, "placement_sha256").as_str().unwrap().to_string();

        // The repaired placement is capacity-valid on the faulted board.
        let (status, placement_text) = request(addr, "GET", &format!("/jobs/{id}/placement"), "");
        assert_eq!(status, 200);
        assert_eq!(sha256_hex(placement_text.as_bytes()), sha);
        let placement = snnmap_io::parse_placement(&placement_text).unwrap();
        let board = snnmap_hw::Board::parse(BOARD).unwrap();
        let mut faults = FaultMap::new(board.mesh());
        faults.kill_chip(&board, 3).unwrap();
        let report =
            snnmap_core::validate_board(&pcn, &placement, Some(&faults), &board).unwrap();
        assert!(report.is_ok(), "{:?}", report.violations());

        // Status reflects the loss; sha matches the repaired document.
        let (status, status_body) = request(addr, "GET", &format!("/jobs/{id}"), "");
        assert_eq!(status, 200);
        assert_eq!(serde_json::to_string(&json_field(&status_body, "dead_chips")).unwrap(), "[3]", "{status_body}");
        assert_eq!(json_field(&status_body, "placement_sha256").as_str(), Some(sha.as_str()));

        // Guard rails: repeat kill conflicts, out-of-range chip and
        // duplicate keys are bad requests, unknown jobs are 404, and a
        // boardless job refuses injection.
        let (status, body) = request(addr, "POST", "/faults/chip", &fault);
        assert_eq!(status, 409, "{body}");
        let (status, _) =
            request(addr, "POST", "/faults/chip", &format!("{{\"id\": {id}, \"chip\": 99}}"));
        assert_eq!(status, 400);
        let dup = format!("{{\"id\": {id}, \"id\": {id}, \"chip\": 2}}");
        let (status, body) = request(addr, "POST", "/faults/chip", &dup);
        assert_eq!(status, 400);
        assert!(body.contains("duplicate JSON key"), "{body}");
        let (status, _) = request(addr, "POST", "/faults/chip", "{\"id\": 999, \"chip\": 0}");
        assert_eq!(status, 404);
        let (status, body) = request(addr, "POST", "/jobs", &job_body(12, 1, 4));
        assert_eq!(status, 201, "{body}");
        let plain = json_u64(&body, "id");
        wait_terminal(addr, plain);
        let (status, body) =
            request(addr, "POST", "/faults/chip", &format!("{{\"id\": {plain}, \"chip\": 0}}"));
        assert_eq!(status, 409);
        assert!(body.contains("no board"), "{body}");

        let (status, metrics_page) = request(addr, "GET", "/metrics", "");
        assert_eq!(status, 200);
        assert!(metrics_page.contains("snnmap_serve_chip_faults_total 1"), "{metrics_page}");

        shutdown.store(true, SeqCst);
        handle.join().unwrap();
    }

    #[test]
    fn chip_fault_beyond_capacity_degrades_without_killing_the_daemon() {
        let server = Server::bind(&temp_config("degraded")).unwrap();
        let addr = server.local_addr().unwrap();
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let handle = std::thread::spawn(move || server.run(&flag));

        // Four 1-neuron clusters exactly fill a 1x4 mesh of 1-neuron
        // cores; losing chip 1 (two cores) leaves zero spare capacity.
        let pcn_text = "pcn v1\nclusters 4\ncluster 0 1 0\ncluster 1 1 0\n\
                        cluster 2 1 0\ncluster 3 1 0\nedge 0 1 1.0\nedge 2 3 1.0\n";
        let body = serde_json::json!({
            "format": "snnmap-job-v1",
            "pcn": pcn_text,
            "board": "1x2/1x2@1,64",
            "max_sweeps": 4,
        });
        let (status, body) = request(addr, "POST", "/jobs", &serde_json::to_string(&body).unwrap());
        assert_eq!(status, 201, "{body}");
        let id = json_u64(&body, "id");
        let (state, _) = wait_terminal(addr, id);
        assert_eq!(state, "done");

        let (status, body) =
            request(addr, "POST", "/faults/chip", &format!("{{\"id\": {id}, \"chip\": 1}}"));
        assert_eq!(status, 200, "{body}");
        let degraded = json_field(&body, "degraded");
        let unplaced = degraded
            .as_object()
            .and_then(|o| o.get("unplaced"))
            .and_then(|u| u.as_array())
            .expect("degraded report with unplaced list");
        assert_eq!(unplaced.len(), 2, "{body}");

        // The job is still done, the degraded report is in the status,
        // and the daemon is alive and well.
        let (status, status_body) = request(addr, "GET", &format!("/jobs/{id}"), "");
        assert_eq!(status, 200);
        assert_eq!(json_field(&status_body, "state").as_str(), Some("done"));
        assert!(!json_field(&status_body, "degraded").is_null(), "{status_body}");
        let (status, _) = request(addr, "GET", "/healthz", "");
        assert_eq!(status, 200);

        shutdown.store(true, SeqCst);
        handle.join().unwrap();
    }

    #[test]
    fn chip_fault_interrupts_a_running_board_job() {
        let server = Server::bind(&temp_config("chiplive")).unwrap();
        let addr = server.local_addr().unwrap();
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let handle = std::thread::spawn(move || server.run(&flag));

        const BOARD: &str = "2x2/16x16@4096,65536";
        let pcn = random_pcn(400, 3.0, 11).unwrap();
        let body = serde_json::json!({
            "format": "snnmap-job-v1",
            "pcn": render_pcn(&pcn),
            "board": BOARD,
            "max_sweeps": 100_000,
        });
        let (status, body) = request(addr, "POST", "/jobs", &serde_json::to_string(&body).unwrap());
        assert_eq!(status, 201, "{body}");
        let id = json_u64(&body, "id");

        // Inject the loss while the job is queued or running; either way
        // it is accepted as pending and applied by the worker.
        let (status, body) =
            request(addr, "POST", "/faults/chip", &format!("{{\"id\": {id}, \"chip\": 2}}"));
        assert!(status == 202 || status == 200, "{status}: {body}");

        let (state, status_body) = wait_terminal(addr, id);
        assert_eq!(state, "done", "{status_body}");
        assert_eq!(serde_json::to_string(&json_field(&status_body, "dead_chips")).unwrap(), "[2]", "{status_body}");

        let (status, placement_text) = request(addr, "GET", &format!("/jobs/{id}/placement"), "");
        assert_eq!(status, 200);
        let placement = snnmap_io::parse_placement(&placement_text).unwrap();
        let board = snnmap_hw::Board::parse(BOARD).unwrap();
        let mut faults = FaultMap::new(board.mesh());
        faults.kill_chip(&board, 2).unwrap();
        let report =
            snnmap_core::validate_board(&pcn, &placement, Some(&faults), &board).unwrap();
        assert!(report.is_ok(), "{:?}", report.violations());

        shutdown.store(true, SeqCst);
        handle.join().unwrap();
    }

    #[test]
    fn bad_requests_get_typed_errors_and_delete_cancels() {
        let server = Server::bind(&temp_config("errors")).unwrap();
        let addr = server.local_addr().unwrap();
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let handle = std::thread::spawn(move || server.run(&flag));

        let (status, _) = request(addr, "GET", "/nope", "");
        assert_eq!(status, 404);
        let (status, _) = request(addr, "GET", "/jobs/999", "");
        assert_eq!(status, 404);
        let (status, body) = request(addr, "POST", "/jobs", "{\"format\": \"wrong\"}");
        assert_eq!(status, 400, "{body}");
        // Duplicate keys are rejected with the typed io error.
        let dup = job_body(12, 1, 4).replacen('{', "{\"seed\": 1, \"seed\": 2, ", 1);
        let (status, body) = request(addr, "POST", "/jobs", &dup);
        assert_eq!(status, 400);
        assert!(body.contains("duplicate JSON key"), "{body}");

        // Cancel: big enough to still be queued or running when the
        // DELETE lands; either way it must land terminal-cancelled
        // without producing a placement.
        let (status, body) = request(addr, "POST", "/jobs", &job_body(400, 3, 100_000));
        assert_eq!(status, 201, "{body}");
        let id = json_u64(&body, "id");
        let (status, body) = request(addr, "DELETE", &format!("/jobs/{id}"), "");
        assert_eq!(status, 202, "{body}");
        let (state, _) = wait_terminal(addr, id);
        assert_eq!(state, "cancelled");
        let (status, _) = request(addr, "GET", &format!("/jobs/{id}/placement"), "");
        assert_eq!(status, 409);
        // Cancelling a terminal job conflicts.
        let (status, _) = request(addr, "DELETE", &format!("/jobs/{id}"), "");
        assert_eq!(status, 409);

        shutdown.store(true, SeqCst);
        handle.join().unwrap();
    }
}
