//! SIGINT/SIGTERM → a shared cancellation flag.
//!
//! The crate denies `unsafe`; this module is the one audited exception
//! (registering an OS signal handler cannot be written without an
//! `extern` declaration). The handler itself does the absolute minimum
//! that is async-signal-safe: flip one `AtomicBool` (behind a lock-free
//! `OnceLock::get`), or [`std::process::abort`] on the *second* signal
//! so an operator's repeated Ctrl-C always wins over a wedged drain.
//!
//! Consumers pass the installed flag wherever a cooperative cancel flag
//! is accepted: `snnmap map`/`resume` hand it to
//! [`RunBudget::cancel`](snnmap_core::RunBudget) so Ctrl-C stops the FD
//! engine at the next sweep boundary (flushing a best-effort checkpoint
//! on the way out), and `snnmap serve` polls it in the accept loop to
//! begin a graceful drain.
#![allow(unsafe_code)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

/// The process-wide terminate flag the handler raises.
static FLAG: OnceLock<Arc<AtomicBool>> = OnceLock::new();

#[cfg(unix)]
mod sys {
    pub(super) const SIGINT: i32 = 2;
    pub(super) const SIGTERM: i32 = 15;

    extern "C" {
        /// libc's `signal(2)`. On Linux/glibc this is the BSD-semantics
        /// variant: the handler stays installed and interrupted slow
        /// syscalls restart, which is exactly what a cooperative
        /// sweep-boundary cancel wants.
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub(super) fn install(handler: extern "C" fn(i32)) {
        // SAFETY: `handler` only touches lock-free atomics (see
        // `on_terminate`), which is async-signal-safe; `signal` itself
        // is always safe to call with a valid function pointer.
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }
}

#[cfg(not(unix))]
mod sys {
    /// No signal story off Unix: `install` still hands out a working
    /// flag, it just never fires from the OS.
    pub(super) fn install(_handler: extern "C" fn(i32)) {}
}

/// The signal handler: first signal raises the flag, second aborts.
extern "C" fn on_terminate(_signum: i32) {
    if let Some(flag) = FLAG.get() {
        if flag.swap(true, Ordering::SeqCst) {
            std::process::abort();
        }
    }
}

/// Installs the SIGINT/SIGTERM handler (once per process; subsequent
/// calls are no-ops) and returns the shared terminate flag.
///
/// The flag is process-global: every `install` caller sees the same
/// `Arc`, so a single Ctrl-C cancels the CLI run *and* drains the
/// daemon, whichever is active.
pub fn install() -> Arc<AtomicBool> {
    let flag = FLAG.get_or_init(|| Arc::new(AtomicBool::new(false))).clone();
    static INSTALLED: OnceLock<()> = OnceLock::new();
    INSTALLED.get_or_init(|| sys::install(on_terminate));
    flag
}

/// Clears the terminate flag.
///
/// For processes that survive a handled signal (a drained daemon asked
/// to start serving again) and for tests that simulate an interrupt by
/// setting the flag directly.
pub fn reset() {
    if let Some(flag) = FLAG.get() {
        flag.store(false, Ordering::SeqCst);
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;

    extern "C" {
        fn raise(signum: i32) -> i32;
    }

    #[test]
    fn a_raised_sigterm_sets_the_flag_instead_of_killing_the_process() {
        let flag = install();
        assert!(!flag.load(Ordering::SeqCst));
        // SAFETY: the handler is installed above, so the signal is
        // caught, flips the flag, and the test process survives.
        unsafe {
            raise(sys::SIGTERM);
        }
        assert!(flag.load(Ordering::SeqCst), "handler must raise the flag");
        // Both install() callers share the one flag.
        assert!(install().load(Ordering::SeqCst));
        reset();
        assert!(!flag.load(Ordering::SeqCst));
    }
}
