//! Bounded retry with exponential backoff for transient spool I/O.
//!
//! A shared spool directory sees transient failures a single-process
//! spool never did: a peer deleting a `.tmp` we were about to rename, a
//! disk briefly full, an injected chaos fault. One bounded retry loop
//! with exponential backoff handles all of them; the retry count is
//! surfaced on `/metrics` so an operator can see a disk going bad long
//! before jobs start failing.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Duration;

/// Retry schedule: `attempts` tries total, sleeping `base * 2^i` (capped
/// at `max`) between them.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RetryPolicy {
    pub attempts: u32,
    pub base: Duration,
    pub max: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self { attempts: 4, base: Duration::from_millis(10), max: Duration::from_millis(500) }
    }
}

impl RetryPolicy {
    /// The sleep before retry number `retry` (0-based).
    fn backoff(&self, retry: u32) -> Duration {
        let factor = 1u32 << retry.min(16);
        self.base.saturating_mul(factor).min(self.max)
    }
}

/// Runs `op` up to `policy.attempts` times. Every retry (not the first
/// attempt) bumps `counter`. `fatal` short-circuits errors that must not
/// be retried (e.g. `AlreadyExists` during id allocation, where the
/// error *is* the answer).
pub(crate) fn with_retry<T, E>(
    policy: &RetryPolicy,
    counter: &AtomicU64,
    fatal: impl Fn(&E) -> bool,
    mut op: impl FnMut() -> Result<T, E>,
) -> Result<T, E> {
    let attempts = policy.attempts.max(1);
    let mut retry = 0;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if fatal(&e) || retry + 1 >= attempts => return Err(e),
            Err(_) => {
                std::thread::sleep(policy.backoff(retry));
                retry += 1;
                counter.fetch_add(1, Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn succeeds_without_retrying() {
        let counter = AtomicU64::new(0);
        let r: Result<i32, &str> =
            with_retry(&RetryPolicy::default(), &counter, |_| false, || Ok(7));
        assert_eq!(r, Ok(7));
        assert_eq!(counter.load(Relaxed), 0);
    }

    #[test]
    fn retries_transient_failures_then_succeeds() {
        let counter = AtomicU64::new(0);
        let policy =
            RetryPolicy { attempts: 4, base: Duration::from_millis(1), max: Duration::from_millis(2) };
        let mut calls = 0;
        let r: Result<i32, &str> = with_retry(&policy, &counter, |_| false, || {
            calls += 1;
            if calls < 3 {
                Err("transient")
            } else {
                Ok(calls)
            }
        });
        assert_eq!(r, Ok(3));
        assert_eq!(counter.load(Relaxed), 2);
    }

    #[test]
    fn gives_up_after_the_budget() {
        let counter = AtomicU64::new(0);
        let policy =
            RetryPolicy { attempts: 3, base: Duration::from_millis(1), max: Duration::from_millis(1) };
        let mut calls = 0u32;
        let r: Result<(), &str> = with_retry(&policy, &counter, |_| false, || {
            calls += 1;
            Err("still broken")
        });
        assert_eq!(r, Err("still broken"));
        assert_eq!(calls, 3);
        assert_eq!(counter.load(Relaxed), 2);
    }

    #[test]
    fn fatal_errors_short_circuit() {
        let counter = AtomicU64::new(0);
        let mut calls = 0u32;
        let r: Result<(), i32> =
            with_retry(&RetryPolicy::default(), &counter, |&e| e == 17, || {
                calls += 1;
                Err(17)
            });
        assert_eq!(r, Err(17));
        assert_eq!(calls, 1, "a fatal error is never retried");
        assert_eq!(counter.load(Relaxed), 0);
    }

    #[test]
    fn backoff_grows_and_caps() {
        let p = RetryPolicy {
            attempts: 8,
            base: Duration::from_millis(10),
            max: Duration::from_millis(100),
        };
        assert_eq!(p.backoff(0), Duration::from_millis(10));
        assert_eq!(p.backoff(1), Duration::from_millis(20));
        assert_eq!(p.backoff(2), Duration::from_millis(40));
        assert_eq!(p.backoff(5), Duration::from_millis(100), "capped");
        assert_eq!(p.backoff(63), Duration::from_millis(100), "no overflow");
    }
}
