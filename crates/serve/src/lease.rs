//! Job leases: how N daemons share one spool without running the same
//! job twice (and how they deliberately do when a peer dies).
//!
//! Each job directory may hold a `LEASE` file:
//!
//! ```text
//! snnmap-lease-v1
//! owner <daemon id>
//! heartbeat_ms <unix millis of the last heartbeat>
//! ```
//!
//! The protocol, each step anchored to one atomic filesystem primitive:
//!
//! * **Acquire** — `O_CREAT|O_EXCL` (`create_new`): exactly one daemon
//!   creates the file; everyone else sees `AlreadyExists`.
//! * **Heartbeat** — temp + `rename` over `LEASE`: readers see the old
//!   record or the new one, never a torn timestamp.
//! * **Expire** — a lease whose heartbeat is older than the TTL marks a
//!   dead owner. An unparseable or empty `LEASE` (a crash between
//!   `create_new` and the first write) reads as heartbeat 0 — expired
//!   from birth, claimable by anyone.
//! * **Steal** — `rename(LEASE, LEASE.stale)` first: of N daemons
//!   racing to take over, exactly one rename succeeds (the others get
//!   `NotFound`), and the winner re-enters the ordinary `create_new`
//!   acquire, which stays the sole ownership arbiter.
//!
//! The worst interleaving — two daemons both believing they own a job
//! for one heartbeat interval — is *benign* here: mapping is
//! deterministic, both compute byte-identical placements, and every
//! spool write is atomic, so the second writer replaces equal bytes
//! with equal bytes. Leases exist to avoid wasted work and takeover
//! storms, not to guard correctness; determinism guards correctness.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

const FORMAT: &str = "snnmap-lease-v1";

/// A parsed `LEASE` file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct LeaseInfo {
    pub owner: String,
    pub heartbeat_ms: u64,
}

impl LeaseInfo {
    /// Whether the owner has missed its heartbeat by more than `ttl`.
    pub fn is_expired(&self, ttl: Duration) -> bool {
        now_ms().saturating_sub(self.heartbeat_ms) > ttl.as_millis() as u64
    }
}

/// What [`acquire_or_steal`] decided.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Acquire {
    /// We own the lease (fresh, re-entered, or refreshed).
    Acquired,
    /// We own it after evicting an expired peer's lease.
    Stolen {
        /// The dead peer's daemon id.
        from: String,
    },
    /// A live peer owns it; try again after its TTL.
    Held,
}

pub(crate) fn lease_path(job_dir: &Path) -> PathBuf {
    job_dir.join("LEASE")
}

/// Unix time in milliseconds (0 if the clock is before the epoch).
pub(crate) fn now_ms() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_millis() as u64).unwrap_or(0)
}

fn render(owner: &str) -> String {
    format!("{FORMAT}\nowner {owner}\nheartbeat_ms {}\n", now_ms())
}

/// Reads the lease, if any. A present-but-garbled file parses as an
/// expired lease (owner `""`, heartbeat 0) rather than `None`, so it is
/// stolen through the same rename arbitration instead of being treated
/// as free (two daemons treating garbage as free would both
/// `create_new`-fail and deadlock on it).
pub(crate) fn read(job_dir: &Path) -> Option<LeaseInfo> {
    let text = fs::read_to_string(lease_path(job_dir)).ok()?;
    Some(parse(&text).unwrap_or(LeaseInfo { owner: String::new(), heartbeat_ms: 0 }))
}

fn parse(text: &str) -> Option<LeaseInfo> {
    let mut lines = text.lines();
    if lines.next()? != FORMAT {
        return None;
    }
    let owner = lines.next()?.strip_prefix("owner ")?.to_string();
    let heartbeat_ms = lines.next()?.strip_prefix("heartbeat_ms ")?.parse().ok()?;
    Some(LeaseInfo { owner, heartbeat_ms })
}

/// Tries to create the lease. `Ok(true)` = we own it now; `Ok(false)` =
/// someone else holds it.
pub(crate) fn try_acquire(job_dir: &Path, owner: &str) -> io::Result<bool> {
    use std::io::Write as _;
    if snnmap_chaos::check("lease.acquire").is_some() {
        return Err(io::Error::other("injected lease-acquire failure"));
    }
    let mut file = match fs::OpenOptions::new()
        .write(true)
        .create_new(true)
        .open(lease_path(job_dir))
    {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::AlreadyExists => return Ok(false),
        Err(e) => return Err(e),
    };
    file.write_all(render(owner).as_bytes())?;
    Ok(true)
}

/// Refreshes our heartbeat. `Ok(false)` means the lease is no longer
/// ours (a peer stole it after deciding we were dead — benign, see the
/// module docs); `Ok(true)` means the new timestamp landed atomically.
pub(crate) fn heartbeat(job_dir: &Path, owner: &str) -> io::Result<bool> {
    match read(job_dir) {
        Some(info) if info.owner == owner => {}
        _ => return Ok(false),
    }
    let path = lease_path(job_dir);
    let tmp = job_dir.join("LEASE.hb");
    snnmap_chaos::cfs::write("lease.heartbeat", &tmp, render(owner).as_bytes())?;
    snnmap_chaos::cfs::rename("lease.heartbeat", &tmp, &path)?;
    Ok(true)
}

/// Drops the lease if we still own it. Best-effort: a missing or stolen
/// lease is already the state we wanted.
pub(crate) fn release(job_dir: &Path, owner: &str) {
    if read(job_dir).is_some_and(|info| info.owner == owner) {
        let _ = fs::remove_file(lease_path(job_dir));
    }
}

/// The full acquisition protocol: acquire a free lease, re-enter one we
/// already own, or steal an expired one (rename-arbitrated).
pub(crate) fn acquire_or_steal(
    job_dir: &Path,
    owner: &str,
    ttl: Duration,
) -> io::Result<Acquire> {
    if try_acquire(job_dir, owner)? {
        return Ok(Acquire::Acquired);
    }
    let Some(info) = read(job_dir) else {
        // Released between our create_new and read; next pass gets it.
        return Ok(Acquire::Held);
    };
    if info.owner == owner {
        // Ours from a previous run (same daemon id across a restart).
        heartbeat(job_dir, owner)?;
        return Ok(Acquire::Acquired);
    }
    if !info.is_expired(ttl) {
        return Ok(Acquire::Held);
    }
    // Expired: exactly one of the racing daemons wins this rename.
    let stale = job_dir.join("LEASE.stale");
    if fs::rename(lease_path(job_dir), &stale).is_err() {
        return Ok(Acquire::Held);
    }
    // ABA guard: between our read and our rename, a faster stealer may
    // have completed its takeover and written a *fresh* lease — which we
    // just renamed away. Check that what we moved is the expired record
    // we decided to evict; if not, put it back and yield.
    let moved = fs::read_to_string(&stale).ok().and_then(|t| parse(&t));
    if moved.as_ref() != Some(&info) && !(moved.is_none() && info.heartbeat_ms == 0) {
        let _ = fs::rename(&stale, lease_path(job_dir));
        return Ok(Acquire::Held);
    }
    let _ = fs::remove_file(&stale);
    if try_acquire(job_dir, owner)? {
        Ok(Acquire::Stolen { from: info.owner })
    } else {
        // A third daemon slipped its create_new in first; it owns it.
        Ok(Acquire::Held)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("snnmap_lease_{tag}"));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn acquire_is_exclusive_and_release_frees() {
        let dir = temp_dir("exclusive");
        assert!(try_acquire(&dir, "a").unwrap());
        assert!(!try_acquire(&dir, "b").unwrap(), "second daemon must lose");
        let info = read(&dir).unwrap();
        assert_eq!(info.owner, "a");
        assert!(info.heartbeat_ms > 0);
        release(&dir, "b");
        assert!(read(&dir).is_some(), "non-owner release is a no-op");
        release(&dir, "a");
        assert!(read(&dir).is_none());
        assert!(try_acquire(&dir, "b").unwrap(), "released lease is acquirable");
    }

    #[test]
    fn heartbeat_advances_only_for_the_owner() {
        let dir = temp_dir("heartbeat");
        assert!(try_acquire(&dir, "a").unwrap());
        let before = read(&dir).unwrap().heartbeat_ms;
        std::thread::sleep(Duration::from_millis(5));
        assert!(heartbeat(&dir, "a").unwrap());
        assert!(read(&dir).unwrap().heartbeat_ms > before);
        assert!(!heartbeat(&dir, "b").unwrap(), "a non-owner must not refresh");
        assert_eq!(read(&dir).unwrap().owner, "a");
    }

    #[test]
    fn expiry_and_steal() {
        let dir = temp_dir("steal");
        assert!(try_acquire(&dir, "dead").unwrap());
        let ttl = Duration::from_millis(30);
        assert_eq!(acquire_or_steal(&dir, "b", ttl).unwrap(), Acquire::Held);
        std::thread::sleep(Duration::from_millis(60));
        assert!(read(&dir).unwrap().is_expired(ttl));
        assert_eq!(
            acquire_or_steal(&dir, "b", ttl).unwrap(),
            Acquire::Stolen { from: "dead".to_string() }
        );
        assert_eq!(read(&dir).unwrap().owner, "b");
        // Re-entry by the new owner refreshes rather than steals.
        assert_eq!(acquire_or_steal(&dir, "b", ttl).unwrap(), Acquire::Acquired);
    }

    #[test]
    fn garbled_lease_reads_as_expired_and_is_stolen() {
        let dir = temp_dir("garbled");
        fs::write(lease_path(&dir), "not a lease at all").unwrap();
        let info = read(&dir).unwrap();
        assert_eq!(info.owner, "");
        assert!(info.is_expired(Duration::from_secs(3600)));
        assert_eq!(
            acquire_or_steal(&dir, "b", Duration::from_secs(1)).unwrap(),
            Acquire::Stolen { from: String::new() }
        );
        assert_eq!(read(&dir).unwrap().owner, "b");
    }

    #[test]
    fn empty_lease_from_a_crashed_create_is_claimable() {
        let dir = temp_dir("empty");
        // A crash between create_new and the first write leaves this.
        fs::write(lease_path(&dir), "").unwrap();
        assert_eq!(
            acquire_or_steal(&dir, "b", Duration::from_secs(1)).unwrap(),
            Acquire::Stolen { from: String::new() }
        );
    }

    #[test]
    fn racing_stealers_elect_exactly_one_winner() {
        let dir = temp_dir("race");
        assert!(try_acquire(&dir, "dead").unwrap());
        // Force expiry without sleeping: rewrite with heartbeat 0.
        fs::write(lease_path(&dir), format!("{FORMAT}\nowner dead\nheartbeat_ms 0\n")).unwrap();
        let ttl = Duration::from_millis(1);
        let winners: Vec<String> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|i| {
                    let dir = dir.clone();
                    s.spawn(move || {
                        let me = format!("daemon-{i}");
                        match acquire_or_steal(&dir, &me, ttl).unwrap() {
                            Acquire::Stolen { .. } | Acquire::Acquired => Some(me),
                            Acquire::Held => None,
                        }
                    })
                })
                .collect();
            handles.into_iter().filter_map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(winners.len(), 1, "exactly one stealer may win, got {winners:?}");
        assert_eq!(read(&dir).unwrap().owner, winners[0]);
    }
}
