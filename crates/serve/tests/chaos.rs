//! Deterministic fault injection against a live daemon.
//!
//! Every test arms a seeded `snnmap-chaos` schedule (or none, for the
//! pure socket-abuse tests), drives the daemon through the fault, and
//! checks the robustness contract: every affected request gets a typed
//! HTTP error or succeeds after bounded retries, every affected job
//! completes / fails-typed / stays resumable, results stay
//! byte-identical to an unfaulted run, and the daemon itself never
//! wedges or dies.
//!
//! The chaos registry is process-global, so the tests serialize on one
//! mutex and disarm on drop (panic included).

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use snnmap_core::Mapper;
use snnmap_io::{parse_job, render_pcn, render_placement};
use snnmap_model::generators::random_pcn;
use snnmap_serve::{ServeConfig, Server};

static CHAOS_LOCK: Mutex<()> = Mutex::new(());

/// Holds the global-chaos mutex for one test and disarms the schedule
/// on drop, even when the test panics.
struct ChaosGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl Drop for ChaosGuard {
    fn drop(&mut self) {
        snnmap_chaos::uninstall();
    }
}

/// Serializes the test and arms `spec` (empty = no faults, lock only).
fn chaos(seed: u64, spec: &str) -> ChaosGuard {
    let guard = CHAOS_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    snnmap_chaos::uninstall();
    if !spec.is_empty() {
        snnmap_chaos::install(seed, spec).expect("test spec parses");
    }
    ChaosGuard(guard)
}

/// A daemon on a fresh temp spool, torn down (and drained) on drop.
struct Daemon {
    addr: SocketAddr,
    spool: PathBuf,
    shutdown: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<snnmap_serve::DrainReport>>,
}

impl Daemon {
    fn start(tag: &str, configure: impl FnOnce(&mut ServeConfig)) -> Self {
        let spool = std::env::temp_dir().join(format!("snnmap_serve_chaos_{tag}"));
        let _ = std::fs::remove_dir_all(&spool);
        let mut config = ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            spool_dir: spool.clone(),
            queue_capacity: 8,
            ..ServeConfig::default()
        };
        configure(&mut config);
        let server = Server::bind(&config).expect("bind");
        let addr = server.local_addr().expect("local addr");
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let thread = std::thread::spawn(move || server.run(&flag));
        Self { addr, spool, shutdown, thread: Some(thread) }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        // Faults must never outlive the test into the drain.
        snnmap_chaos::uninstall();
        self.shutdown.store(true, SeqCst);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// Blocking one-shot HTTP exchange; returns the status and the body.
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let text = request_raw(addr, method, path, body);
    let status = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad response: {text}"));
    let body = text.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

/// Same, but returns the entire response text (headers included).
fn request_raw(addr: SocketAddr, method: &str, path: &str, body: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send");
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("read");
    text
}

fn json_str(body: &str, key: &str) -> Option<String> {
    let value: serde_json::Value = serde_json::from_str(body).ok()?;
    Some(value.as_object()?.get(key)?.as_str()?.to_string())
}

fn job_body(clusters: u32, seed: u64, checkpoint_every: u64) -> String {
    let pcn = random_pcn(clusters, 3.0, seed).unwrap();
    serde_json::to_string(&serde_json::json!({
        "format": "snnmap-job-v1",
        "pcn": render_pcn(&pcn),
        "checkpoint_every": checkpoint_every,
    }))
    .unwrap()
}

fn wait_state(addr: SocketAddr, id: u64, want: &str) -> String {
    for _ in 0..1200 {
        let (status, body) = request(addr, "GET", &format!("/jobs/{id}"), "");
        assert_eq!(status, 200, "{body}");
        let state = json_str(&body, "state");
        if state.as_deref() == Some(want) {
            return body;
        }
        if matches!(state.as_deref(), Some("failed" | "cancelled")) && want == "done" {
            panic!("job {id} ended badly: {body}");
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    panic!("job {id} never reached `{want}`");
}

/// Extracts one `snnmap_<name> value` sample from a `/metrics` page.
fn metric(addr: SocketAddr, name: &str) -> f64 {
    let (status, page) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    page.lines()
        .find_map(|l| l.strip_prefix(&format!("snnmap_{name} ")))
        .unwrap_or_else(|| panic!("no `{name}` in metrics page:\n{page}"))
        .trim()
        .parse()
        .expect("metric is a number")
}

// ---------------------------------------------------------------------
// Storage faults
// ---------------------------------------------------------------------

#[test]
fn enospc_on_the_spool_is_a_typed_500_and_the_daemon_survives() {
    let _guard = chaos(11, "spool.mkdir=enospc");
    let daemon = Daemon::start("enospc", |_| {});
    let body = job_body(20, 1, 0);

    let (status, text) = request(daemon.addr, "POST", "/jobs", &body);
    assert_eq!(status, 500, "{text}");
    assert!(text.contains("spooling job"), "error names the failing step: {text}");

    // The fault cost retries, all counted.
    assert!(metric(daemon.addr, "serve_spool_retries_total") >= 3.0);
    assert!(metric(daemon.addr, "serve_chaos_injected_total") >= 4.0);

    // Disk "recovers": the daemon takes the very next job.
    snnmap_chaos::uninstall();
    let (status, text) = request(daemon.addr, "POST", "/jobs", &body);
    assert_eq!(status, 201, "{text}");
    let (status, _) = request(daemon.addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
}

#[test]
fn a_transient_torn_write_is_absorbed_by_retry() {
    let _guard = chaos(7, "spool.write=torn@#1");
    let daemon = Daemon::start("torn_write", |_| {});
    let body = job_body(24, 2, 0);

    // The torn first write of request.json is retried; the client only
    // ever sees the success.
    let (status, text) = request(daemon.addr, "POST", "/jobs", &body);
    assert_eq!(status, 201, "{text}");
    wait_state(daemon.addr, 1, "done");

    assert!(metric(daemon.addr, "serve_spool_retries_total") >= 1.0);
    assert!(metric(daemon.addr, "serve_chaos_injected_total") >= 1.0);
    // The spool holds no torn debris.
    let job_dir = daemon.spool.join("job-1");
    for entry in std::fs::read_dir(&job_dir).unwrap() {
        let name = entry.unwrap().file_name();
        assert!(
            !name.to_string_lossy().ends_with(".tmp"),
            "leftover temp file {name:?} in {job_dir:?}"
        );
    }
}

#[test]
fn checkpoint_faults_retry_without_changing_the_result() {
    // Offline reference: the same job, no faults anywhere.
    let body = job_body(40, 3, 1);
    let spec = parse_job(&body).unwrap();
    let reference = render_placement(
        &Mapper::builder().build().map(&spec.pcn, spec.mesh).unwrap().placement,
    );

    let _guard = chaos(3, "checkpoint.write=torn@#1,checkpoint.rename=fail@#2");
    let daemon = Daemon::start("cp_retry", |_| {});
    let (status, text) = request(daemon.addr, "POST", "/jobs", &body);
    assert_eq!(status, 201, "{text}");
    wait_state(daemon.addr, 1, "done");

    let (status, placement) = request(daemon.addr, "GET", "/jobs/1/placement", "");
    assert_eq!(status, 200);
    assert_eq!(placement, reference, "faulted run must stay byte-identical");
    assert!(metric(daemon.addr, "serve_chaos_injected_total") >= 2.0);
}

#[test]
fn exhausted_checkpoint_retries_fail_the_job_with_a_typed_error() {
    let _guard = chaos(5, "checkpoint.rename=fail");
    let daemon = Daemon::start("cp_exhaust", |_| {});

    let (status, text) = request(daemon.addr, "POST", "/jobs", &job_body(40, 4, 1));
    assert_eq!(status, 201, "{text}");
    let body = wait_state(daemon.addr, 1, "failed");
    let error = json_str(&body, "error").expect("failed job carries its error");
    assert!(
        error.contains("checkpoint write failed"),
        "the engine's typed CheckpointFailed, not a panic: {error}"
    );

    // One failed job, not a dead daemon: disarm and run another.
    snnmap_chaos::uninstall();
    let (status, _) = request(daemon.addr, "POST", "/jobs", &job_body(20, 5, 0));
    assert_eq!(status, 201);
    wait_state(daemon.addr, 2, "done");
}

// ---------------------------------------------------------------------
// Socket abuse
// ---------------------------------------------------------------------

#[test]
fn slow_loris_and_stalled_bodies_get_408() {
    let _guard = chaos(0, "");
    let daemon = Daemon::start("loris", |c| c.io_timeout = Duration::from_millis(200));

    // Slow loris: a request line, then silence.
    let mut stream = TcpStream::connect(daemon.addr).unwrap();
    stream.write_all(b"POST /jobs HTTP/1.1\r\n").unwrap();
    let mut text = String::new();
    stream.read_to_string(&mut text).unwrap();
    assert!(text.starts_with("HTTP/1.1 408"), "slow loris: {text}");

    // Stalled body: full headers, a fraction of the promised bytes.
    let mut stream = TcpStream::connect(daemon.addr).unwrap();
    stream
        .write_all(b"POST /jobs HTTP/1.1\r\nContent-Length: 100\r\n\r\nten bytes.")
        .unwrap();
    let mut text = String::new();
    stream.read_to_string(&mut text).unwrap();
    assert!(text.starts_with("HTTP/1.1 408"), "stalled body: {text}");

    assert!(metric(daemon.addr, "serve_io_timeouts_total") >= 2.0);
    let (status, _) = request(daemon.addr, "GET", "/healthz", "");
    assert_eq!(status, 200, "the worker is free again");
}

#[test]
fn a_trickling_client_exhausts_the_total_deadline_not_per_read_timeouts() {
    let _guard = chaos(0, "");
    let daemon = Daemon::start("trickle", |c| c.io_timeout = Duration::from_millis(300));

    // One byte every 40ms: each read makes progress well inside any
    // per-read timeout, so only a *total* deadline can stop it. A
    // second thread drains the response as it arrives — a late trickle
    // write can draw an RST that would discard an unread 408.
    let mut stream = TcpStream::connect(daemon.addr).unwrap();
    stream.write_all(b"POST /jobs HTTP/1.1\r\nContent-Length: 1000\r\n\r\n").unwrap();
    let start = std::time::Instant::now();
    let mut reader = stream.try_clone().unwrap();
    let done = Arc::new(AtomicBool::new(false));
    let done_flag = Arc::clone(&done);
    let response = std::thread::spawn(move || {
        let mut buf = [0u8; 4096];
        let mut bytes = Vec::new();
        loop {
            match reader.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => bytes.extend_from_slice(&buf[..n]),
            }
        }
        done_flag.store(true, SeqCst);
        String::from_utf8_lossy(&bytes).into_owned()
    });
    for _ in 0..50 {
        if done.load(SeqCst) || stream.write_all(b"x").is_err() {
            break; // The server gave up on us; exactly the point.
        }
        std::thread::sleep(Duration::from_millis(40));
    }
    let text = response.join().unwrap();
    assert!(text.starts_with("HTTP/1.1 408"), "trickler: {text}");
    assert!(
        start.elapsed() < Duration::from_millis(1500),
        "the 300ms total deadline cut the trickle short, not 50 per-read grants"
    );
}

#[test]
fn a_mid_body_disconnect_is_a_clean_400_not_a_wedged_worker() {
    let _guard = chaos(0, "");
    let daemon = Daemon::start("disconnect", |_| {});

    let mut stream = TcpStream::connect(daemon.addr).unwrap();
    stream
        .write_all(b"POST /jobs HTTP/1.1\r\nContent-Length: 100\r\n\r\nten bytes.")
        .unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let mut text = String::new();
    stream.read_to_string(&mut text).unwrap();
    assert!(text.starts_with("HTTP/1.1 400"), "{text}");
    assert!(text.contains("body truncated at 10 of 100 bytes"), "{text}");

    let (status, _) = request(daemon.addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
}

#[test]
fn injected_mid_body_disconnects_never_corrupt_the_spool() {
    // Every 3rd body read drops the connection, as if the client died.
    let _guard = chaos(17, "serve.read_body=disconnect@1in3");
    let daemon = Daemon::start("inj_disconnect", |_| {});
    let body = job_body(20, 6, 0);

    let mut accepted = Vec::new();
    for _ in 0..12 {
        let (status, text) = request(daemon.addr, "POST", "/jobs", &body);
        match status {
            201 => accepted.push(json_str(&text, "state").is_some()),
            400 => assert!(text.contains("disconnect"), "{text}"),
            other => panic!("unexpected status {other}: {text}"),
        }
    }
    snnmap_chaos::uninstall();

    // Every acknowledged job is intact on disk and finishes; rejected
    // bodies left nothing behind that a restart could trip over.
    let (_, page) = request(daemon.addr, "GET", "/metrics", "");
    assert!(page.contains("serve_chaos_injected_total"), "{page}");
    for id in 1..=accepted.len() as u64 {
        wait_state(daemon.addr, id, "done");
    }
    assert!(!daemon.spool.join("quarantine").exists(), "no corrupt dirs were created");
}

// ---------------------------------------------------------------------
// Backpressure headers
// ---------------------------------------------------------------------

#[test]
fn queue_pressure_gets_429_with_a_retry_after_hint() {
    let _guard = chaos(0, "");
    let daemon = Daemon::start("backpressure", |c| {
        c.workers = 1;
        c.queue_capacity = 1;
    });

    // Jam the lone worker with a big job, then fill the queue of one.
    let (status, _) = request(daemon.addr, "POST", "/jobs", &job_body(800, 7, 0));
    assert_eq!(status, 201);
    wait_state(daemon.addr, 1, "running");
    let (status, _) = request(daemon.addr, "POST", "/jobs", &job_body(20, 8, 0));
    assert_eq!(status, 201);

    let text = request_raw(daemon.addr, "POST", "/jobs", &job_body(20, 9, 0));
    assert!(text.starts_with("HTTP/1.1 429"), "{text}");
    assert!(
        text.lines().any(|l| l.trim().eq_ignore_ascii_case("retry-after: 1")),
        "429 must carry the Retry-After hint:\n{text}"
    );

    // Unjam so teardown is quick (409 = it beat us to the finish line).
    let (status, _) = request(daemon.addr, "DELETE", "/jobs/1", "");
    assert!(status == 202 || status == 409, "unexpected DELETE status {status}");
}

// ---------------------------------------------------------------------
// Quarantine at startup
// ---------------------------------------------------------------------

#[test]
fn corrupt_job_dirs_are_quarantined_at_bind_with_reasons() {
    let _guard = chaos(0, "");
    // Not the daemon's default temp path: `Daemon::start` wipes that.
    let spool = std::env::temp_dir().join("snnmap_serve_chaos_prebuilt_spool");
    let _ = std::fs::remove_dir_all(&spool);

    let body = job_body(20, 10, 0);
    let write_job = |id: u64, request: &str, state: &str| {
        let dir = spool.join(format!("job-{id}"));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("request.json"), request).unwrap();
        std::fs::write(dir.join("state"), format!("{state}\n")).unwrap();
    };
    // job 1: healthy history. jobs 2-5: four distinct corruptions.
    write_job(1, &body, "done");
    std::fs::write(spool.join("job-1").join("placement.json"), "{}").unwrap();
    write_job(2, &body, "zombie");
    write_job(3, "not json at all", "queued");
    write_job(4, &body, "done"); // placement.json missing
    write_job(5, &body, "running");
    std::fs::write(spool.join("job-5").join("checkpoint.json"), "garbage").unwrap();
    // job 9: a bare stub — debris once it is older than the lease TTL.
    std::fs::create_dir_all(spool.join("job-9")).unwrap();
    std::thread::sleep(Duration::from_millis(120));

    let daemon = Daemon::start("quarantine", |c| {
        c.spool_dir = spool.clone();
        c.lease_ttl = Duration::from_millis(50);
    });

    assert_eq!(metric(daemon.addr, "serve_quarantined_jobs_total"), 5.0);
    for (id, reason_part) in [
        (2, "unknown state label"),
        (3, "unparseable spooled request"),
        (4, "placement.json is missing"),
        (5, "corrupt checkpoint"),
        (9, "unreadable"),
    ] {
        let dir = spool.join("quarantine").join(format!("job-{id}"));
        assert!(dir.is_dir(), "job {id} must be quarantined");
        let reason = std::fs::read_to_string(dir.join("REASON")).unwrap();
        assert!(reason.contains(reason_part), "job {id}: {reason}");
    }

    // The healthy job still serves; the corrupt ones are gone from the API.
    let (status, text) = request(daemon.addr, "GET", "/jobs/1", "");
    assert_eq!(status, 200);
    assert_eq!(json_str(&text, "state").as_deref(), Some("done"));
    for id in [2u64, 3, 4, 5, 9] {
        let (status, _) = request(daemon.addr, "GET", &format!("/jobs/{id}"), "");
        assert_eq!(status, 404, "quarantined job {id} is not queryable");
    }

    // Fresh ids skip past everything in quarantine.
    let (status, text) = request(daemon.addr, "POST", "/jobs", &body);
    assert_eq!(status, 201);
    assert!(text.contains("\"id\":10") || text.contains("\"id\": 10"), "{text}");
}
