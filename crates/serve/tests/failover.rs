//! Lease-based multi-daemon failover on a shared spool.
//!
//! The contract under test: N daemons may point at one spool directory.
//! Ids never collide (`create_dir` is the arbiter), a live peer's jobs
//! are left alone (fresh `LEASE` heartbeats), and a daemon that dies
//! mid-job has its work finished by a survivor — **byte-identically**
//! to an uninterrupted run, because the survivor resumes from the same
//! provenance-checked checkpoint.
//!
//! The true `kill -9` two-process version runs in CI (`chaos` job);
//! here the dead peer is reproduced by its exact on-disk remains: a
//! spooled job, a mid-run checkpoint, and a `LEASE` whose heartbeat
//! stopped long ago.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
use std::sync::Arc;
use std::time::Duration;

use snnmap_core::{FdRunOpts, Mapper, RunBudget};
use snnmap_io::{parse_job, render_pcn, render_placement, write_checkpoint};
use snnmap_model::generators::random_pcn;
use snnmap_serve::{ServeConfig, Server};
use snnmap_trace::sha256_hex;

fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send");
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("read");
    let status = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad response: {text}"));
    let body = text.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

fn json_str(body: &str, key: &str) -> Option<String> {
    let value: serde_json::Value = serde_json::from_str(body).ok()?;
    Some(value.as_object()?.get(key)?.as_str()?.to_string())
}

fn json_u64(body: &str, key: &str) -> Option<u64> {
    let value: serde_json::Value = serde_json::from_str(body).ok()?;
    match value.as_object()?.get(key)? {
        serde_json::Value::Number(n) => Some(n.as_f64() as u64),
        _ => None,
    }
}

fn wait_done(addr: SocketAddr, id: u64) -> String {
    for _ in 0..1200 {
        let (status, body) = request(addr, "GET", &format!("/jobs/{id}"), "");
        if status == 200 {
            match json_str(&body, "state").as_deref() {
                Some("done") => return body,
                Some("failed") | Some("cancelled") => panic!("job {id} ended badly: {body}"),
                _ => {}
            }
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    panic!("job {id} never finished");
}

fn metric(addr: SocketAddr, name: &str) -> f64 {
    let (status, page) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    page.lines()
        .find_map(|l| l.strip_prefix(&format!("snnmap_{name} ")))
        .unwrap_or_else(|| panic!("no `{name}` in metrics page:\n{page}"))
        .trim()
        .parse()
        .expect("metric is a number")
}

struct Daemon {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<snnmap_serve::DrainReport>>,
}

impl Daemon {
    fn start(spool: &Path, daemon_id: &str, lease_ttl: Duration) -> Self {
        let server = Server::bind(&ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            spool_dir: spool.to_path_buf(),
            queue_capacity: 16,
            lease_ttl,
            daemon_id: Some(daemon_id.to_string()),
            ..ServeConfig::default()
        })
        .expect("bind");
        let addr = server.local_addr().expect("local addr");
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let thread = std::thread::spawn(move || server.run(&flag));
        Self { addr, shutdown, thread: Some(thread) }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.shutdown.store(true, SeqCst);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

fn temp_spool(tag: &str) -> PathBuf {
    let spool = std::env::temp_dir().join(format!("snnmap_serve_failover_{tag}"));
    let _ = std::fs::remove_dir_all(&spool);
    std::fs::create_dir_all(&spool).unwrap();
    spool
}

fn job_body(clusters: u32, seed: u64) -> String {
    let pcn = random_pcn(clusters, 3.0, seed).unwrap();
    serde_json::to_string(&serde_json::json!({
        "format": "snnmap-job-v1",
        "pcn": render_pcn(&pcn),
        "checkpoint_every": 1,
    }))
    .unwrap()
}

fn spool_job(spool: &Path, id: u64, body: &str, state: &str) {
    let dir = spool.join(format!("job-{id}"));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("request.json"), body).unwrap();
    std::fs::write(dir.join("state"), format!("{state}\n")).unwrap();
}

/// Writes a `LEASE` whose owner stopped heartbeating `age` ago.
fn write_lease(spool: &Path, id: u64, owner: &str, age: Duration) {
    let now_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .as_millis() as u64;
    let heartbeat = now_ms.saturating_sub(age.as_millis() as u64);
    std::fs::write(
        spool.join(format!("job-{id}")).join("LEASE"),
        format!("snnmap-lease-v1\nowner {owner}\nheartbeat_ms {heartbeat}\n"),
    )
    .unwrap();
}

/// A dead peer's exact remains: spooled job, mid-run checkpoint, stale
/// lease. Returns the uninterrupted-run reference placement.
fn plant_dead_peers_job(spool: &Path, id: u64, body: &str) -> String {
    let spec = parse_job(body).unwrap();
    let mapper = Mapper::builder().build();
    let reference = render_placement(&mapper.map(&spec.pcn, spec.mesh).unwrap().placement);

    spool_job(spool, id, body, "running");
    let meta = spec.provenance();
    let cp_path = spool.join(format!("job-{id}")).join("checkpoint.json");
    let mut writer = |cp: &snnmap_core::FdCheckpoint| -> Result<(), String> {
        write_checkpoint(&cp_path, cp, &meta).map_err(|e| e.to_string())
    };
    let mut opts = FdRunOpts {
        budget: RunBudget { max_sweeps: Some(2), ..RunBudget::default() },
        ..FdRunOpts::default()
    };
    opts.on_checkpoint = Some(&mut writer);
    mapper.map_budgeted(&spec.pcn, spec.mesh, &mut opts).unwrap();
    assert!(cp_path.is_file(), "the budgeted stop must flush a checkpoint");
    write_lease(spool, id, "dead-daemon", Duration::from_secs(10));
    reference
}

#[test]
fn a_survivor_finishes_a_dead_peers_job_byte_identically() {
    let spool = temp_spool("takeover");
    let body = job_body(90, 31);
    let reference = plant_dead_peers_job(&spool, 1, &body);

    let daemon = Daemon::start(&spool, "survivor", Duration::from_millis(300));
    let status_body = wait_done(daemon.addr, 1);

    let (code, placement) = request(daemon.addr, "GET", "/jobs/1/placement", "");
    assert_eq!(code, 200);
    assert_eq!(
        placement, reference,
        "the takeover must resume the checkpoint, byte-identical to no crash"
    );
    assert_eq!(
        json_str(&status_body, "placement_sha256").as_deref(),
        Some(sha256_hex(reference.as_bytes()).as_str())
    );
    assert!(metric(daemon.addr, "serve_lease_takeovers_total") >= 1.0);

    // The survivor's own lease is released once the job is done.
    assert!(!spool.join("job-1").join("LEASE").exists());
}

#[test]
fn a_live_peers_fresh_lease_blocks_takeover_until_it_expires() {
    let spool = temp_spool("respect");
    let body = job_body(40, 32);
    spool_job(&spool, 1, &body, "running");
    write_lease(&spool, 1, "busy-peer", Duration::ZERO);

    // TTL far above the test duration: the fresh lease must hold.
    let daemon = Daemon::start(&spool, "survivor", Duration::from_secs(3600));
    std::thread::sleep(Duration::from_millis(400));
    let (status, text) = request(daemon.addr, "GET", "/jobs/1", "");
    assert_eq!(status, 200);
    assert_eq!(
        json_str(&text, "state").as_deref(),
        Some("queued"),
        "a job under a live peer's lease must wait, not run twice: {text}"
    );
    assert_eq!(metric(daemon.addr, "serve_lease_takeovers_total"), 0.0);
    assert_eq!(
        std::fs::read_to_string(spool.join("job-1").join("LEASE"))
            .unwrap()
            .lines()
            .nth(1),
        Some("owner busy-peer"),
        "the peer's lease is untouched"
    );
}

#[test]
fn the_janitor_adopts_a_crashed_peers_freshly_spooled_job() {
    let spool = temp_spool("adopt");
    let daemon = Daemon::start(&spool, "survivor", Duration::from_millis(300));

    // A peer crashed right after spooling this job — before ever taking
    // its lease. The janitor's scan finds and runs it.
    let body = job_body(40, 33);
    let spec = parse_job(&body).unwrap();
    let mapper = Mapper::builder().build();
    let reference = render_placement(&mapper.map(&spec.pcn, spec.mesh).unwrap().placement);
    spool_job(&spool, 50, &body, "queued");

    let status_body = wait_done(daemon.addr, 50);
    let (code, placement) = request(daemon.addr, "GET", "/jobs/50/placement", "");
    assert_eq!(code, 200);
    assert_eq!(placement, reference);
    assert_eq!(
        json_str(&status_body, "placement_sha256").as_deref(),
        Some(sha256_hex(reference.as_bytes()).as_str())
    );

    // Adopted ids steer future allocations: the next accepted job must
    // not collide with the adopted one.
    let (code, text) = request(daemon.addr, "POST", "/jobs", &body);
    assert_eq!(code, 201, "{text}");
    assert!(json_u64(&text, "id").unwrap() > 50, "{text}");
}

#[test]
fn two_live_daemons_share_one_spool_without_collisions_or_takeovers() {
    let spool = temp_spool("pair");
    let ttl = Duration::from_secs(2);
    let alpha = Daemon::start(&spool, "alpha", ttl);
    let beta = Daemon::start(&spool, "beta", ttl);

    // Interleaved submissions to both daemons: every id unique, every
    // job done, placements identical regardless of which daemon served.
    let mut ids = Vec::new();
    for round in 0..3u64 {
        for (daemon, salt) in [(&alpha, 0u64), (&beta, 100)] {
            let (status, text) =
                request(daemon.addr, "POST", "/jobs", &job_body(30, 34 + round + salt));
            assert_eq!(status, 201, "{text}");
            ids.push(json_u64(&text, "id").expect("id in response"));
        }
    }
    let mut unique = ids.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(unique.len(), ids.len(), "id collision across daemons: {ids:?}");

    for (k, id) in ids.iter().enumerate() {
        let home = if k % 2 == 0 { &alpha } else { &beta };
        wait_done(home.addr, *id);
    }

    // Both daemons were alive throughout — nobody's lease expired, so
    // nobody "took over" anything.
    assert_eq!(metric(alpha.addr, "serve_lease_takeovers_total"), 0.0);
    assert_eq!(metric(beta.addr, "serve_lease_takeovers_total"), 0.0);

    // Cross-visibility: each daemon's janitor adopts the other's
    // finished jobs as queryable history (give it a couple of passes).
    let first_beta_job = ids[1];
    for attempt in 0..200 {
        let (status, text) = request(alpha.addr, "GET", &format!("/jobs/{first_beta_job}"), "");
        if status == 200 && json_str(&text, "state").as_deref() == Some("done") {
            let (_, from_alpha) =
                request(alpha.addr, "GET", &format!("/jobs/{first_beta_job}/placement"), "");
            let (_, from_beta) =
                request(beta.addr, "GET", &format!("/jobs/{first_beta_job}/placement"), "");
            assert_eq!(from_alpha, from_beta, "one job, one result, both daemons");
            return;
        }
        assert!(attempt < 199, "alpha never adopted beta's finished job {first_beta_job}");
        std::thread::sleep(Duration::from_millis(25));
    }
}
