//! Crash recovery: a daemon restarted over an existing spool finishes
//! every non-terminal job, and an interrupted run resumes from its
//! checkpoint **byte-identically** to one that was never interrupted.
//!
//! The crash is simulated at the spool level — the exact on-disk state a
//! `kill -9` leaves behind (a `queued` job, and a `running` job whose
//! checkpoint the FD engine had flushed) is constructed directly, then a
//! fresh daemon is pointed at it. The end-to-end `kill -9` of a live
//! daemon process runs in CI (`serve` job), where a process can actually
//! be killed; the recovery logic exercised is the same.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
use std::sync::Arc;
use std::time::Duration;

use snnmap_core::{FdRunOpts, Mapper, RunBudget};
use snnmap_io::{parse_job, render_pcn, render_placement, write_checkpoint};
use snnmap_model::generators::random_pcn;
use snnmap_serve::{ServeConfig, Server};
use snnmap_trace::sha256_hex;

fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send");
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("read");
    let status = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad response: {text}"));
    let body = text.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

fn json_str(body: &str, key: &str) -> Option<String> {
    let value: serde_json::Value = serde_json::from_str(body).ok()?;
    Some(value.as_object()?.get(key)?.as_str()?.to_string())
}

fn wait_done(addr: SocketAddr, id: u64) -> String {
    for _ in 0..1200 {
        let (status, body) = request(addr, "GET", &format!("/jobs/{id}"), "");
        assert_eq!(status, 200, "{body}");
        match json_str(&body, "state").as_deref() {
            Some("done") => return body,
            Some("failed") | Some("cancelled") => panic!("job {id} ended badly: {body}"),
            _ => std::thread::sleep(Duration::from_millis(25)),
        }
    }
    panic!("job {id} never finished");
}

/// Writes one spooled job directory the way the daemon would have left
/// it: verbatim request body plus a state record.
fn spool_job(spool: &Path, id: u64, body: &str, state: &str) {
    let dir = spool.join(format!("job-{id}"));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("request.json"), body).unwrap();
    std::fs::write(dir.join("state"), format!("{state}\n")).unwrap();
}

#[test]
fn restart_finishes_spooled_jobs_byte_identically() {
    let spool = std::env::temp_dir().join("snnmap_serve_recovery");
    let _ = std::fs::remove_dir_all(&spool);
    std::fs::create_dir_all(&spool).unwrap();

    let pcn = random_pcn(90, 4.0, 21).unwrap();
    let body = serde_json::to_string(&serde_json::json!({
        "format": "snnmap-job-v1",
        "pcn": render_pcn(&pcn),
        "checkpoint_every": 1,
    }))
    .unwrap();
    let spec = parse_job(&body).unwrap();

    // The uninterrupted reference: the same spec, run to convergence.
    let mapper = Mapper::builder().build();
    let reference =
        render_placement(&mapper.map(&pcn, spec.mesh).unwrap().placement);

    // Job 1 — killed while *queued*: request spooled, no checkpoint.
    spool_job(&spool, 1, &body, "queued");

    // Job 2 — killed while *running*: the engine had flushed a
    // mid-run checkpoint (reproduced here by a budgeted offline stop
    // after 2 sweeps, stamped with the job's own provenance digests).
    spool_job(&spool, 2, &body, "running");
    let meta = spec.provenance();
    let cp_path = spool.join("job-2").join("checkpoint.json");
    let mut writer = |cp: &snnmap_core::FdCheckpoint| -> Result<(), String> {
        write_checkpoint(&cp_path, cp, &meta).map_err(|e| e.to_string())
    };
    let mut opts = FdRunOpts {
        budget: RunBudget { max_sweeps: Some(2), ..RunBudget::default() },
        ..FdRunOpts::default()
    };
    opts.on_checkpoint = Some(&mut writer);
    let partial = mapper.map_budgeted(&pcn, spec.mesh, &mut opts).unwrap();
    assert!(cp_path.is_file(), "the budgeted stop must flush a checkpoint");
    assert_ne!(
        render_placement(&partial.placement),
        reference,
        "two sweeps must not already be converged for this test to bite"
    );

    // Job 3 — already done before the crash: must come back as history,
    // not be re-run.
    spool_job(&spool, 3, &body, "done");
    std::fs::write(spool.join("job-3").join("placement.json"), &reference).unwrap();

    // "Restart" the daemon over the crashed spool.
    let server = Server::bind(&ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        spool_dir: spool.clone(),
        queue_capacity: 8,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.local_addr().unwrap();
    let shutdown = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&shutdown);
    let daemon = std::thread::spawn(move || server.run(&flag));

    for id in [1u64, 2] {
        let status_body = wait_done(addr, id);
        let (code, placement) = request(addr, "GET", &format!("/jobs/{id}/placement"), "");
        assert_eq!(code, 200);
        assert_eq!(
            placement, reference,
            "recovered job {id} must match the uninterrupted run byte-for-byte"
        );
        assert_eq!(
            json_str(&status_body, "placement_sha256").as_deref(),
            Some(sha256_hex(reference.as_bytes()).as_str())
        );
    }
    // The resumed job really did resume: its consumed checkpoint is gone.
    assert!(!cp_path.exists(), "a finished job's checkpoint is cleaned up");

    // The pre-crash done job is served from the spool as-is.
    let (code, body) = request(addr, "GET", "/jobs/3", "");
    assert_eq!(code, 200);
    assert_eq!(json_str(&body, "state").as_deref(), Some("done"));
    let (code, placement) = request(addr, "GET", "/jobs/3/placement", "");
    assert_eq!(code, 200);
    assert_eq!(placement, reference);

    // New submissions never collide with recovered ids.
    let (code, body) = request(addr, "POST", "/jobs", &body_for_new_job());
    assert_eq!(code, 201, "{body}");
    assert!(body.contains("\"id\":4") || body.contains("\"id\": 4"), "{body}");

    shutdown.store(true, SeqCst);
    daemon.join().unwrap();
}

fn body_for_new_job() -> String {
    let pcn = random_pcn(30, 3.0, 5).unwrap();
    serde_json::to_string(&serde_json::json!({
        "format": "snnmap-job-v1",
        "pcn": render_pcn(&pcn),
        "max_sweeps": 4,
    }))
    .unwrap()
}
