//! Satellite property: concurrency must be invisible in the results.
//!
//! K jobs submitted concurrently to the daemon yield placements
//! **byte-identical** (compared via sha256, like the daemon reports) to
//! serial offline [`Mapper::map`] runs of the same specs — across
//! worker-pool sizes 1, 2, and 4. Workers may interleave arbitrarily;
//! the placement of one job must never depend on what else the pool is
//! chewing on, because the FD engine shares no mutable state between
//! jobs and is itself thread-count invariant.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use snnmap_core::Mapper;
use snnmap_hw::Mesh;
use snnmap_io::{render_pcn, render_placement};
use snnmap_model::generators::random_pcn;
use snnmap_serve::{ServeConfig, Server};
use snnmap_trace::sha256_hex;

fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send");
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("read");
    let status = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad response: {text}"));
    let body = text.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

fn json_str(body: &str, key: &str) -> Option<String> {
    let value: serde_json::Value = serde_json::from_str(body).ok()?;
    Some(value.as_object()?.get(key)?.as_str()?.to_string())
}

fn json_u64(body: &str, key: &str) -> Option<u64> {
    let value: serde_json::Value = serde_json::from_str(body).ok()?;
    match value.as_object()?.get(key)? {
        serde_json::Value::Number(n) => Some(n.as_f64() as u64),
        _ => None,
    }
}

fn wait_done(addr: SocketAddr, id: u64) -> String {
    for _ in 0..1200 {
        let (status, body) = request(addr, "GET", &format!("/jobs/{id}"), "");
        assert_eq!(status, 200, "{body}");
        match json_str(&body, "state").as_deref() {
            Some("done") => return body,
            Some("failed") | Some("cancelled") => panic!("job {id} ended badly: {body}"),
            _ => std::thread::sleep(Duration::from_millis(25)),
        }
    }
    panic!("job {id} never finished");
}

/// One concurrent round: K jobs against a pool of `workers`, digests
/// compared to serial offline runs.
fn concurrent_matches_serial(workers: usize, base_seed: u64, k: usize) {
    let spool_dir =
        std::env::temp_dir().join(format!("snnmap_serve_det_{workers}_{base_seed}_{k}"));
    let _ = std::fs::remove_dir_all(&spool_dir);
    let server = Server::bind(&ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        spool_dir,
        queue_capacity: 64,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.local_addr().unwrap();
    let shutdown = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&shutdown);
    let daemon = std::thread::spawn(move || server.run(&flag));

    // Distinct workloads, submitted from K client threads at once.
    let specs: Vec<(u32, u64)> =
        (0..k).map(|j| (40 + 17 * j as u32, base_seed + j as u64)).collect();
    let submitters: Vec<_> = specs
        .iter()
        .map(|&(clusters, seed)| {
            std::thread::spawn(move || {
                let pcn = random_pcn(clusters, 3.0, seed).unwrap();
                let body = serde_json::to_string(&serde_json::json!({
                    "format": "snnmap-job-v1",
                    "pcn": render_pcn(&pcn),
                }))
                .unwrap();
                let (status, response) = request(addr, "POST", "/jobs", &body);
                assert_eq!(status, 201, "{response}");
                ((clusters, seed), json_u64(&response, "id").expect("id"))
            })
        })
        .collect();
    let ids: Vec<_> = submitters.into_iter().map(|h| h.join().unwrap()).collect();

    for ((clusters, seed), id) in ids {
        let status_body = wait_done(addr, id);
        let (code, placement) = request(addr, "GET", &format!("/jobs/{id}/placement"), "");
        assert_eq!(code, 200);
        // The serial reference: same spec through the offline pipeline.
        let pcn = random_pcn(clusters, 3.0, seed).unwrap();
        let mesh = Mesh::square_for(u64::from(clusters)).unwrap();
        let serial = Mapper::builder().build().map(&pcn, mesh).unwrap();
        let serial_text = render_placement(&serial.placement);
        assert_eq!(
            placement, serial_text,
            "job (clusters={clusters}, seed={seed}) diverged from the serial mapper \
             under {workers} worker(s)"
        );
        assert_eq!(
            json_str(&status_body, "placement_sha256").as_deref(),
            Some(sha256_hex(serial_text.as_bytes()).as_str()),
            "reported digest must match the serial placement"
        );
    }

    shutdown.store(true, SeqCst);
    daemon.join().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The property, over random workloads: worker counts 1, 2, and 4
    /// all reproduce the serial mapper byte-for-byte.
    #[test]
    fn concurrent_jobs_match_serial_mapping(base_seed in 0u64..1000, k in 3usize..=5) {
        for workers in [1usize, 2, 4] {
            concurrent_matches_serial(workers, base_seed, k);
        }
    }
}
