//! Property tests on the comparator curves.

use proptest::prelude::*;
use snnmap_curves::{Serpentine, SpaceFillingCurve, Spiral, ZigZag};
use snnmap_hw::{Coord, Mesh};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// ZigZag (diagonal scan) is always a permutation whose steps never
    /// exceed the anti-diagonal bound, and consecutive points sit on
    /// anti-diagonals that differ by at most one.
    #[test]
    fn zigzag_diagonal_structure(rows in 1u16..32, cols in 1u16..32) {
        let mesh = Mesh::new(rows, cols).unwrap();
        let order = ZigZag.traversal(mesh).unwrap();
        let mut seen = vec![false; mesh.len()];
        for &c in &order {
            prop_assert!(mesh.contains(c));
            let i = mesh.index_of(c);
            prop_assert!(!seen[i]);
            seen[i] = true;
        }
        for w in order.windows(2) {
            let d0 = w[0].x as i32 + w[0].y as i32;
            let d1 = w[1].x as i32 + w[1].y as i32;
            prop_assert!((d1 - d0).abs() <= 1, "{} -> {}", w[0], w[1]);
        }
        // Anti-diagonal index is non-decreasing overall.
        let diags: Vec<i32> = order.iter().map(|c| c.x as i32 + c.y as i32).collect();
        prop_assert!(diags.windows(2).all(|w| w[1] >= w[0]));
    }

    /// Serpentine's closed-form `coord` agrees with its traversal and its
    /// rows alternate direction.
    #[test]
    fn serpentine_closed_form(rows in 1u16..32, cols in 1u16..32) {
        let mesh = Mesh::new(rows, cols).unwrap();
        let order = Serpentine.traversal(mesh).unwrap();
        for (i, &c) in order.iter().enumerate() {
            prop_assert_eq!(Serpentine.coord(mesh, i).unwrap(), c);
        }
        // Row r occupies positions [r*cols, (r+1)*cols).
        for (i, &c) in order.iter().enumerate() {
            prop_assert_eq!(c.x as usize, i / cols as usize);
        }
    }

    /// The spiral's visiting order has strictly non-decreasing ring index
    /// (distance to the nearest mesh border).
    #[test]
    fn spiral_rings_monotone(rows in 1u16..32, cols in 1u16..32) {
        let mesh = Mesh::new(rows, cols).unwrap();
        let order = Spiral.traversal(mesh).unwrap();
        let ring = |c: Coord| {
            let top = c.x;
            let left = c.y;
            let bottom = rows - 1 - c.x;
            let right = cols - 1 - c.y;
            top.min(left).min(bottom).min(right)
        };
        let rings: Vec<u16> = order.iter().map(|&c| ring(c)).collect();
        prop_assert!(rings.windows(2).all(|w| w[1] >= w[0]), "{rings:?}");
    }
}
