//! The classic Hilbert curve on `2^k × 2^k` square meshes.

use snnmap_hw::{Coord, Mesh};

use crate::{CurveError, SpaceFillingCurve};

/// The Hilbert space-filling curve on a square mesh whose side is a power
/// of two (Figure 4 of the paper shows the 4×4, 8×8 and 16×16 instances).
///
/// For arbitrary rectangles use [`Gilbert`](crate::Gilbert), which reduces
/// to a Hilbert-quality traversal on `2^k` squares while extending the
/// domain (Appendix A).
///
/// # Examples
///
/// ```
/// use snnmap_curves::{Hilbert, SpaceFillingCurve};
/// use snnmap_hw::{Coord, Mesh};
///
/// let mesh = Mesh::new(4, 4)?;
/// // The 4x4 Hilbert curve starts in a corner and ends in the adjacent one.
/// let order = Hilbert.traversal(mesh)?;
/// assert_eq!(order[0], Coord::new(0, 0));
/// assert_eq!(order[15], Coord::new(3, 0));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Hilbert;

impl Hilbert {
    /// Converts a distance `d` along the curve to `(x, y)` on a `side×side`
    /// grid, where `side` is a power of two. This is the standard
    /// iterative bit-twiddling construction.
    ///
    /// `x` is interpreted as the row and `y` as the column; the curve
    /// starts at `(0, 0)`.
    #[inline]
    pub fn d2xy(side: u32, d: u64) -> (u32, u32) {
        debug_assert!(side.is_power_of_two());
        debug_assert!(d < (side as u64) * (side as u64));
        let (mut x, mut y) = (0u32, 0u32);
        let mut t = d;
        let mut s = 1u32;
        while s < side {
            let rx = (t / 2) & 1;
            let ry = (t ^ rx) & 1;
            let (rx, ry) = (rx as u32, ry as u32);
            Self::rot(s, &mut x, &mut y, rx, ry);
            x += s * rx;
            y += s * ry;
            t /= 4;
            s *= 2;
        }
        (x, y)
    }

    /// Converts `(x, y)` on a `side×side` power-of-two grid to a distance
    /// along the curve; inverse of [`Hilbert::d2xy`].
    #[inline]
    pub fn xy2d(side: u32, mut x: u32, mut y: u32) -> u64 {
        debug_assert!(side.is_power_of_two());
        debug_assert!(x < side && y < side);
        let mut d = 0u64;
        let mut s = side / 2;
        while s > 0 {
            let rx = u32::from(x & s > 0);
            let ry = u32::from(y & s > 0);
            d += (s as u64) * (s as u64) * ((3 * rx) ^ ry) as u64;
            Self::rot(s, &mut x, &mut y, rx, ry);
            s /= 2;
        }
        d
    }

    #[inline]
    fn rot(s: u32, x: &mut u32, y: &mut u32, rx: u32, ry: u32) {
        if ry == 0 {
            if rx == 1 {
                *x = s.wrapping_sub(1).wrapping_sub(*x);
                *y = s.wrapping_sub(1).wrapping_sub(*y);
            }
            std::mem::swap(x, y);
        }
    }

    fn check(mesh: Mesh) -> Result<u32, CurveError> {
        let side = mesh.rows() as u32;
        if mesh.rows() != mesh.cols() || !side.is_power_of_two() {
            return Err(CurveError::NotPow2Square { mesh });
        }
        Ok(side)
    }
}

impl SpaceFillingCurve for Hilbert {
    fn name(&self) -> &'static str {
        "Hilbert"
    }

    fn traversal(&self, mesh: Mesh) -> Result<Vec<Coord>, CurveError> {
        let side = Self::check(mesh)?;
        Ok((0..mesh.len() as u64)
            .map(|d| {
                let (x, y) = Self::d2xy(side, d);
                Coord::new(x as u16, y as u16)
            })
            .collect())
    }

    fn coord(&self, mesh: Mesh, index: usize) -> Result<Coord, CurveError> {
        let side = Self::check(mesh)?;
        if index >= mesh.len() {
            return Err(CurveError::IndexOutOfRange { index, len: mesh.len() });
        }
        let (x, y) = Self::d2xy(side, index as u64);
        Ok(Coord::new(x as u16, y as u16))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::assert_valid_continuous_traversal;

    #[test]
    fn rejects_non_pow2_square() {
        for (r, c) in [(3, 3), (4, 8), (6, 6), (8, 4)] {
            let mesh = Mesh::new(r, c).unwrap();
            assert!(matches!(
                Hilbert.traversal(mesh),
                Err(CurveError::NotPow2Square { .. })
            ));
        }
    }

    #[test]
    fn traversal_is_continuous_permutation() {
        for side in [1u16, 2, 4, 8, 16, 32, 64] {
            let mesh = Mesh::new(side, side).unwrap();
            let order = Hilbert.traversal(mesh).unwrap();
            assert_valid_continuous_traversal(mesh, &order);
        }
    }

    #[test]
    fn d2xy_xy2d_roundtrip() {
        for side in [2u32, 4, 8, 32] {
            for d in 0..(side * side) as u64 {
                let (x, y) = Hilbert::d2xy(side, d);
                assert_eq!(Hilbert::xy2d(side, x, y), d, "side={side}, d={d}");
            }
        }
    }

    #[test]
    fn known_4x4_shape() {
        // The canonical 4x4 Hilbert curve (x=row, y=col), starting at the
        // origin and sweeping the left half before the right.
        let order = Hilbert.traversal(Mesh::new(4, 4).unwrap()).unwrap();
        let expect_first8 = [
            (0, 0),
            (1, 0),
            (1, 1),
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 3),
            (1, 2),
        ];
        for (i, &(x, y)) in expect_first8.iter().enumerate() {
            assert_eq!(order[i], Coord::new(x, y), "position {i}");
        }
        // Ends in the corner adjacent to the start column.
        assert_eq!(order[15], Coord::new(3, 0));
    }

    #[test]
    fn locality_beats_row_major_on_8x8() {
        // The defining property (§4.2.2): indices close in 1D stay close in
        // 2D. Compare the average 2D distance of index pairs (i, i+k) for
        // short offsets k (excluding k = 8, where row-major is trivially
        // one row apart) under Hilbert vs plain row-major order.
        let mesh = Mesh::new(8, 8).unwrap();
        let hil = Hilbert.traversal(mesh).unwrap();
        let row: Vec<Coord> = mesh.iter().collect();
        let avg = |ord: &[Coord]| {
            let mut s = 0u32;
            let mut n = 0u32;
            for k in 2..=6usize {
                for i in 0..ord.len() - k {
                    s += ord[i].manhattan(ord[i + k]);
                    n += 1;
                }
            }
            s as f64 / n as f64
        };
        assert!(avg(&hil) < avg(&row), "hilbert {} !< row-major {}", avg(&hil), avg(&row));
    }

    #[test]
    fn trivial_1x1() {
        let mesh = Mesh::new(1, 1).unwrap();
        assert_eq!(Hilbert.traversal(mesh).unwrap(), vec![Coord::new(0, 0)]);
    }
}
