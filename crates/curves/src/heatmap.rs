//! Distance heatmaps of space-filling curves (Figure 6.b of the paper).

use snnmap_hw::Coord;

/// The distance heatmap of a curve traversal: entry `(i, j)` is the
/// Manhattan distance between the 2D positions of the `i`-th and `j`-th
/// points of the 1D sequence (Figure 6.b).
///
/// A curve with good locality has small values near the diagonal and few
/// bright off-diagonal spikes; summing the heatmap under an SNN connection
/// mask yields the curve's mapping cost (Figure 6.d).
///
/// Storage is dense (`n²` `u16`s), intended for the analysis meshes of
/// Figure 6 (8×8 … 64×64), not for million-core systems.
///
/// # Examples
///
/// ```
/// use snnmap_curves::{heatmap::DistanceHeatmap, Hilbert, SpaceFillingCurve};
/// use snnmap_hw::Mesh;
///
/// let order = Hilbert.traversal(Mesh::new(8, 8)?)?;
/// let hm = DistanceHeatmap::from_traversal(&order);
/// assert_eq!(hm.get(0, 0), 0);
/// assert_eq!(hm.get(0, 1), 1); // continuous curve: unit steps
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistanceHeatmap {
    n: usize,
    dist: Vec<u16>,
}

impl DistanceHeatmap {
    /// Builds the heatmap of a traversal order.
    ///
    /// # Panics
    ///
    /// Panics if any pairwise distance exceeds `u16::MAX` (impossible for
    /// meshes with sides ≤ 32767, far beyond analysis sizes).
    pub fn from_traversal(order: &[Coord]) -> Self {
        let n = order.len();
        let mut dist = vec![0u16; n * n];
        for i in 0..n {
            for j in i + 1..n {
                let d = order[i].manhattan(order[j]);
                let d = u16::try_from(d).expect("analysis mesh too large for u16 distances");
                dist[i * n + j] = d;
                dist[j * n + i] = d;
            }
        }
        Self { n, dist }
    }

    /// Sequence length (number of mesh cores).
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the heatmap is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Distance between sequence positions `i` and `j`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> u16 {
        assert!(i < self.n && j < self.n, "heatmap index ({i}, {j}) out of range {}", self.n);
        self.dist[i * self.n + j]
    }

    /// Mean distance over all ordered pairs `(i, j)`, `i ≠ j` — a scalar
    /// summary of overall heatmap brightness.
    pub fn mean_distance(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let total: u64 = self.dist.iter().map(|&d| d as u64).sum();
        total as f64 / (self.n * (self.n - 1)) as f64
    }

    /// Mean distance restricted to pairs within a 1D band `|i − j| ≤ w` —
    /// the "darkness near the diagonal" that Figure 6.b highlights for the
    /// Hilbert curve.
    pub fn banded_mean_distance(&self, w: usize) -> f64 {
        let mut total = 0u64;
        let mut count = 0u64;
        for i in 0..self.n {
            let hi = (i + w).min(self.n - 1);
            for j in i + 1..=hi {
                total += self.get(i, j) as u64;
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            total as f64 / count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Hilbert, Serpentine, SpaceFillingCurve, Spiral, ZigZag};
    use snnmap_hw::Mesh;

    #[test]
    fn symmetric_with_zero_diagonal() {
        let order = Serpentine.traversal(Mesh::new(4, 4).unwrap()).unwrap();
        let hm = DistanceHeatmap::from_traversal(&order);
        for i in 0..16 {
            assert_eq!(hm.get(i, i), 0);
            for j in 0..16 {
                assert_eq!(hm.get(i, j), hm.get(j, i));
            }
        }
    }

    #[test]
    fn unit_superdiagonal_for_continuous_curves() {
        let mesh = Mesh::new(8, 8).unwrap();
        for order in [Hilbert.traversal(mesh).unwrap(), Spiral.traversal(mesh).unwrap()] {
            let hm = DistanceHeatmap::from_traversal(&order);
            for i in 0..63 {
                assert_eq!(hm.get(i, i + 1), 1);
            }
        }
        // The diagonal-scan ZigZag is not unit-continuous: steps are 1 or 2.
        let hm =
            DistanceHeatmap::from_traversal(&ZigZag.traversal(mesh).unwrap());
        for i in 0..63 {
            assert!((1..=2).contains(&hm.get(i, i + 1)));
        }
    }

    #[test]
    fn hilbert_darker_near_diagonal_than_comparators() {
        // The qualitative claim of Figure 6.b, quantified: within a band of
        // width 8 on an 8x8 mesh, Hilbert's mean distance is the smallest.
        let mesh = Mesh::new(8, 8).unwrap();
        let hil = DistanceHeatmap::from_traversal(&Hilbert.traversal(mesh).unwrap());
        let zig = DistanceHeatmap::from_traversal(&ZigZag.traversal(mesh).unwrap());
        let cir = DistanceHeatmap::from_traversal(&Spiral.traversal(mesh).unwrap());
        let band = 8;
        assert!(hil.banded_mean_distance(band) < zig.banded_mean_distance(band));
        assert!(hil.banded_mean_distance(band) < cir.banded_mean_distance(band));
    }

    #[test]
    fn mean_distance_is_traversal_invariant() {
        // The unrestricted mean over all pairs depends only on the mesh,
        // not the curve (it is the mean pairwise distance of the grid).
        let mesh = Mesh::new(8, 8).unwrap();
        let hil = DistanceHeatmap::from_traversal(&Hilbert.traversal(mesh).unwrap());
        let zig = DistanceHeatmap::from_traversal(&ZigZag.traversal(mesh).unwrap());
        assert!((hil.mean_distance() - zig.mean_distance()).abs() < 1e-9);
    }

    #[test]
    fn degenerate_sizes() {
        let hm = DistanceHeatmap::from_traversal(&[]);
        assert!(hm.is_empty());
        assert_eq!(hm.mean_distance(), 0.0);
        let hm = DistanceHeatmap::from_traversal(&[snnmap_hw::Coord::new(0, 0)]);
        assert_eq!(hm.len(), 1);
        assert_eq!(hm.banded_mean_distance(4), 0.0);
    }
}
