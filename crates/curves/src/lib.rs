//! Space-filling curves for SNN-to-hardware mapping.
//!
//! §4.2 of the paper obtains its initial placement by laying a
//! topologically-sorted cluster sequence onto the 2D mesh along a Hilbert
//! space-filling curve; §4.3 (Figure 6) justifies that choice statistically
//! against two comparator curves (ZigZag and Circle/spiral).
//!
//! This crate provides:
//!
//! * [`SpaceFillingCurve`] — a 1D → 2D traversal-order abstraction,
//! * [`Hilbert`] — the classic Hilbert curve on `2^k × 2^k` squares,
//! * [`Gilbert`] — the generalized Hilbert curve on arbitrary rectangles
//!   (Appendix A of the paper, after Rong 2021 / Červený's *gilbert*),
//! * [`ZigZag`] — serpentine row-major traversal,
//! * [`Spiral`] — the paper's "Circle" curve: an outside-in spiral,
//! * [`heatmap`] / [`cost`] — the distance-heatmap and connection-mask cost
//!   machinery behind Figure 6, including the probability-cloud ensemble.
//!
//! # Examples
//!
//! ```
//! use snnmap_curves::{Hilbert, SpaceFillingCurve};
//! use snnmap_hw::Mesh;
//!
//! let mesh = Mesh::new(8, 8)?;
//! let order = Hilbert.traversal(mesh)?;
//! // A space-filling curve visits every core exactly once, one hop at a time.
//! assert_eq!(order.len(), 64);
//! for w in order.windows(2) {
//!     assert_eq!(w[0].manhattan(w[1]), 1);
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod cost;
mod curve;
mod error;
mod gilbert;
pub mod heatmap;
mod hilbert;
mod spiral;
mod zigzag;

pub use curve::{masked_traversal, SpaceFillingCurve};
pub use error::CurveError;
pub use gilbert::Gilbert;
pub use hilbert::Hilbert;
pub use curve::{assert_valid_continuous_traversal, assert_valid_traversal_with_jumps};
pub use spiral::Spiral;
pub use zigzag::{Serpentine, ZigZag};
