//! Generalized Hilbert curve on arbitrary rectangles.

use snnmap_hw::{Coord, Mesh};

use crate::{CurveError, SpaceFillingCurve};

/// The generalized Hilbert ("gilbert") curve: a Hilbert-like continuous
/// traversal defined on rectangles of *arbitrary* size.
///
/// The paper's Appendix A adopts a modified Hilbert curve (after Rong
/// 2021) because real systems are rarely `2^k` squares; this implementation
/// follows Červený's recursive construction, which carries the same
/// locality property to arbitrary `N × M` grids (Figure 13 shows 16×8,
/// 13×19 and 16×12 instances).
///
/// On `2^k` squares the produced traversal has Hilbert-curve quality
/// (every step is a unit hop, strong 1D→2D locality), although the exact
/// visiting order may differ from [`Hilbert`](crate::Hilbert). On some
/// awkward rectangle shapes the recursive construction needs exactly one
/// diagonal junction (a two-hop step) somewhere along the curve — a
/// limitation inherited from the reference construction, irrelevant to
/// mapping quality (which depends on locality, not strict continuity)
/// and verified exhaustively in the tests: every traversal is a
/// permutation with at most one step of length two.
///
/// # Examples
///
/// ```
/// use snnmap_curves::{Gilbert, SpaceFillingCurve};
/// use snnmap_hw::Mesh;
///
/// // Works on the paper's 13x19 example rectangle.
/// let mesh = Mesh::new(13, 19)?;
/// let order = Gilbert.traversal(mesh)?;
/// assert_eq!(order.len(), 13 * 19);
/// for w in order.windows(2) {
///     assert!(w[0].manhattan(w[1]) <= 2); // unit steps, at most one diagonal
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Gilbert;

impl Gilbert {
    /// Generates the traversal as `(row, col)` pairs on a
    /// `rows × cols` grid.
    fn generate(rows: u32, cols: u32) -> Vec<(u32, u32)> {
        let mut out = Vec::with_capacity((rows * cols) as usize);
        // Work in (col=x, row=y) space like the reference construction,
        // majoring on the wider dimension.
        if cols >= rows {
            Self::gen_rec(&mut out, 0, 0, cols as i64, 0, 0, rows as i64);
        } else {
            Self::gen_rec(&mut out, 0, 0, 0, rows as i64, cols as i64, 0);
        }
        out
    }

    /// Recursive generalized-Hilbert generator. `(x, y)` is the current
    /// origin; `(ax, ay)` the major axis vector; `(bx, by)` the minor axis
    /// vector. Emits `(row, col) = (y, x)` points.
    #[allow(clippy::too_many_arguments)]
    fn gen_rec(out: &mut Vec<(u32, u32)>, x: i64, y: i64, ax: i64, ay: i64, bx: i64, by: i64) {
        let w = (ax + ay).abs();
        let h = (bx + by).abs();
        let (dax, day) = (ax.signum(), ay.signum());
        let (dbx, dby) = (bx.signum(), by.signum());

        if h == 1 {
            let (mut cx, mut cy) = (x, y);
            for _ in 0..w {
                out.push((cy as u32, cx as u32));
                cx += dax;
                cy += day;
            }
            return;
        }
        if w == 1 {
            let (mut cx, mut cy) = (x, y);
            for _ in 0..h {
                out.push((cy as u32, cx as u32));
                cx += dbx;
                cy += dby;
            }
            return;
        }

        // Floor division (not truncation): the recursive sub-calls pass
        // negated axis vectors, and halving them must round toward
        // negative infinity for the construction's parity arguments to
        // hold (a truncating divide breaks continuity on e.g. 4×5).
        let (mut ax2, mut ay2) = (ax.div_euclid(2), ay.div_euclid(2));
        let (mut bx2, mut by2) = (bx.div_euclid(2), by.div_euclid(2));
        let w2 = (ax2 + ay2).abs();
        let h2 = (bx2 + by2).abs();

        if 2 * w > 3 * h {
            if w2 % 2 != 0 && w > 2 {
                ax2 += dax;
                ay2 += day;
            }
            // Long case: split into two pieces along the major axis.
            Self::gen_rec(out, x, y, ax2, ay2, bx, by);
            Self::gen_rec(out, x + ax2, y + ay2, ax - ax2, ay - ay2, bx, by);
        } else {
            if h2 % 2 != 0 && h > 2 {
                bx2 += dbx;
                by2 += dby;
            }
            // Standard case: one step up, one long horizontal, one step
            // down.
            Self::gen_rec(out, x, y, bx2, by2, ax2, ay2);
            Self::gen_rec(out, x + bx2, y + by2, ax, ay, bx - bx2, by - by2);
            Self::gen_rec(
                out,
                x + (ax - dax) + (bx2 - dbx),
                y + (ay - day) + (by2 - dby),
                -bx2,
                -by2,
                -(ax - ax2),
                -(ay - ay2),
            );
        }
    }
}

impl SpaceFillingCurve for Gilbert {
    fn name(&self) -> &'static str {
        "Hilbert"
    }

    fn traversal(&self, mesh: Mesh) -> Result<Vec<Coord>, CurveError> {
        Ok(Self::generate(mesh.rows() as u32, mesh.cols() as u32)
            .into_iter()
            .map(|(r, c)| Coord::new(r as u16, c as u16))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::{assert_valid_continuous_traversal, assert_valid_traversal_with_jumps};

    #[test]
    fn continuous_permutation_on_paper_rectangles() {
        // Appendix A figure 13 instances plus assorted awkward shapes.
        for (r, c) in [(16, 8), (13, 19), (16, 12), (1, 7), (7, 1), (2, 5), (5, 2), (3, 3)] {
            let mesh = Mesh::new(r, c).unwrap();
            let order = Gilbert.traversal(mesh).unwrap();
            assert_valid_continuous_traversal(mesh, &order);
        }
    }

    #[test]
    fn every_rectangle_up_to_48_is_a_near_continuous_permutation() {
        // Exhaustive check of the relaxed contract: permutation, steps of
        // at most two hops, and at most one non-unit step per traversal.
        for r in 1u16..=48 {
            for c in 1u16..=48 {
                let mesh = Mesh::new(r, c).unwrap();
                let order = Gilbert.traversal(mesh).unwrap();
                assert_valid_traversal_with_jumps(mesh, &order, 2, 1);
            }
        }
    }

    #[test]
    fn continuous_permutation_on_pow2_squares() {
        for side in [2u16, 4, 8, 16, 32] {
            let mesh = Mesh::new(side, side).unwrap();
            let order = Gilbert.traversal(mesh).unwrap();
            assert_valid_continuous_traversal(mesh, &order);
        }
    }

    #[test]
    fn table3_mesh_sizes_all_work() {
        // The hardware targets of Table 3 (cluster counts do not always fill
        // the square).
        for side in [3u16, 4, 16, 42, 60, 84] {
            let mesh = Mesh::new(side, side).unwrap();
            let order = Gilbert.traversal(mesh).unwrap();
            assert_valid_continuous_traversal(mesh, &order);
        }
    }

    #[test]
    fn starts_at_origin() {
        for (r, c) in [(8, 8), (13, 19), (5, 3)] {
            let order = Gilbert.traversal(Mesh::new(r, c).unwrap()).unwrap();
            assert_eq!(order[0], Coord::new(0, 0));
        }
    }

    #[test]
    fn locality_on_rectangle_beats_serpentine() {
        // Same statistic as the Hilbert locality test but on a non-square,
        // non-pow2 mesh, against serpentine (zigzag-like) order.
        let mesh = Mesh::new(12, 20).unwrap();
        let gil = Gilbert.traversal(mesh).unwrap();
        let mut serp: Vec<Coord> = Vec::with_capacity(mesh.len());
        for r in 0..12u16 {
            let cols: Vec<u16> =
                if r % 2 == 0 { (0..20).collect() } else { (0..20).rev().collect() };
            serp.extend(cols.into_iter().map(|c| Coord::new(r, c)));
        }
        let span = 20usize;
        let avg = |ord: &[Coord]| {
            let mut s = 0u32;
            for i in 0..ord.len() - span {
                s += ord[i].manhattan(ord[i + span]);
            }
            s as f64 / (ord.len() - span) as f64
        };
        assert!(avg(&gil) < avg(&serp));
    }
}
