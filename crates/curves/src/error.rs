//! Error type for space-filling-curve construction.

use std::error::Error;
use std::fmt;

use snnmap_hw::Mesh;

/// Errors produced when a curve cannot traverse a given mesh.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CurveError {
    /// The classic Hilbert curve is only defined on square meshes whose
    /// side is a power of two (the paper's Appendix A motivates the
    /// generalized curve precisely because of this restriction).
    NotPow2Square {
        /// The rejected mesh.
        mesh: Mesh,
    },
    /// A sequence index was outside the mesh.
    IndexOutOfRange {
        /// The rejected index.
        index: usize,
        /// The number of cores in the mesh.
        len: usize,
    },
}

impl fmt::Display for CurveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CurveError::NotPow2Square { mesh } => {
                write!(f, "hilbert curve requires a 2^k square mesh, got {mesh}")
            }
            CurveError::IndexOutOfRange { index, len } => {
                write!(f, "sequence index {index} outside mesh of {len} cores")
            }
        }
    }
}

impl Error for CurveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let e = CurveError::NotPow2Square { mesh: Mesh::new(3, 3).unwrap() };
        assert!(e.to_string().contains("hilbert"));
        let e = CurveError::IndexOutOfRange { index: 10, len: 9 };
        assert!(e.to_string().contains("10"));
    }
}
