//! ZigZag (diagonal-scan) and Serpentine traversals — Figure 6 comparator
//! curves.

use snnmap_hw::{Coord, Mesh};

use crate::{CurveError, SpaceFillingCurve};

/// The ZigZag curve: a diagonal (JPEG-style) scan that walks anti-diagonals
/// alternately up-right and down-left.
///
/// This matches the paper's Figure 6 comparator, whose measured cost on the
/// probability cloud is ≈2.6× Hilbert's: diagonal steps are two Manhattan
/// hops, and successive anti-diagonals drift across the whole mesh, so the
/// 1D→2D locality is markedly worse than the Hilbert curve's (and also
/// worse than a simple serpentine's, see [`Serpentine`]).
///
/// Unlike the other curves in this crate, the ZigZag traversal is *not*
/// unit-continuous: interior diagonal steps have Manhattan length 2.
///
/// # Examples
///
/// ```
/// use snnmap_curves::{SpaceFillingCurve, ZigZag};
/// use snnmap_hw::{Coord, Mesh};
///
/// let order = ZigZag.traversal(Mesh::new(3, 3)?)?;
/// // First anti-diagonal after the origin: (0,1) then (1,0).
/// assert_eq!(&order[..3], &[Coord::new(0, 0), Coord::new(0, 1), Coord::new(1, 0)]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct ZigZag;

impl SpaceFillingCurve for ZigZag {
    fn name(&self) -> &'static str {
        "ZigZag"
    }

    fn traversal(&self, mesh: Mesh) -> Result<Vec<Coord>, CurveError> {
        let (rows, cols) = (mesh.rows() as i32, mesh.cols() as i32);
        let mut out = Vec::with_capacity(mesh.len());
        for d in 0..rows + cols - 1 {
            // Anti-diagonal d holds cells with x + y == d.
            let x_lo = (d - cols + 1).max(0);
            let x_hi = d.min(rows - 1);
            if d % 2 == 0 {
                // Walk up-right: decreasing x.
                for x in (x_lo..=x_hi).rev() {
                    out.push(Coord::new(x as u16, (d - x) as u16));
                }
            } else {
                // Walk down-left: increasing x.
                for x in x_lo..=x_hi {
                    out.push(Coord::new(x as u16, (d - x) as u16));
                }
            }
        }
        Ok(out)
    }
}

/// The serpentine (boustrophedon) curve: row 0 left-to-right, row 1
/// right-to-left, and so on.
///
/// Kept as an additional comparator and ablation curve: it is
/// unit-continuous and close to the Hilbert curve at very short 1D range,
/// but loses at the layer-to-layer ranges SNN traffic actually spans.
///
/// # Examples
///
/// ```
/// use snnmap_curves::{Serpentine, SpaceFillingCurve};
/// use snnmap_hw::{Coord, Mesh};
///
/// let order = Serpentine.traversal(Mesh::new(2, 3)?)?;
/// assert_eq!(order[2], Coord::new(0, 2));
/// assert_eq!(order[3], Coord::new(1, 2)); // snake turns at the row edge
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Serpentine;

impl SpaceFillingCurve for Serpentine {
    fn name(&self) -> &'static str {
        "Serpentine"
    }

    fn traversal(&self, mesh: Mesh) -> Result<Vec<Coord>, CurveError> {
        Ok((0..mesh.len()).map(|i| self.coord(mesh, i).expect("index in range")).collect())
    }

    fn coord(&self, mesh: Mesh, index: usize) -> Result<Coord, CurveError> {
        if index >= mesh.len() {
            return Err(CurveError::IndexOutOfRange { index, len: mesh.len() });
        }
        let cols = mesh.cols() as usize;
        let row = index / cols;
        let off = index % cols;
        let col = if row % 2 == 0 { off } else { cols - 1 - off };
        Ok(Coord::new(row as u16, col as u16))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::assert_valid_continuous_traversal;

    fn assert_permutation(mesh: Mesh, order: &[Coord]) {
        assert_eq!(order.len(), mesh.len());
        let mut seen = vec![false; mesh.len()];
        for &c in order {
            assert!(mesh.contains(c));
            let i = mesh.index_of(c);
            assert!(!seen[i], "{c} visited twice");
            seen[i] = true;
        }
    }

    #[test]
    fn zigzag_is_permutation() {
        for (r, c) in [(1, 1), (1, 9), (9, 1), (8, 8), (5, 7), (7, 5)] {
            let mesh = Mesh::new(r, c).unwrap();
            let order = ZigZag.traversal(mesh).unwrap();
            assert_permutation(mesh, &order);
        }
    }

    #[test]
    fn zigzag_known_3x3_diagonal_order() {
        let order = ZigZag.traversal(Mesh::new(3, 3).unwrap()).unwrap();
        let expect = [
            (0, 0),
            (0, 1),
            (1, 0),
            (2, 0),
            (1, 1),
            (0, 2),
            (1, 2),
            (2, 1),
            (2, 2),
        ];
        for (i, &(x, y)) in expect.iter().enumerate() {
            assert_eq!(order[i], Coord::new(x, y), "position {i}");
        }
    }

    #[test]
    fn zigzag_steps_bounded_by_two_hops_on_squares() {
        // On square meshes, diagonal steps are 2 hops and turn steps 1 hop.
        let order = ZigZag.traversal(Mesh::new(8, 8).unwrap()).unwrap();
        for w in order.windows(2) {
            let d = w[0].manhattan(w[1]);
            assert!(d == 1 || d == 2, "{} -> {} is {d} hops", w[0], w[1]);
        }
    }

    #[test]
    fn serpentine_is_continuous_permutation() {
        for (r, c) in [(1, 1), (1, 9), (9, 1), (8, 8), (5, 7)] {
            let mesh = Mesh::new(r, c).unwrap();
            let order = Serpentine.traversal(mesh).unwrap();
            assert_valid_continuous_traversal(mesh, &order);
        }
    }

    #[test]
    fn serpentine_snake_pattern_3x3() {
        let order = Serpentine.traversal(Mesh::new(3, 3).unwrap()).unwrap();
        let expect = [
            (0, 0),
            (0, 1),
            (0, 2),
            (1, 2),
            (1, 1),
            (1, 0),
            (2, 0),
            (2, 1),
            (2, 2),
        ];
        for (i, &(x, y)) in expect.iter().enumerate() {
            assert_eq!(order[i], Coord::new(x, y));
        }
    }

    #[test]
    fn serpentine_coord_matches_traversal() {
        let mesh = Mesh::new(6, 5).unwrap();
        let order = Serpentine.traversal(mesh).unwrap();
        for (i, &c) in order.iter().enumerate() {
            assert_eq!(Serpentine.coord(mesh, i).unwrap(), c);
        }
        assert!(Serpentine.coord(mesh, 30).is_err());
    }
}
