//! Curve-cost analysis under SNN connection masks (Figure 6.c–e).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use snnmap_hw::Coord;

/// A (possibly weighted) set of 1D index pairs standing for SNN
/// connections — the "connection image" of Figure 6.c.
///
/// Entry `(i, j, w)` says the `i`-th and `j`-th items of the 1D sequence
/// communicate with traffic weight `w`. Covering a curve's distance
/// heatmap with this mask and summing gives the curve's mapping cost
/// (Figure 6.d).
///
/// # Examples
///
/// ```
/// use snnmap_curves::cost::ConnectionMask;
///
/// // Two fully connected layers of 4 items each over an 8-item sequence.
/// let mask = ConnectionMask::layered(&[4, 4]);
/// assert_eq!(mask.len(), 16);
/// assert_eq!(mask.sequence_len(), 8);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ConnectionMask {
    n: usize,
    edges: Vec<(u32, u32, f32)>,
}

impl ConnectionMask {
    /// Creates a mask over a sequence of `n` items with unit-weight edges.
    ///
    /// # Panics
    ///
    /// Panics if an edge index is `≥ n`.
    pub fn new(n: usize, edges: impl IntoIterator<Item = (u32, u32)>) -> Self {
        Self::weighted(n, edges.into_iter().map(|(i, j)| (i, j, 1.0)))
    }

    /// Creates a mask with explicit edge weights.
    ///
    /// # Panics
    ///
    /// Panics if an edge index is `≥ n` or a weight is non-finite.
    pub fn weighted(n: usize, edges: impl IntoIterator<Item = (u32, u32, f32)>) -> Self {
        let edges: Vec<_> = edges.into_iter().collect();
        for &(i, j, w) in &edges {
            assert!((i as usize) < n && (j as usize) < n, "edge ({i}, {j}) outside sequence {n}");
            assert!(w.is_finite(), "edge ({i}, {j}) has non-finite weight");
        }
        Self { n, edges }
    }

    /// A layered fully connected network: consecutive layers of the given
    /// sizes, every unit in one layer connected to every unit in the next
    /// (the paper's `Full_connect_8_8` pattern is `layered(&[8; 8])`).
    pub fn layered(layer_sizes: &[usize]) -> Self {
        let n: usize = layer_sizes.iter().sum();
        let mut edges = Vec::new();
        let mut start = 0usize;
        for w in layer_sizes.windows(2) {
            let (a, b) = (w[0], w[1]);
            for i in 0..a {
                for j in 0..b {
                    edges.push(((start + i) as u32, (start + a + j) as u32, 1.0));
                }
            }
            start += a;
        }
        Self { n, edges }
    }

    /// A random layered SNN over an `n`-item sequence: layer sizes drawn
    /// uniformly between `n/8` and `n/2` (wide layers, like the paper's
    /// `Full_connect_8_8` whose eight layers each hold an eighth of the
    /// network, and like cluster-level CNN images whose layer groups span
    /// large index ranges), consecutive layers fully connected with a
    /// random density. Used as one sample of the Figure 6.e probability
    /// cloud.
    pub fn random_layered(n: usize, rng: &mut impl Rng) -> Self {
        assert!(n >= 2, "need at least two items");
        let lo = (n / 8).max(1);
        let hi = (n / 3).max(1);
        let mut sizes = Vec::new();
        let mut left = n;
        while left > 0 {
            let max = left.min(hi);
            let s = rng.gen_range(lo.min(max)..=max);
            sizes.push(s);
            left -= s;
        }
        if sizes.len() == 1 {
            let s = sizes[0];
            sizes = vec![s / 2, s - s / 2];
        }
        let density: f64 = rng.gen_range(0.2..1.0);
        let mut edges = Vec::new();
        let mut start = 0usize;
        for w in sizes.windows(2) {
            let (a, b) = (w[0], w[1]);
            for i in 0..a {
                for j in 0..b {
                    if rng.gen_bool(density) {
                        edges.push(((start + i) as u32, (start + a + j) as u32, 1.0));
                    }
                }
            }
            start += a;
        }
        Self { n, edges }
    }

    /// A convolution-band mask: every item `i` connects to `i + δ` for
    /// each offset `δ ∈ 1..=reach`, with the given density — the 1D
    /// shadow of neuron-level convolutional locality (the dense diagonal
    /// band of Figure 6.c's connection images).
    pub fn band(n: usize, reach: usize, density: f64, rng: &mut impl Rng) -> Self {
        assert!(n >= 2 && reach >= 1);
        let mut edges = Vec::new();
        for i in 0..n {
            for d in 1..=reach.min(n - 1 - i) {
                if rng.gen_bool(density) {
                    edges.push((i as u32, (i + d) as u32, 1.0));
                }
            }
        }
        Self { n, edges }
    }

    /// The probability cloud of Figure 6.e: the expected connection image
    /// over `samples` random layered SNNs *of varying size*, represented
    /// as one weighted mask whose weights are connection frequencies.
    ///
    /// Each sampled SNN occupies a prefix of the sequence (its size drawn
    /// uniformly from `[8, n]`), mirroring the paper's cloud of "many
    /// connection images of different SNNs": applications smaller than
    /// the mesh are common, and they are precisely where the Hilbert
    /// curve's fractal property pays off — a `k`-item prefix fills a
    /// compact `√k × √k` region, while a spiral's prefix spans the whole
    /// perimeter and a diagonal scan's a full diagonal band.
    pub fn probability_cloud(n: usize, samples: usize, seed: u64) -> Self {
        assert!(n >= 8, "cloud needs at least 8 sequence items");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut freq = std::collections::HashMap::<(u32, u32), f32>::new();
        for _ in 0..samples {
            let size = rng.gen_range(8..=n);
            // Half the cloud is convolution-band images (dense near the
            // 1D diagonal), half layered fully connected images (mid- and
            // long-range) — the two structures visible in Figure 6.c.
            let mask = if rng.gen_bool(0.5) {
                let reach = rng.gen_range(1..=(size as f64).sqrt().ceil() as usize);
                Self::band(size, reach, rng.gen_range(0.3..1.0), &mut rng)
            } else {
                Self::random_layered(size, &mut rng)
            };
            for (i, j, w) in mask.edges {
                *freq.entry((i, j)).or_insert(0.0) += w / samples as f32;
            }
        }
        let mut edges: Vec<_> = freq.into_iter().map(|((i, j), w)| (i, j, w)).collect();
        edges.sort_unstable_by_key(|&(i, j, _)| (i, j));
        Self { n, edges }
    }

    /// Sequence length the mask is defined over.
    #[inline]
    pub fn sequence_len(&self) -> usize {
        self.n
    }

    /// Number of (weighted) connections.
    #[inline]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the mask has no connections.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Iterates `(i, j, weight)` connections.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32, f32)> + '_ {
        self.edges.iter().copied()
    }
}

/// The mapping cost of a curve under a connection mask (Figure 6.d): the
/// weighted sum of 2D Manhattan distances of all masked index pairs,
/// `Σ w(i,j) · ‖order[i] − order[j]‖₁`.
///
/// # Panics
///
/// Panics if the mask's sequence is longer than the traversal. A mask
/// *shorter* than the traversal is fine: trailing positions are simply
/// unused, matching the paper's non-full placements.
pub fn mask_cost(order: &[Coord], mask: &ConnectionMask) -> f64 {
    assert!(
        mask.sequence_len() <= order.len(),
        "mask over {} items cannot be laid on {} mesh cores",
        mask.sequence_len(),
        order.len()
    );
    mask.iter()
        .map(|(i, j, w)| w as f64 * order[i as usize].manhattan(order[j as usize]) as f64)
        .sum()
}

/// Costs of several curves under one mask, normalized so the first curve
/// has cost 1.0 — the presentation of Figure 6.e (Hilbert 1.0, ZigZag
/// 2.63, Circle 6.33).
///
/// Returns `(name, absolute cost, normalized cost)` per curve.
///
/// # Panics
///
/// Panics if `orders` is empty or the first curve has zero cost under a
/// nonempty mask.
pub fn normalized_costs(
    orders: &[(&'static str, Vec<Coord>)],
    mask: &ConnectionMask,
) -> Vec<(&'static str, f64, f64)> {
    assert!(!orders.is_empty(), "need at least one curve");
    let base = mask_cost(&orders[0].1, mask);
    assert!(
        mask.is_empty() || base > 0.0,
        "reference curve has zero cost; cannot normalize"
    );
    orders
        .iter()
        .map(|(name, order)| {
            let c = mask_cost(order, mask);
            (*name, c, if base > 0.0 { c / base } else { 0.0 })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Hilbert, SpaceFillingCurve, Spiral, ZigZag};
    use snnmap_hw::Mesh;

    #[test]
    fn layered_edge_count() {
        let m = ConnectionMask::layered(&[3, 4, 2]);
        assert_eq!(m.sequence_len(), 9);
        assert_eq!(m.len(), 3 * 4 + 4 * 2);
    }

    #[test]
    #[should_panic(expected = "outside sequence")]
    fn new_rejects_out_of_range() {
        let _ = ConnectionMask::new(4, [(0, 4)]);
    }

    #[test]
    fn mask_cost_by_hand() {
        // ZigZag on 2x2: order = (0,0),(0,1),(1,1),(1,0).
        let order = ZigZag.traversal(Mesh::new(2, 2).unwrap()).unwrap();
        let mask = ConnectionMask::new(4, [(0, 1), (0, 2), (0, 3)]);
        // Distances: 1, 2, 1.
        assert_eq!(mask_cost(&order, &mask), 4.0);
    }

    #[test]
    fn weighted_cost_scales() {
        let order = ZigZag.traversal(Mesh::new(2, 2).unwrap()).unwrap();
        let m1 = ConnectionMask::new(4, [(0, 2)]);
        let m2 = ConnectionMask::weighted(4, [(0, 2, 2.5)]);
        assert_eq!(mask_cost(&order, &m2), 2.5 * mask_cost(&order, &m1));
    }

    #[test]
    fn figure6_ordering_on_probability_cloud() {
        // The headline of Figure 6.e: Hilbert < ZigZag < Circle in cost
        // over the probability cloud of random SNNs.
        let mesh = Mesh::new(8, 8).unwrap();
        let cloud = ConnectionMask::probability_cloud(64, 200, 7);
        let orders = vec![
            ("Hilbert", Hilbert.traversal(mesh).unwrap()),
            ("ZigZag", ZigZag.traversal(mesh).unwrap()),
            ("Circle", Spiral.traversal(mesh).unwrap()),
        ];
        let costs = normalized_costs(&orders, &cloud);
        assert_eq!(costs[0].2, 1.0);
        assert!(costs[1].2 > 1.0, "zigzag should be worse than hilbert: {costs:?}");
        assert!(costs[2].2 > costs[1].2, "circle should be worst: {costs:?}");
    }

    #[test]
    fn probability_cloud_is_deterministic_per_seed() {
        let a = ConnectionMask::probability_cloud(32, 50, 3);
        let b = ConnectionMask::probability_cloud(32, 50, 3);
        assert_eq!(a, b);
        let c = ConnectionMask::probability_cloud(32, 50, 4);
        assert_ne!(a, c);
    }

    #[test]
    fn mask_shorter_than_traversal_is_ok() {
        let order = ZigZag.traversal(Mesh::new(4, 4).unwrap()).unwrap();
        let mask = ConnectionMask::new(5, [(0, 4)]);
        assert!(mask_cost(&order, &mask) > 0.0);
    }
}
