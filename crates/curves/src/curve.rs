//! The space-filling-curve abstraction.

use snnmap_hw::{Coord, Mesh};

use crate::CurveError;

/// A space-filling curve: a bijection between the 1D index range
/// `0..mesh.len()` and the 2D mesh coordinates.
///
/// The paper's initial-placement step (eq. 16) is exactly such a function
/// `Hilbert : ℕ → (ℕ, ℕ)`; the comparison curves of Figure 6 (ZigZag,
/// Circle) implement the same interface.
///
/// Implementations must produce a *permutation* of the mesh: every core
/// appears exactly once in [`traversal`](SpaceFillingCurve::traversal).
/// All curves shipped in this crate additionally guarantee *continuity* —
/// consecutive sequence positions map to mesh-adjacent cores — but the
/// trait itself does not require it.
pub trait SpaceFillingCurve {
    /// Short human-readable name, used in experiment tables
    /// (e.g. `"Hilbert"`, `"ZigZag"`, `"Circle"`).
    fn name(&self) -> &'static str;

    /// The full traversal order: element `i` is where the `i`-th item of a
    /// 1D sequence lands on the mesh.
    ///
    /// # Errors
    ///
    /// Implementations may reject meshes outside their domain, e.g.
    /// [`Hilbert`](crate::Hilbert) on non-`2^k` squares returns
    /// [`CurveError::NotPow2Square`].
    fn traversal(&self, mesh: Mesh) -> Result<Vec<Coord>, CurveError>;

    /// Maps one sequence index to its coordinate.
    ///
    /// The default computes the full traversal; implementations with a
    /// closed form (Hilbert on `2^k` squares, ZigZag, Spiral) override it
    /// with an O(1)–O(log n) computation.
    ///
    /// # Errors
    ///
    /// [`CurveError::IndexOutOfRange`] when `index ≥ mesh.len()`, plus any
    /// domain error of [`traversal`](SpaceFillingCurve::traversal).
    fn coord(&self, mesh: Mesh, index: usize) -> Result<Coord, CurveError> {
        if index >= mesh.len() {
            return Err(CurveError::IndexOutOfRange { index, len: mesh.len() });
        }
        Ok(self.traversal(mesh)?[index])
    }
}

/// A curve traversal restricted to the cores `keep` accepts, preserving
/// the curve's visit order: the 1D sequence is *compacted* over the
/// surviving cores, so locality degrades gracefully instead of leaving
/// holes in the placed sequence.
///
/// This is the fault-aware counterpart of
/// [`SpaceFillingCurve::traversal`]: passing a fault map's "is healthy"
/// predicate yields the visit order over usable cores only.
///
/// # Errors
///
/// Any domain error of the underlying curve.
///
/// # Examples
///
/// ```
/// use snnmap_curves::{masked_traversal, Hilbert};
/// use snnmap_hw::{Coord, Mesh};
///
/// let mesh = Mesh::new(4, 4)?;
/// let all = masked_traversal(&Hilbert, mesh, |_| true)?;
/// assert_eq!(all.len(), 16);
/// let survivors = masked_traversal(&Hilbert, mesh, |c| c != Coord::new(0, 0))?;
/// assert_eq!(survivors.len(), 15);
/// assert!(!survivors.contains(&Coord::new(0, 0)));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn masked_traversal(
    curve: &dyn SpaceFillingCurve,
    mesh: Mesh,
    keep: impl Fn(Coord) -> bool,
) -> Result<Vec<Coord>, CurveError> {
    Ok(curve.traversal(mesh)?.into_iter().filter(|&c| keep(c)).collect())
}

/// Test-support: assert a traversal is a permutation of the mesh and each
/// step moves exactly one hop. Exposed so downstream crates can validate
/// custom curves in their own tests.
///
/// # Panics
///
/// Panics with a descriptive message when the property fails.
pub fn assert_valid_continuous_traversal(mesh: Mesh, order: &[Coord]) {
    assert_eq!(order.len(), mesh.len(), "traversal must cover the mesh exactly");
    let mut seen = vec![false; mesh.len()];
    for &c in order {
        assert!(mesh.contains(c), "coordinate {c} outside {mesh}");
        let i = mesh.index_of(c);
        assert!(!seen[i], "coordinate {c} visited twice");
        seen[i] = true;
    }
    for (k, w) in order.windows(2).enumerate() {
        assert_eq!(
            w[0].manhattan(w[1]),
            1,
            "step {k}: {} -> {} is not a unit mesh hop",
            w[0],
            w[1]
        );
    }
}

/// Test-support: assert a traversal is a permutation of the mesh whose
/// steps are at most `max_step` hops, with at most `max_jumps` steps
/// longer than one hop. The generalized Hilbert curve satisfies
/// `(max_step, max_jumps) = (2, 1)` on every rectangle (verified
/// exhaustively up to 96×96): the recursive construction occasionally
/// needs one diagonal junction on awkward aspect ratios.
///
/// # Panics
///
/// Panics with a descriptive message when the property fails.
pub fn assert_valid_traversal_with_jumps(
    mesh: Mesh,
    order: &[Coord],
    max_step: u32,
    max_jumps: usize,
) {
    assert_eq!(order.len(), mesh.len(), "traversal must cover the mesh exactly");
    let mut seen = vec![false; mesh.len()];
    for &c in order {
        assert!(mesh.contains(c), "coordinate {c} outside {mesh}");
        let i = mesh.index_of(c);
        assert!(!seen[i], "coordinate {c} visited twice");
        seen[i] = true;
    }
    let mut jumps = 0usize;
    for (k, w) in order.windows(2).enumerate() {
        let d = w[0].manhattan(w[1]);
        assert!(d <= max_step, "step {k}: {} -> {} is {d} hops (max {max_step})", w[0], w[1]);
        if d > 1 {
            jumps += 1;
        }
    }
    assert!(jumps <= max_jumps, "{jumps} non-unit steps exceed the allowed {max_jumps}");
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deliberately simple curve to exercise the default `coord`.
    struct RowMajor;

    impl SpaceFillingCurve for RowMajor {
        fn name(&self) -> &'static str {
            "RowMajor"
        }

        fn traversal(&self, mesh: Mesh) -> Result<Vec<Coord>, CurveError> {
            Ok(mesh.iter().collect())
        }
    }

    #[test]
    fn default_coord_indexes_traversal() {
        let mesh = Mesh::new(2, 3).unwrap();
        assert_eq!(RowMajor.coord(mesh, 4).unwrap(), Coord::new(1, 1));
        assert!(matches!(
            RowMajor.coord(mesh, 6),
            Err(CurveError::IndexOutOfRange { index: 6, len: 6 })
        ));
    }

    #[test]
    fn masked_traversal_is_an_order_preserving_subsequence() {
        let mesh = Mesh::new(2, 3).unwrap();
        let full = RowMajor.traversal(mesh).unwrap();
        let masked = masked_traversal(&RowMajor, mesh, |c| c.y != 1).unwrap();
        assert_eq!(masked.len(), 4);
        let mut it = full.iter();
        for c in &masked {
            assert!(it.any(|f| f == c), "{c} out of curve order");
        }
    }

    #[test]
    #[should_panic(expected = "not a unit mesh hop")]
    fn validator_rejects_row_major_jumps() {
        let mesh = Mesh::new(2, 3).unwrap();
        let order = RowMajor.traversal(mesh).unwrap();
        // Row-major jumps at row boundaries, so it is a permutation but not
        // continuous.
        assert_valid_continuous_traversal(mesh, &order);
    }
}
