//! Spiral ("Circle") traversal — a Figure 6 comparator curve.

use snnmap_hw::{Coord, Mesh};

use crate::{CurveError, SpaceFillingCurve};

/// The paper's "Circle" curve: a clockwise outside-in spiral starting at
/// the top-left corner.
///
/// Continuous, but its 1D→2D locality is the worst of the three Figure 6
/// curves (≈6.3× Hilbert's cost): points early and late in the sequence
/// interleave around the perimeter rings.
///
/// # Examples
///
/// ```
/// use snnmap_curves::{SpaceFillingCurve, Spiral};
/// use snnmap_hw::{Coord, Mesh};
///
/// let order = Spiral.traversal(Mesh::new(3, 3)?)?;
/// assert_eq!(order.first(), Some(&Coord::new(0, 0)));
/// assert_eq!(order.last(), Some(&Coord::new(1, 1))); // centre is visited last
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Spiral;

impl SpaceFillingCurve for Spiral {
    fn name(&self) -> &'static str {
        "Circle"
    }

    fn traversal(&self, mesh: Mesh) -> Result<Vec<Coord>, CurveError> {
        let mut out = Vec::with_capacity(mesh.len());
        let (mut top, mut left) = (0i32, 0i32);
        let (mut bottom, mut right) = (mesh.rows() as i32 - 1, mesh.cols() as i32 - 1);
        while top <= bottom && left <= right {
            for y in left..=right {
                out.push(Coord::new(top as u16, y as u16));
            }
            for x in top + 1..=bottom {
                out.push(Coord::new(x as u16, right as u16));
            }
            if top < bottom {
                for y in (left..right).rev() {
                    out.push(Coord::new(bottom as u16, y as u16));
                }
            }
            if left < right {
                for x in (top + 1..bottom).rev() {
                    out.push(Coord::new(x as u16, left as u16));
                }
            }
            top += 1;
            bottom -= 1;
            left += 1;
            right -= 1;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::assert_valid_continuous_traversal;

    #[test]
    fn continuous_permutation() {
        for (r, c) in [(1, 1), (1, 6), (6, 1), (2, 2), (3, 3), (4, 4), (8, 8), (5, 8), (8, 5)] {
            let mesh = Mesh::new(r, c).unwrap();
            let order = Spiral.traversal(mesh).unwrap();
            assert_valid_continuous_traversal(mesh, &order);
        }
    }

    #[test]
    fn known_3x3_ring_order() {
        let order = Spiral.traversal(Mesh::new(3, 3).unwrap()).unwrap();
        let expect = [
            (0, 0),
            (0, 1),
            (0, 2),
            (1, 2),
            (2, 2),
            (2, 1),
            (2, 0),
            (1, 0),
            (1, 1),
        ];
        for (i, &(x, y)) in expect.iter().enumerate() {
            assert_eq!(order[i], Coord::new(x, y));
        }
    }

    #[test]
    fn first_ring_is_perimeter_on_4x4() {
        let order = Spiral.traversal(Mesh::new(4, 4).unwrap()).unwrap();
        // The first 12 visits form the outer ring.
        for c in &order[..12] {
            assert!(
                c.x == 0 || c.x == 3 || c.y == 0 || c.y == 3,
                "{c} should lie on the perimeter"
            );
        }
        // The remaining 4 form the inner 2x2 block.
        for c in &order[12..] {
            assert!((1..=2).contains(&c.x) && (1..=2).contains(&c.y));
        }
    }
}
