//! The SIGINT/SIGTERM contract of `snnmap map` and `resume`: a raised
//! terminate flag stops the run at the next sweep boundary, persists the
//! best-so-far placement plus a resumable checkpoint, and exits 130 —
//! and the checkpoint resumes to the byte-identical converged placement.
//!
//! Lives in its own integration binary because the terminate flag is
//! process-global: raising it here must not leak into the unit tests.
//! The flag is set directly (what the signal handler does) rather than
//! via `raise(2)`, keeping the test deterministic on every platform;
//! handler installation itself is covered in `snnmap_serve::signal`.

use std::sync::atomic::Ordering;

fn sv(args: &[&str]) -> Vec<String> {
    args.iter().map(|s| s.to_string()).collect()
}

#[test]
fn interrupted_map_checkpoints_and_resume_completes_it() {
    let dir = std::env::temp_dir().join("snnmap_cli_interrupt");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let pcn = dir.join("app.pcn");
    let pcn_s = pcn.to_str().unwrap();
    snnmap_cli::run(&sv(&["gen", "--random", "120,4", "--seed", "11", "--out", pcn_s]))
        .unwrap();

    // Uninterrupted reference.
    let full = dir.join("full.json");
    snnmap_cli::run(&sv(&[
        "map", pcn_s, "--out", full.to_str().unwrap(), "--mesh", "11x11",
    ]))
    .unwrap();

    // Interrupt before the run starts: the engine sees the raised flag
    // at the first sweep boundary — exactly what a Ctrl-C mid-run does,
    // minus the timing nondeterminism.
    let partial = dir.join("partial.json");
    let cp = dir.join("cp.json");
    let cp_s = cp.to_str().unwrap();
    let flag = snnmap_serve::signal::install();
    flag.store(true, Ordering::SeqCst);
    let err = snnmap_cli::run(&sv(&[
        "map", pcn_s, "--out", partial.to_str().unwrap(), "--mesh", "11x11",
        "--checkpoint-out", cp_s,
    ]))
    .unwrap_err();
    snnmap_serve::signal::reset();

    assert_eq!(err.exit_code(), 130, "{err}");
    let message = err.to_string();
    assert!(message.contains("interrupted"), "{message}");
    assert!(message.contains("checkpoint ->"), "{message}");
    assert!(partial.exists(), "best-so-far placement must be written");
    assert!(cp.exists(), "the budgeted stop must flush a checkpoint");

    // The flushed checkpoint resumes to the byte-identical converged
    // placement — an interrupt loses no work.
    let resumed = dir.join("resumed.json");
    snnmap_cli::run(&sv(&[
        "resume", pcn_s, "--checkpoint", cp_s, "--out", resumed.to_str().unwrap(),
    ]))
    .unwrap();
    assert_eq!(
        std::fs::read_to_string(&resumed).unwrap(),
        std::fs::read_to_string(&full).unwrap(),
        "interrupt + resume must match the uninterrupted run byte-for-byte"
    );

    // With the flag clear, the same command completes normally.
    snnmap_cli::run(&sv(&[
        "map", pcn_s, "--out", partial.to_str().unwrap(), "--mesh", "11x11",
    ]))
    .unwrap();
    assert_eq!(
        std::fs::read_to_string(&partial).unwrap(),
        std::fs::read_to_string(&full).unwrap(),
    );
}
