//! ASCII visualization of congestion maps.

use std::fmt::Write as _;

use snnmap_hw::Placement;
use snnmap_metrics::congestion_map;
use snnmap_model::Pcn;

use crate::CliError;

/// Brightness ramp from idle to hottest router.
const RAMP: &[u8] = b" .:-=+*#%@";

/// Renders the per-router expected congestion (eq. 13) of a placement as
/// an ASCII heatmap. Meshes wider than `max_width` columns are
/// downsampled by averaging blocks so the picture fits a terminal.
pub fn congestion_heatmap(
    pcn: &Pcn,
    placement: &Placement,
    max_width: usize,
) -> Result<String, CliError> {
    let mesh = placement.mesh();
    let acc = congestion_map(pcn, placement)?;
    let map = acc.map();
    let max = map.iter().copied().fold(0.0f64, f64::max);

    let cols = mesh.cols() as usize;
    let rows = mesh.rows() as usize;
    // Block size so the downsampled width fits.
    let block = cols.div_ceil(max_width.max(1)).max(1);
    let out_cols = cols.div_ceil(block);
    let out_rows = rows.div_ceil(block);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "congestion heatmap ({mesh}, hottest router {:.4e}{})",
        max,
        if block > 1 { format!(", {block}x{block} cells per character") } else { String::new() }
    );
    for br in 0..out_rows {
        for bc in 0..out_cols {
            let mut sum = 0.0;
            let mut count = 0u32;
            for r in br * block..((br + 1) * block).min(rows) {
                for c in bc * block..((bc + 1) * block).min(cols) {
                    sum += map[r * cols + c];
                    count += 1;
                }
            }
            let v = if count > 0 { sum / count as f64 } else { 0.0 };
            let idx = if max > 0.0 {
                (((v / max) * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1)
            } else {
                0
            };
            out.push(RAMP[idx] as char);
        }
        out.push('\n');
    }
    let _ = writeln!(out, "scale: ' ' = idle .. '@' = hottest");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use snnmap_hw::{Coord, Mesh};
    use snnmap_model::PcnBuilder;

    fn setup() -> (Pcn, Placement) {
        let mut b = PcnBuilder::new();
        b.add_cluster(1, 1);
        b.add_cluster(1, 1);
        b.add_edge(0, 1, 5.0).unwrap();
        let pcn = b.build().unwrap();
        let mesh = Mesh::new(4, 4).unwrap();
        let p =
            Placement::from_coords(mesh, &[Coord::new(0, 0), Coord::new(0, 3)]).unwrap();
        (pcn, p)
    }

    #[test]
    fn renders_hot_route() {
        let (pcn, p) = setup();
        let art = congestion_heatmap(&pcn, &p, 80).unwrap();
        let lines: Vec<&str> = art.lines().collect();
        // Header + 4 mesh rows + scale line.
        assert_eq!(lines.len(), 6);
        // The first mesh row carries all the traffic.
        assert_eq!(lines[1], "@@@@");
        assert_eq!(lines[2], "    ");
    }

    #[test]
    fn downsamples_wide_meshes() {
        let (pcn, _) = setup();
        let mesh = Mesh::new(8, 8).unwrap();
        let p =
            Placement::from_coords(mesh, &[Coord::new(0, 0), Coord::new(0, 7)]).unwrap();
        let art = congestion_heatmap(&pcn, &p, 4).unwrap();
        let row = art.lines().nth(1).unwrap();
        assert_eq!(row.len(), 4, "{art}");
        assert!(art.contains("2x2 cells"));
    }

    #[test]
    fn empty_traffic_is_all_idle() {
        let mut b = PcnBuilder::new();
        b.add_cluster(1, 1);
        let pcn = b.build().unwrap();
        let mesh = Mesh::new(2, 2).unwrap();
        let p = Placement::from_coords(mesh, &[Coord::new(0, 0)]).unwrap();
        let art = congestion_heatmap(&pcn, &p, 80).unwrap();
        assert!(art.lines().nth(1).unwrap().chars().all(|c| c == ' '));
    }
}
