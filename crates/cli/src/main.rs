//! `snnmap` — map SNN cluster networks onto neuromorphic meshes.

// Counting allocator so `--trace-out` phase spans carry allocation
// deltas; two relaxed atomic adds per allocation, nothing on free.
#[global_allocator]
static ALLOC: snnmap_trace::CountingAlloc = snnmap_trace::CountingAlloc::new();

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match snnmap_cli::run(&args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            let code = e.exit_code();
            if code == 2 {
                eprintln!("{}", snnmap_cli::USAGE);
            }
            std::process::exit(code);
        }
    }
}
