//! Subcommand implementations.

use std::fmt::Write as _;
use std::path::Path;
use std::time::Duration;

use snnmap_baselines::{
    BaselineMapper, Budget, DfSynthesizerMapper, PsoMapper, RandomMapper, TrueNorthMapper,
};
use snnmap_core::{
    CheckpointWriter, CoreError, FdCheckpoint, FdRunOpts, InitialPlacement, MapOutcome, Mapper,
    MultilevelConfig, Objective, Potential, StopReason,
};
use snnmap_hw::{
    Board, ChipId, CoreConstraints, CostModel, FaultInjector, FaultMap, FaultPattern, Mesh,
    Placement,
};
use snnmap_io::{
    read_board, read_checkpoint, read_faults, read_pcn, read_pcnb, read_placement,
    render_board, render_faults, render_pcn, write_checkpoint, write_faults, write_pcn,
    write_pcnb, write_placement, CheckpointMeta,
};
use snnmap_serve::{signal, ServeConfig, Server};
use snnmap_trace::{sha256_hex, JsonlSink, NoopSink, TraceSink};
use snnmap_metrics::{evaluate_with, hop_histogram, EvalOptions};
use snnmap_noc::{NocConfig, NocReweighter, NocSim, PcnTraffic};
use snnmap_model::generators::{random_pcn, table3_suite};
use snnmap_model::Pcn;

use crate::opts::Opts;
use crate::{viz, CliError};

/// `--threads` parsing: absent means auto-detect (the builder's `0`),
/// honoring the `SNNMAP_THREADS` env fallback downstream. An *explicit*
/// flag must be a positive integer — unlike the env variable (which the
/// core warns about once and then ignores), a malformed or zero flag
/// value is a hard usage error, since the user typed it on purpose.
fn parse_threads_flag(o: &Opts) -> Result<usize, CliError> {
    match o.flag("threads") {
        None => Ok(0),
        Some(v) => snnmap_core::par::parse_env_threads(v).map_err(|e| {
            CliError::usage(format!("`--threads` takes a positive integer, got `{v}` ({e})"))
        }),
    }
}

/// Whether a path names a binary (`.pcnb`) PCN file.
fn is_pcnb(path: &Path) -> bool {
    path.extension().is_some_and(|e| e.eq_ignore_ascii_case("pcnb"))
}

/// Reads a PCN in either format, chosen by file extension: `.pcnb` is
/// the binary layout, anything else the text format.
fn read_pcn_auto(path: &Path) -> Result<Pcn, CliError> {
    if is_pcnb(path) {
        Ok(read_pcnb(path)?)
    } else {
        Ok(read_pcn(path)?)
    }
}

/// Writes a PCN in either format, chosen by file extension.
fn write_pcn_auto(path: &Path, pcn: &Pcn) -> Result<(), CliError> {
    if is_pcnb(path) {
        write_pcnb(path, pcn)?;
    } else {
        write_pcn(path, pcn)?;
    }
    Ok(())
}

/// `snnmap convert`: translate a PCN between the text and binary
/// formats; the direction is inferred from the file extensions. Both
/// directions canonicalize, so converting a file to itself is a no-op
/// fixed point after one round trip.
pub fn convert(args: &[String]) -> Result<String, CliError> {
    let o = Opts::parse(args, &["out"])?;
    if o.num_positional() > 1 {
        return Err(CliError::usage("expected exactly one <input.pcn|input.pcnb>"));
    }
    let input = Path::new(o.positional(0, "input.pcn|input.pcnb")?);
    let out = Path::new(o.required("out")?);
    let pcn = read_pcn_auto(input)?;
    write_pcn_auto(out, &pcn)?;
    Ok(format!(
        "converted {} -> {} ({}, {} clusters, {} connections)\n",
        input.display(),
        out.display(),
        if is_pcnb(out) { "binary" } else { "text" },
        pcn.num_clusters(),
        pcn.num_connections()
    ))
}

/// `snnmap gen`: write a benchmark or random PCN.
pub fn gen(args: &[String]) -> Result<String, CliError> {
    let o = Opts::parse(args, &["benchmark", "random", "seed", "out"])?;
    let seed: u64 = o.parsed_or("seed", 42)?;
    let out = Path::new(o.required("out")?);
    let pcn = match (o.flag("benchmark"), o.flag("random")) {
        (Some(name), None) => {
            let bench = table3_suite()
                .into_iter()
                .find(|b| b.row.name.eq_ignore_ascii_case(name))
                .ok_or_else(|| {
                    CliError::usage(format!(
                        "unknown benchmark `{name}`; names: {}",
                        table3_suite()
                            .iter()
                            .map(|b| b.row.name)
                            .collect::<Vec<_>>()
                            .join(", ")
                    ))
                })?;
            bench.pcn(seed)?
        }
        (None, Some(spec)) => {
            let (clusters, degree) = spec.split_once(',').ok_or_else(|| {
                CliError::usage("expected `--random <clusters>,<avg-degree>`")
            })?;
            let clusters: u32 = clusters
                .trim()
                .parse()
                .map_err(|_| CliError::usage(format!("bad cluster count `{clusters}`")))?;
            let degree: f64 = degree
                .trim()
                .parse()
                .map_err(|_| CliError::usage(format!("bad average degree `{degree}`")))?;
            random_pcn(clusters, degree, seed)?
        }
        _ => return Err(CliError::usage("need exactly one of `--benchmark` or `--random`")),
    };
    write_pcn_auto(out, &pcn)?;
    Ok(format!(
        "wrote {} ({} clusters, {} connections)\n",
        out.display(),
        pcn.num_clusters(),
        pcn.num_connections()
    ))
}

/// `snnmap info`: summarize a PCN file.
pub fn info(args: &[String]) -> Result<String, CliError> {
    let o = Opts::parse(args, &[])?;
    let pcn = read_pcn_auto(Path::new(o.positional(0, "file.pcn")?))?;
    let mut out = String::new();
    let _ = writeln!(out, "clusters:       {}", pcn.num_clusters());
    let _ = writeln!(out, "connections:    {}", pcn.num_connections());
    let _ = writeln!(out, "total neurons:  {}", pcn.total_neurons());
    let _ = writeln!(out, "total synapses: {}", pcn.total_synapses());
    let _ = writeln!(out, "total traffic:  {:.3}", pcn.total_traffic());
    let max_deg = (0..pcn.num_clusters()).map(|c| pcn.degree(c)).max().unwrap_or(0);
    let _ = writeln!(out, "max degree:     {max_deg}");
    let mesh = Mesh::square_for(pcn.num_clusters() as u64)
        .map_err(|e| CliError::usage(e.to_string()))?;
    let _ = writeln!(out, "minimal mesh:   {mesh}");
    Ok(out)
}

fn parse_mesh(spec: &str) -> Result<Mesh, CliError> {
    let (r, c) = spec
        .split_once(['x', 'X'])
        .ok_or_else(|| CliError::usage(format!("expected `--mesh <RxC>`, got `{spec}`")))?;
    let rows: u16 =
        r.parse().map_err(|_| CliError::usage(format!("bad mesh rows `{r}`")))?;
    let cols: u16 =
        c.parse().map_err(|_| CliError::usage(format!("bad mesh cols `{c}`")))?;
    Mesh::new(rows, cols).map_err(|e| CliError::usage(e.to_string()))
}

/// Resolves a `--board` argument: a path ending in `.json` is read as a
/// board JSON file; anything else is a [`Board::parse`] spec (a Table 1
/// preset name or `GxH/RxC[@NPC,SPC]`).
fn load_board(o: &Opts) -> Result<Option<Board>, CliError> {
    let Some(spec) = o.flag("board") else {
        return Ok(None);
    };
    let board = if spec.ends_with(".json") {
        read_board(Path::new(spec))?
    } else {
        Board::parse(spec).map_err(|e| CliError::usage(e.to_string()))?
    };
    Ok(Some(board))
}

/// Resolves a `--faults` argument: a number in `[0, 1)` is a uniform
/// core+link fault rate fed to a seeded [`FaultInjector`];
/// `chip:<id,...>` kills whole chips of the `--board` topology; anything
/// else is a fault-map JSON file path.
fn load_faults(
    o: &Opts,
    mesh: Mesh,
    seed: u64,
    board: Option<&Board>,
) -> Result<Option<FaultMap>, CliError> {
    let Some(spec) = o.flag("faults") else {
        return Ok(None);
    };
    if let Some(ids) = spec.strip_prefix("chip:") {
        let board = board.ok_or_else(|| {
            CliError::usage("`--faults chip:<id,...>` requires `--board`")
        })?;
        let mut fm = FaultMap::new(board.mesh());
        for part in ids.split(',') {
            let id: ChipId = part.trim().parse().map_err(|_| {
                CliError::usage(format!("bad chip id `{part}` in `--faults {spec}`"))
            })?;
            fm.kill_chip(board, id).map_err(|e| CliError::usage(e.to_string()))?;
        }
        return Ok(Some(fm));
    }
    let fm = match spec.parse::<f64>() {
        Ok(rate) => {
            let pattern = FaultPattern::Uniform { core_rate: rate, link_rate: rate };
            FaultInjector::new(seed)
                .inject(mesh, &pattern)
                .map_err(|e| CliError::usage(e.to_string()))?
        }
        Err(_) => read_faults(Path::new(spec))?,
    };
    Ok(Some(fm))
}

/// Simulated cycles per NoC run (sim-in-the-loop reweighting and the
/// `eval` NoC columns): long enough that per-router Bernoulli noise
/// stays small, short enough to be a rounding error next to FD itself.
const NOC_EVAL_CYCLES: u64 = 256;

/// Injection scale for the seeded NoC runs: the hottest PCN connection
/// injects with probability 1/4 per cycle, so [`PcnTraffic`]'s `min(1, ·)`
/// clamp never engages and traversal counts stay proportional to edge
/// weights.
fn noc_scale(pcn: &Pcn) -> f64 {
    let mut wmax = 0.0f64;
    for c in 0..pcn.num_clusters() {
        for (_, w) in pcn.out_edges(c) {
            wmax = wmax.max(w as f64);
        }
    }
    if wmax > 0.0 {
        0.25 / wmax
    } else {
        0.0
    }
}

/// Parses the `--objective` / `--lambda-congestion` / `--lambda-latency`
/// flag family into an [`Objective`], rejecting λ knobs the chosen
/// objective ignores (a silently dropped weight would be worse than an
/// error).
fn parse_objective(o: &Opts) -> Result<Objective, CliError> {
    let label = o.flag("objective").unwrap_or("energy");
    if label == "energy" {
        for flag in ["lambda-congestion", "lambda-latency"] {
            if o.flag(flag).is_some() {
                return Err(CliError::usage(format!(
                    "`--{flag}` has no effect with `--objective energy`"
                )));
            }
        }
    }
    if label == "congestion" && o.flag("lambda-latency").is_some() {
        return Err(CliError::usage(
            "`--lambda-latency` has no effect with `--objective congestion`; \
             use `--objective composite`",
        ));
    }
    let lambda_c: f64 = o.parsed_or("lambda-congestion", 1.0)?;
    let lambda_t: f64 = o.parsed_or("lambda-latency", 0.0)?;
    let objective = Objective::from_parts(label, lambda_c, lambda_t).ok_or_else(|| {
        CliError::usage(format!(
            "unknown objective `{label}` (energy, congestion, or composite)"
        ))
    })?;
    objective.validate().map_err(|e| CliError::usage(e.to_string()))?;
    Ok(objective)
}

/// Provenance digests for a proposed-method run: the PCN and every
/// configuration knob that shapes the FD trajectory (budgets and thread
/// counts are deliberately excluded — the trajectory is invariant to
/// them, and resuming under a *different* budget is the whole point).
#[allow(clippy::too_many_arguments)]
fn proposed_digests(
    pcn: &Pcn,
    init: &str,
    potential: &str,
    lambda: f64,
    seed: u64,
    faults: Option<&FaultMap>,
    multilevel: bool,
    board: Option<&Board>,
    objective: Objective,
    reweight_every: Option<u64>,
) -> CheckpointMeta {
    let faults_digest = match faults {
        Some(fm) => sha256_hex(render_faults(fm).as_bytes()),
        None => "none".to_string(),
    };
    let ml = if multilevel { "on" } else { "off" };
    // Boardless digests keep their historical value; a board-constrained
    // run appends its topology digest so a board/no-board resume mismatch
    // is refused.
    let board_digest = match board {
        Some(b) => format!(" board={}", sha256_hex(render_board(b).as_bytes())),
        None => String::new(),
    };
    // Same append-only discipline for the objective family: the default
    // (pure energy, no reweighting) contributes nothing, so historical
    // checkpoints keep verifying.
    let objective_part = if objective.is_energy() && reweight_every.is_none() {
        String::new()
    } else {
        let (_, lc, lt) = objective.weights();
        let rw = match reweight_every {
            Some(k) => format!(" reweight={k}"),
            None => String::new(),
        };
        format!(" objective={} lc={lc} lt={lt}{rw}", objective.label())
    };
    let config = format!(
        "init={init} potential={potential} lambda={lambda} seed={seed} \
         faults={faults_digest} multilevel={ml}{board_digest}{objective_part}"
    );
    CheckpointMeta {
        config_digest: sha256_hex(config.as_bytes()),
        pcn_digest: sha256_hex(render_pcn(pcn).as_bytes()),
    }
}

/// Runs a mapping closure against a JSONL sink when `--trace-out` was
/// given, or a [`NoopSink`] otherwise, surfacing latched write errors.
fn with_sink<F>(trace_out: Option<&str>, timing: bool, f: F) -> Result<MapOutcome, CliError>
where
    F: FnOnce(&mut dyn TraceSink) -> Result<MapOutcome, CoreError>,
{
    match trace_out {
        Some(path) => {
            let file = std::fs::File::create(path)
                .map_err(|e| CliError::Io(snnmap_io::IoError::Io(e)))?;
            let mut sink =
                JsonlSink::new(std::io::BufWriter::new(file)).with_timing(timing);
            let outcome = f(&mut sink)?;
            // `finish` surfaces the first latched write error and flushes
            // the BufWriter through to the file.
            sink.finish().map_err(|e| CliError::Io(snnmap_io::IoError::Io(e)))?;
            Ok(outcome)
        }
        None => Ok(f(&mut NoopSink)?),
    }
}

/// The flags shared by `map --method proposed` and `resume` that shape
/// the run: stop budgets and checkpointing.
const RESILIENCE_FLAGS: [&str; 4] =
    ["deadline-ms", "max-sweeps", "checkpoint-every", "checkpoint-out"];

/// The objective family of `map --method proposed` (and, minus
/// `--sim-in-loop`, of `resume`).
const OBJECTIVE_FLAGS: [&str; 4] =
    ["objective", "lambda-congestion", "lambda-latency", "sim-in-loop"];

/// Assembles [`FdRunOpts`] from the resilience flags. The returned
/// writer closure (if any) must stay alive while `opts` is used, so the
/// caller keeps both.
struct ResilienceOpts {
    deadline_ms: u64,
    max_sweeps: u64,
    checkpoint_every: u64,
    checkpoint_out: Option<String>,
}

impl ResilienceOpts {
    fn parse(o: &Opts) -> Result<Self, CliError> {
        let r = ResilienceOpts {
            deadline_ms: o.parsed_or("deadline-ms", 0)?,
            max_sweeps: o.parsed_or("max-sweeps", 0)?,
            checkpoint_every: o.parsed_or("checkpoint-every", 0)?,
            checkpoint_out: o.flag("checkpoint-out").map(str::to_owned),
        };
        if r.checkpoint_every > 0 && r.checkpoint_out.is_none() {
            return Err(CliError::usage("`--checkpoint-every` requires `--checkpoint-out`"));
        }
        Ok(r)
    }

    /// A checkpoint-writer closure bound to `--checkpoint-out` and the
    /// run's provenance digests.
    fn writer(
        &self,
        meta: &CheckpointMeta,
    ) -> Option<impl FnMut(&FdCheckpoint) -> Result<(), String>> {
        let path = std::path::PathBuf::from(self.checkpoint_out.as_ref()?);
        let meta = meta.clone();
        Some(move |cp: &FdCheckpoint| {
            write_checkpoint(&path, cp, &meta).map_err(|e| e.to_string())
        })
    }

    fn apply<'h>(
        &self,
        opts: &mut FdRunOpts<'h>,
        writer: Option<&'h mut CheckpointWriter<'h>>,
    ) {
        if self.deadline_ms > 0 {
            opts.budget.deadline = Some(Duration::from_millis(self.deadline_ms));
        }
        if self.max_sweeps > 0 {
            opts.budget.max_sweeps = Some(self.max_sweeps);
        }
        if self.checkpoint_every > 0 {
            opts.checkpoint_every = Some(self.checkpoint_every);
        }
        opts.on_checkpoint = writer;
    }
}

/// `snnmap map`: place a PCN onto a mesh.
pub fn map(args: &[String]) -> Result<String, CliError> {
    let o = Opts::parse(
        args,
        &[
            "out",
            "method",
            "mesh",
            "board",
            "init",
            "potential",
            "lambda",
            "budget-secs",
            "seed",
            "faults",
            "faults-out",
            "threads",
            "multilevel",
            "objective",
            "lambda-congestion",
            "lambda-latency",
            "sim-in-loop",
            "trace-out",
            "trace-timing",
            "deadline-ms",
            "max-sweeps",
            "checkpoint-every",
            "checkpoint-out",
        ],
    )?;
    let pcn = read_pcn_auto(Path::new(o.positional(0, "file.pcn")?))?;
    let out = Path::new(o.required("out")?);
    let seed: u64 = o.parsed_or("seed", 42)?;
    let board = load_board(&o)?;
    let mesh = match (o.flag("mesh"), &board) {
        (Some(spec), Some(b)) => {
            let mesh = parse_mesh(spec)?;
            if mesh != b.mesh() {
                return Err(CliError::usage(format!(
                    "`--mesh {mesh}` disagrees with the board's {} mesh; \
                     omit `--mesh` to derive it from `--board`",
                    b.mesh()
                )));
            }
            mesh
        }
        (Some(spec), None) => parse_mesh(spec)?,
        (None, Some(b)) => b.mesh(),
        (None, None) => Mesh::square_for(pcn.num_clusters() as u64)
            .map_err(|e| CliError::usage(e.to_string()))?,
    };
    let budget_secs: u64 = o.parsed_or("budget-secs", 0)?;
    let budget = (budget_secs > 0).then(|| Duration::from_secs(budget_secs));
    let faults = load_faults(&o, mesh, seed, board.as_ref())?;
    if let Some(path) = o.flag("faults-out") {
        match &faults {
            Some(fm) => write_faults(Path::new(path), fm)?,
            None => return Err(CliError::usage("`--faults-out` requires `--faults`")),
        }
    }

    // `--trace-out` wins over the `SNNMAP_TRACE` env fallback, which lets
    // wrappers/CI turn tracing on without editing the command line.
    let trace_out = o
        .flag("trace-out")
        .map(str::to_owned)
        .or_else(|| std::env::var("SNNMAP_TRACE").ok().filter(|v| !v.is_empty()));
    let trace_timing = match o.flag("trace-timing").unwrap_or("on") {
        "on" => true,
        "off" => false,
        other => {
            return Err(CliError::usage(format!(
                "`--trace-timing` takes `on` or `off`, got `{other}`"
            )))
        }
    };

    let multilevel = match o.flag("multilevel").unwrap_or("off") {
        "on" => true,
        "off" => false,
        other => {
            return Err(CliError::usage(format!(
                "`--multilevel` takes `on` or `off`, got `{other}`"
            )))
        }
    };

    let method = o.flag("method").unwrap_or("proposed");
    if faults.is_some() && method != "proposed" {
        return Err(CliError::usage(format!(
            "`--faults` is only supported with `--method proposed`, not `{method}`"
        )));
    }
    if multilevel && method != "proposed" {
        return Err(CliError::usage(format!(
            "`--multilevel` is only supported with `--method proposed`, not `{method}`"
        )));
    }
    if board.is_some() && method != "proposed" {
        return Err(CliError::usage(format!(
            "`--board` is only supported with `--method proposed`, not `{method}`"
        )));
    }
    if trace_out.is_some() && method != "proposed" {
        return Err(CliError::usage(format!(
            "`--trace-out` is only supported with `--method proposed`, not `{method}`"
        )));
    }
    if method != "proposed" {
        for flag in RESILIENCE_FLAGS {
            if o.flag(flag).is_some() {
                return Err(CliError::usage(format!(
                    "`--{flag}` is only supported with `--method proposed`, not `{method}`"
                )));
            }
        }
        for flag in OBJECTIVE_FLAGS {
            if o.flag(flag).is_some() {
                return Err(CliError::usage(format!(
                    "`--{flag}` is only supported with `--method proposed`, not `{method}`"
                )));
            }
        }
    }
    let (placement, detail) = match method {
        "proposed" => {
            let init_name = o.flag("init").unwrap_or("hilbert");
            let init = match init_name {
                "hilbert" => InitialPlacement::Hilbert,
                "zigzag" => InitialPlacement::ZigZag,
                "circle" => InitialPlacement::Circle,
                "serpentine" => InitialPlacement::Serpentine,
                "random" => InitialPlacement::Random(seed),
                other => return Err(CliError::usage(format!("unknown init `{other}`"))),
            };
            let potential_name = o.flag("potential").unwrap_or("l2sq");
            let potential = match potential_name {
                "l1" => Potential::L1,
                "l1sq" => Potential::L1Squared,
                "l2sq" => Potential::L2Squared,
                "energy" => Potential::energy_model(CostModel::paper_target()),
                other => return Err(CliError::usage(format!("unknown potential `{other}`"))),
            };
            let lambda: f64 = o.parsed_or("lambda", 0.3)?;
            if !(lambda > 0.0 && lambda <= 1.0) {
                return Err(CliError::usage("lambda must be in (0, 1]"));
            }
            let objective = parse_objective(&o)?;
            let sim_in_loop: u64 = o.parsed_or("sim-in-loop", 0)?;
            if sim_in_loop > 0 && objective.is_energy() {
                return Err(CliError::usage(
                    "`--sim-in-loop` requires `--objective congestion` or `composite`",
                ));
            }
            // Absent = auto (SNNMAP_THREADS, else available parallelism);
            // the placement is bit-identical for every thread count.
            let threads = parse_threads_flag(&o)?;
            let mut builder = Mapper::builder()
                .initial_placement(init)
                .potential(potential)
                .lambda(lambda)
                .threads(threads);
            if !objective.is_energy() {
                builder = builder.objective(objective);
            }
            if sim_in_loop > 0 {
                builder = builder.reweight_every(sim_in_loop);
            }
            if multilevel {
                builder = builder.multilevel(MultilevelConfig::default());
            }
            if let Some(b) = budget {
                builder = builder.time_budget(b);
            }
            if let Some(fm) = faults.clone() {
                builder = builder.fault_map(fm);
            }
            if let Some(b) = board.clone() {
                builder = builder.board(b);
            }
            let mapper = builder.build();
            let resilience = ResilienceOpts::parse(&o)?;
            let meta = proposed_digests(
                &pcn,
                init_name,
                potential_name,
                lambda,
                seed,
                faults.as_ref(),
                multilevel,
                board.as_ref(),
                objective,
                (sim_in_loop > 0).then_some(sim_in_loop),
            );
            let mut writer = resilience.writer(&meta);
            // Sim-in-the-loop: a seeded NocSim replays the PCN's traffic
            // over the evolving placement every `sim_in_loop` sweeps and
            // hands per-router heat back to the congestion term.
            let mut sim_hook = (sim_in_loop > 0)
                .then(|| NocReweighter::new(&pcn, noc_scale(&pcn), NOC_EVAL_CYCLES, seed));
            let mut run_opts = FdRunOpts::default();
            resilience.apply(
                &mut run_opts,
                writer
                    .as_mut()
                    .map(|w| w as &mut dyn FnMut(&FdCheckpoint) -> Result<(), String>),
            );
            if let Some(hook) = sim_hook.as_mut() {
                run_opts.reweighter = Some(hook);
            }
            // Ctrl-C / SIGTERM stops the FD engine at the next sweep
            // boundary instead of killing the process mid-write; the
            // engine flushes a checkpoint first when one is configured.
            run_opts.budget.cancel = Some(signal::install());
            let outcome = with_sink(trace_out.as_deref(), trace_timing, |sink| {
                mapper.map_budgeted_traced(&pcn, mesh, &mut run_opts, sink)
            })?;
            if was_cancelled(&outcome) {
                return Err(interrupted_exit(
                    out,
                    &outcome,
                    resilience.checkpoint_out.as_deref(),
                ));
            }
            let mut detail = fd_detail(&outcome, resilience.checkpoint_out.as_deref());
            if !objective.is_energy() {
                let (_, lc, lt) = objective.weights();
                let _ = write!(detail, "\nobjective: {} (lc={lc}, lt={lt})", objective.label());
                if sim_in_loop > 0 {
                    let _ = write!(detail, ", NoC reweight every {sim_in_loop} sweep(s)");
                }
            }
            (outcome.placement, detail)
        }
        baseline => {
            let mapper: Box<dyn BaselineMapper> = match baseline {
                "random" => Box::new(RandomMapper::new(seed)),
                "truenorth" => Box::new(TrueNorthMapper::new()),
                "dfsynthesizer" => Box::new(DfSynthesizerMapper::new(seed)),
                "pso" => Box::new(PsoMapper::new(seed)),
                other => return Err(CliError::usage(format!("unknown method `{other}`"))),
            };
            let b = match budget {
                Some(d) => Budget::limited(d),
                None => Budget::unlimited(),
            };
            let outcome = mapper.map(&pcn, mesh, b)?;
            let detail = format!(
                "{}: {} iterations{}",
                mapper.name(),
                outcome.iterations,
                if outcome.early_stopped { " (early stop)" } else { "" }
            );
            (outcome.placement, detail)
        }
    };

    write_placement(out, &placement)?;
    let board_note = match &board {
        Some(b) => format!(" [{b}]"),
        None => String::new(),
    };
    let fault_note = match &faults {
        Some(fm) => format!(
            " avoiding {} dead core(s), {} faulty link(s)",
            fm.num_dead_cores(),
            fm.num_faulty_links()
        ),
        None => String::new(),
    };
    let trace_note = match &trace_out {
        Some(path) => format!("\ntrace -> {path}"),
        None => String::new(),
    };
    Ok(format!(
        "placed {} clusters on {mesh}{board_note}{fault_note} -> {}\n{detail}{trace_note}\n",
        placement.placed_count(),
        out.display()
    ))
}

/// The FD summary line shared by `map` and `resume`, plus a note when a
/// checkpoint file was actually flushed.
fn fd_detail(outcome: &MapOutcome, checkpoint_out: Option<&str>) -> String {
    let mut detail = match &outcome.fd_stats {
        Some(s) => format!(
            "FD: {} iterations, {} swaps, energy {:.4e} -> {:.4e}{}",
            s.iterations,
            s.swaps,
            s.initial_energy,
            s.final_energy,
            if s.converged {
                String::new()
            } else {
                format!(" (stopped: {})", s.stop.as_str())
            }
        ),
        None => "no FD".to_string(),
    };
    if let Some(path) = checkpoint_out {
        // The engine only flushes on a budgeted stop or a periodic
        // interval, so the file may legitimately not exist (converged
        // runs need no checkpoint).
        if Path::new(path).exists() {
            let _ = write!(detail, "\ncheckpoint -> {path}");
        }
    }
    detail
}

/// Whether the run stopped because the SIGINT/SIGTERM flag rose.
fn was_cancelled(outcome: &MapOutcome) -> bool {
    outcome.fd_stats.as_ref().is_some_and(|s| s.stop == StopReason::Cancelled)
}

/// Best-effort persistence on an interrupt: the best-so-far placement
/// (never worse than the initial one) still lands on disk, the engine
/// already flushed a checkpoint if one was configured, and the run
/// surfaces as [`CliError::Interrupted`] (exit code 130).
fn interrupted_exit(
    out: &Path,
    outcome: &MapOutcome,
    checkpoint_out: Option<&str>,
) -> CliError {
    let mut detail = match write_placement(out, &outcome.placement) {
        Ok(()) => format!("interrupted: best-so-far placement -> {}", out.display()),
        Err(e) => format!("interrupted: writing best-so-far placement failed: {e}"),
    };
    if let Some(path) = checkpoint_out {
        if Path::new(path).exists() {
            let _ = write!(detail, "\ncheckpoint -> {path} (continue with `snnmap resume`)");
        }
    }
    CliError::Interrupted(detail)
}

/// `snnmap serve`: run the mapping daemon until SIGINT/SIGTERM, then
/// drain gracefully. Queued and interrupted jobs stay in the spool;
/// restarting with the same `--spool-dir` resumes them.
pub fn serve(args: &[String]) -> Result<String, CliError> {
    let o = Opts::parse(
        args,
        &[
            "addr",
            "workers",
            "spool-dir",
            "queue-capacity",
            "lease-ttl-ms",
            "daemon-id",
            "io-timeout-ms",
        ],
    )?;
    let mut config = ServeConfig::default();
    if let Some(addr) = o.flag("addr") {
        config.addr = addr.to_string();
    }
    config.workers = o.parsed_or("workers", 0)?;
    if let Some(dir) = o.flag("spool-dir") {
        config.spool_dir = std::path::PathBuf::from(dir);
    }
    config.queue_capacity = o.parsed_or("queue-capacity", config.queue_capacity)?;
    if config.queue_capacity == 0 {
        return Err(CliError::usage("`--queue-capacity` must be positive"));
    }
    let lease_ttl_ms: u64 = o.parsed_or("lease-ttl-ms", config.lease_ttl.as_millis() as u64)?;
    if lease_ttl_ms == 0 {
        return Err(CliError::usage("`--lease-ttl-ms` must be positive"));
    }
    config.lease_ttl = Duration::from_millis(lease_ttl_ms);
    config.daemon_id = o.flag("daemon-id").map(str::to_string);
    let io_timeout_ms: u64 = o.parsed_or("io-timeout-ms", config.io_timeout.as_millis() as u64)?;
    if io_timeout_ms == 0 {
        return Err(CliError::usage("`--io-timeout-ms` must be positive"));
    }
    config.io_timeout = Duration::from_millis(io_timeout_ms);
    let server = Server::bind(&config)?;
    let addr =
        server.local_addr().map(|a| a.to_string()).unwrap_or_else(|_| config.addr.clone());
    let shutdown = signal::install();
    // Announce readiness on stderr before blocking, so scripts can wait
    // for the listener without racing the bind.
    eprintln!(
        "snnmap-serve listening on {addr} ({} worker(s), spool {})",
        server.workers(),
        config.spool_dir.display()
    );
    if let Some((seed, spec)) = snnmap_chaos::active_spec() {
        eprintln!("snnmap-serve chaos armed: seed {seed}, schedule `{spec}`");
    }
    let report = server.run(&shutdown);
    signal::reset();
    Ok(format!(
        "drained: {} job(s) over the daemon's lifetime, {} interrupted mid-run \
         (checkpointed), {} left queued\nspool -> {} (restart with the same --spool-dir \
         to resume)\n",
        report.jobs_total,
        report.interrupted,
        report.queued_left,
        config.spool_dir.display()
    ))
}

/// `snnmap resume`: continue a Force-Directed run from a checkpoint
/// written by `map --checkpoint-out`. The mapper configuration flags must
/// match the original run — the checkpoint's provenance digests are
/// verified before any work happens — while budgets may differ freely
/// (resuming under a new budget is the point). The resumed run is
/// bit-identical to the uninterrupted one.
pub fn resume(args: &[String]) -> Result<String, CliError> {
    let o = Opts::parse(
        args,
        &[
            "checkpoint",
            "out",
            "init",
            "potential",
            "lambda",
            "seed",
            "threads",
            "faults",
            "multilevel",
            "objective",
            "lambda-congestion",
            "lambda-latency",
            "trace-out",
            "trace-timing",
            "deadline-ms",
            "max-sweeps",
            "checkpoint-every",
            "checkpoint-out",
        ],
    )?;
    let pcn = read_pcn_auto(Path::new(o.positional(0, "file.pcn")?))?;
    let (checkpoint, on_disk) = read_checkpoint(Path::new(o.required("checkpoint")?))?;
    let out = Path::new(o.required("out")?);
    let seed: u64 = o.parsed_or("seed", 42)?;
    // Board-constrained runs are not resumable yet; their checkpoints
    // carry a board digest no boardless config can reproduce, so the
    // provenance check below refuses them with a typed usage error.
    let faults = load_faults(&o, checkpoint.mesh, seed, None)?;

    let init_name = o.flag("init").unwrap_or("hilbert");
    if !["hilbert", "zigzag", "circle", "serpentine", "random"].contains(&init_name) {
        return Err(CliError::usage(format!("unknown init `{init_name}`")));
    }
    let potential_name = o.flag("potential").unwrap_or("l2sq");
    let potential = match potential_name {
        "l1" => Potential::L1,
        "l1sq" => Potential::L1Squared,
        "l2sq" => Potential::L2Squared,
        "energy" => Potential::energy_model(CostModel::paper_target()),
        other => return Err(CliError::usage(format!("unknown potential `{other}`"))),
    };
    let lambda: f64 = o.parsed_or("lambda", 0.3)?;
    if !(lambda > 0.0 && lambda <= 1.0) {
        return Err(CliError::usage("lambda must be in (0, 1]"));
    }
    let threads = parse_threads_flag(&o)?;
    // Checkpoints only ever freeze finest-level FD state, so resuming a
    // `--multilevel on` run is plain FD from the snapshot — the flag here
    // exists purely to reproduce the original run's config digest.
    let multilevel = match o.flag("multilevel").unwrap_or("off") {
        "on" => true,
        "off" => false,
        other => {
            return Err(CliError::usage(format!(
                "`--multilevel` takes `on` or `off`, got `{other}`"
            )))
        }
    };

    // Sim-in-the-loop runs are never checkpointed (the heat-derived
    // weight field is not part of FdCheckpoint), so resume only needs the
    // static objective knobs to reproduce the original digest.
    let objective = parse_objective(&o)?;
    let meta = proposed_digests(
        &pcn,
        init_name,
        potential_name,
        lambda,
        seed,
        faults.as_ref(),
        multilevel,
        None,
        objective,
        None,
    );
    if meta.pcn_digest != on_disk.pcn_digest {
        return Err(CliError::usage(
            "checkpoint was taken from a different PCN (digest mismatch); \
             resume with the original input file",
        ));
    }
    if meta.config_digest != on_disk.config_digest {
        return Err(CliError::usage(
            "checkpoint was taken under a different configuration (digest \
             mismatch); pass the original --init/--potential/--lambda/--seed/\
             --faults/--multilevel/--objective/--lambda-congestion/\
             --lambda-latency values (`--sim-in-loop` runs are never \
             checkpointed)",
        ));
    }

    let trace_out = o
        .flag("trace-out")
        .map(str::to_owned)
        .or_else(|| std::env::var("SNNMAP_TRACE").ok().filter(|v| !v.is_empty()));
    let trace_timing = match o.flag("trace-timing").unwrap_or("on") {
        "on" => true,
        "off" => false,
        other => {
            return Err(CliError::usage(format!(
                "`--trace-timing` takes `on` or `off`, got `{other}`"
            )))
        }
    };

    let mut builder = Mapper::builder().potential(potential).lambda(lambda).threads(threads);
    if !objective.is_energy() {
        builder = builder.objective(objective);
    }
    if let Some(fm) = faults.clone() {
        builder = builder.fault_map(fm);
    }
    let mapper = builder.build();
    let resilience = ResilienceOpts::parse(&o)?;
    let mut writer = resilience.writer(&meta);
    let mut run_opts = FdRunOpts::default();
    resilience.apply(
        &mut run_opts,
        writer.as_mut().map(|w| w as &mut dyn FnMut(&FdCheckpoint) -> Result<(), String>),
    );
    run_opts.budget.cancel = Some(signal::install());
    let restored_sweeps = checkpoint.sweeps;
    let outcome = with_sink(trace_out.as_deref(), trace_timing, |sink| {
        mapper.resume_traced(&pcn, &checkpoint, &mut run_opts, sink)
    })?;
    if was_cancelled(&outcome) {
        return Err(interrupted_exit(out, &outcome, resilience.checkpoint_out.as_deref()));
    }
    let detail = fd_detail(&outcome, resilience.checkpoint_out.as_deref());
    write_placement(out, &outcome.placement)?;
    let trace_note = match &trace_out {
        Some(path) => format!("\ntrace -> {path}"),
        None => String::new(),
    };
    Ok(format!(
        "resumed at sweep {restored_sweeps}: placed {} clusters on {} -> {}\n{detail}{trace_note}\n",
        outcome.placement.placed_count(),
        outcome.placement.mesh(),
        out.display()
    ))
}

/// `snnmap validate`: check a placement against a fault map and per-core
/// capacity constraints. Violations become [`CliError::Validation`]
/// (process exit code 3).
pub fn validate(args: &[String]) -> Result<String, CliError> {
    let o = Opts::parse(args, &["faults", "seed", "npc", "spc", "board"])?;
    let (pcn, placement) = load_pair(&o)?;
    let seed: u64 = o.parsed_or("seed", 42)?;
    let board = load_board(&o)?;
    let faults = load_faults(&o, placement.mesh(), seed, board.as_ref())?;
    let (report, checked) = match &board {
        Some(b) => {
            // The board carries every core's capacity, so the flat limits
            // would silently contradict it.
            if o.flag("npc").is_some() || o.flag("spc").is_some() {
                return Err(CliError::usage(
                    "`--npc`/`--spc` conflict with `--board`; the board defines \
                     per-core capacities",
                ));
            }
            let report = snnmap_core::validate_board(&pcn, &placement, faults.as_ref(), b)?;
            (report, format!("{b}"))
        }
        None => {
            let defaults = CoreConstraints::default();
            let npc: u32 = o.parsed_or("npc", defaults.neurons_per_core)?;
            let spc: u64 = o.parsed_or("spc", defaults.synapses_per_core)?;
            let con =
                CoreConstraints::new(npc, spc).map_err(|e| CliError::usage(e.to_string()))?;
            let report = snnmap_core::validate(&pcn, &placement, faults.as_ref(), Some(&con))?;
            (report, format!("{} within {con}", placement.mesh()))
        }
    };
    if !report.is_ok() {
        return Err(CliError::Validation(report));
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "placement valid: {} clusters on {checked}",
        placement.placed_count()
    );
    if let Some(fm) = &faults {
        let _ = writeln!(
            out,
            "checked against {} dead core(s), {} faulty link(s)",
            fm.num_dead_cores(),
            fm.num_faulty_links()
        );
    }
    Ok(out)
}

fn load_pair(o: &Opts) -> Result<(Pcn, Placement), CliError> {
    if o.num_positional() > 2 {
        return Err(CliError::usage("expected exactly <file.pcn> <placement.json>"));
    }
    let pcn = read_pcn_auto(Path::new(o.positional(0, "file.pcn")?))?;
    let placement = read_placement(Path::new(o.positional(1, "placement.json")?))?;
    Ok((pcn, placement))
}

/// One `eval` NoC simulation: seeded traffic replay over the placement,
/// summarized into the columns the human and Prometheus outputs share.
struct NocEval {
    cycles: u64,
    max_latency: u64,
    avg_latency: f64,
    detour_hops: u64,
    hottest: (usize, usize),
    hottest_traversals: u64,
    /// Simulated `M_ac` / `M_mc` in analytic congestion-map units
    /// ([`snnmap_noc::NocStats::congestion_map`]); zero when the PCN has
    /// no traffic to drive the adapter.
    sim_avg_congestion: f64,
    sim_max_congestion: f64,
}

/// Replays the PCN's spike traffic over `placement` for `cycles` cycles
/// on a seeded, fault-free simulator using the random-minimal routing
/// whose expectation matches the analytic congestion model.
fn simulate_noc(pcn: &Pcn, placement: &Placement, cycles: u64, seed: u64) -> NocEval {
    let scale = noc_scale(pcn);
    let mesh = placement.mesh();
    let mut traffic = PcnTraffic::new(pcn, placement, scale, seed);
    let config = NocConfig {
        routing: snnmap_noc::Routing::RandomMinimal,
        seed,
        ..NocConfig::default()
    };
    let mut sim = NocSim::new(mesh, config);
    traffic.run(&mut sim, cycles);
    let stats = sim.stats();
    let (arg, &hot) = stats
        .traversals
        .iter()
        .enumerate()
        .max_by_key(|&(i, &t)| (t, std::cmp::Reverse(i)))
        .unwrap_or((0, &0));
    let cols = mesh.cols() as usize;
    let (sim_avg, sim_max) = if scale > 0.0 && cycles > 0 {
        let adapted = stats.congestion_map(scale, cycles);
        let avg = adapted.iter().sum::<f64>() / adapted.len().max(1) as f64;
        (avg, adapted.iter().copied().fold(0.0, f64::max))
    } else {
        (0.0, 0.0)
    };
    NocEval {
        cycles,
        max_latency: stats.max_latency,
        avg_latency: stats.average_latency(),
        detour_hops: stats.detour_hops,
        hottest: (arg / cols, arg % cols),
        hottest_traversals: hot,
        sim_avg_congestion: sim_avg,
        sim_max_congestion: sim_max,
    }
}

/// The NoC gauge page appended to `eval --format prometheus` (the
/// analytic gauges come from [`MetricsReport::to_prometheus`]; the
/// simulated ones live here because `snnmap-metrics` cannot depend on
/// the simulator).
fn noc_prometheus(noc: &NocEval) -> String {
    let mut prom = snnmap_metrics::PromText::new();
    for (name, help, value) in [
        ("noc_cycles", "Simulated NoC cycles behind the noc_* gauges.", noc.cycles as f64),
        (
            "noc_max_latency",
            "Largest simulated spike latency, in cycles (one per router traversal).",
            noc.max_latency as f64,
        ),
        ("noc_avg_latency", "Mean simulated spike latency, in cycles.", noc.avg_latency),
        (
            "noc_detour_hops",
            "Simulated hops beyond the fault-free Manhattan minimum.",
            noc.detour_hops as f64,
        ),
        (
            "noc_hottest_traversals",
            "Traversal count of the hottest simulated router.",
            noc.hottest_traversals as f64,
        ),
        ("noc_hottest_row", "Row of the hottest simulated router.", noc.hottest.0 as f64),
        ("noc_hottest_col", "Column of the hottest simulated router.", noc.hottest.1 as f64),
        (
            "noc_sim_avg_congestion",
            "Simulated M_ac in analytic congestion-map units.",
            noc.sim_avg_congestion,
        ),
        (
            "noc_sim_max_congestion",
            "Simulated M_mc in analytic congestion-map units.",
            noc.sim_max_congestion,
        ),
    ] {
        prom.header(name, "gauge", help);
        prom.sample(name, &[], value);
    }
    prom.finish()
}

/// `snnmap eval`: compute the §3.3 metrics of a placement, plus
/// simulated NoC columns from a seeded traffic replay (`--noc-cycles 0`
/// keeps evaluation purely analytic).
pub fn eval(args: &[String]) -> Result<String, CliError> {
    let o = Opts::parse(args, &["sample", "seed", "format", "noc-cycles"])?;
    let (pcn, placement) = load_pair(&o)?;
    let sample: u64 = o.parsed_or("sample", 200_000)?;
    let seed: u64 = o.parsed_or("seed", 42)?;
    let noc_cycles: u64 = o.parsed_or("noc-cycles", NOC_EVAL_CYCLES)?;
    let report = evaluate_with(
        &pcn,
        &placement,
        CostModel::paper_target(),
        EvalOptions { congestion_sample: Some((sample, seed)) },
    )?;
    let noc = (noc_cycles > 0).then(|| simulate_noc(&pcn, &placement, noc_cycles, seed));
    match o.flag("format").unwrap_or("text") {
        "text" => {}
        // The same encoder the serve daemon's /metrics endpoint uses, so
        // offline evaluation drops straight into a Prometheus scrape.
        "prometheus" => {
            let mut page = report.to_prometheus();
            if let Some(n) = &noc {
                page.push_str(&noc_prometheus(n));
            }
            return Ok(page);
        }
        other => {
            return Err(CliError::usage(format!(
                "`--format` takes `text` or `prometheus`, got `{other}`"
            )))
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "energy (M_ec):           {:.6e}", report.energy);
    let _ = writeln!(out, "avg latency (M_al):      {:.4}", report.avg_latency);
    let _ = writeln!(out, "max latency (M_ml):      {:.4}", report.max_latency);
    let _ = writeln!(out, "avg congestion (M_ac):   {:.4e}", report.avg_congestion);
    let _ = writeln!(out, "max congestion (M_mc):   {:.4e}", report.max_congestion);
    if report.congestion_coverage < 1.0 {
        let _ = writeln!(
            out,
            "congestion coverage:     {:.1}% of traffic sampled",
            report.congestion_coverage * 100.0
        );
    }
    if report.max_congestion_is_lower_bound {
        let _ = writeln!(
            out,
            "                         (sampled: M_mc above is a lower bound)"
        );
    }
    if let Some(n) = &noc {
        let _ = writeln!(
            out,
            "NoC sim ({} cycles):     max latency {} cycles, avg {:.2}, detours {} hop(s)",
            n.cycles, n.max_latency, n.avg_latency, n.detour_hops
        );
        let _ = writeln!(
            out,
            "NoC hottest router:      ({}, {}) with {} traversals \
             (sim M_ac {:.4e}, M_mc {:.4e})",
            n.hottest.0,
            n.hottest.1,
            n.hottest_traversals,
            n.sim_avg_congestion,
            n.sim_max_congestion
        );
    }
    // Traffic-by-hop-distance distribution, as cumulative percentiles.
    let hist = hop_histogram(&pcn, &placement)?;
    let total: f64 = hist.iter().sum();
    if total > 0.0 {
        let mut acc = 0.0;
        let mut marks = vec![];
        for (d, w) in hist.iter().enumerate() {
            acc += w;
            for pct in [50.0, 90.0, 99.0] {
                if acc >= total * pct / 100.0 && !marks.iter().any(|&(p, _)| p == pct as u32) {
                    marks.push((pct as u32, d));
                }
            }
        }
        let _ = writeln!(
            out,
            "traffic within hops:     {}",
            marks
                .iter()
                .map(|(p, d)| format!("p{p} <= {d}"))
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
    Ok(out)
}

/// `snnmap viz`: ASCII congestion heatmap of a placement.
pub fn viz(args: &[String]) -> Result<String, CliError> {
    let o = Opts::parse(args, &["width"])?;
    let (pcn, placement) = load_pair(&o)?;
    let width: usize = o.parsed_or("width", 64)?;
    viz::congestion_heatmap(&pcn, &placement, width)
}
