//! Subcommand implementations.

use std::fmt::Write as _;
use std::path::Path;
use std::time::Duration;

use snnmap_baselines::{
    BaselineMapper, Budget, DfSynthesizerMapper, PsoMapper, RandomMapper, TrueNorthMapper,
};
use snnmap_core::{InitialPlacement, Mapper, Potential};
use snnmap_hw::{
    CoreConstraints, CostModel, FaultInjector, FaultMap, FaultPattern, Mesh, Placement,
};
use snnmap_io::{read_faults, read_pcn, read_placement, write_faults, write_pcn, write_placement};
use snnmap_metrics::{evaluate_with, hop_histogram, EvalOptions};
use snnmap_model::generators::{random_pcn, table3_suite};
use snnmap_model::Pcn;

use crate::opts::Opts;
use crate::{viz, CliError};

/// `snnmap gen`: write a benchmark or random PCN.
pub fn gen(args: &[String]) -> Result<String, CliError> {
    let o = Opts::parse(args, &["benchmark", "random", "seed", "out"])?;
    let seed: u64 = o.parsed_or("seed", 42)?;
    let out = Path::new(o.required("out")?);
    let pcn = match (o.flag("benchmark"), o.flag("random")) {
        (Some(name), None) => {
            let bench = table3_suite()
                .into_iter()
                .find(|b| b.row.name.eq_ignore_ascii_case(name))
                .ok_or_else(|| {
                    CliError::usage(format!(
                        "unknown benchmark `{name}`; names: {}",
                        table3_suite()
                            .iter()
                            .map(|b| b.row.name)
                            .collect::<Vec<_>>()
                            .join(", ")
                    ))
                })?;
            bench.pcn(seed)?
        }
        (None, Some(spec)) => {
            let (clusters, degree) = spec.split_once(',').ok_or_else(|| {
                CliError::usage("expected `--random <clusters>,<avg-degree>`")
            })?;
            let clusters: u32 = clusters
                .trim()
                .parse()
                .map_err(|_| CliError::usage(format!("bad cluster count `{clusters}`")))?;
            let degree: f64 = degree
                .trim()
                .parse()
                .map_err(|_| CliError::usage(format!("bad average degree `{degree}`")))?;
            random_pcn(clusters, degree, seed)?
        }
        _ => return Err(CliError::usage("need exactly one of `--benchmark` or `--random`")),
    };
    write_pcn(out, &pcn)?;
    Ok(format!(
        "wrote {} ({} clusters, {} connections)\n",
        out.display(),
        pcn.num_clusters(),
        pcn.num_connections()
    ))
}

/// `snnmap info`: summarize a PCN file.
pub fn info(args: &[String]) -> Result<String, CliError> {
    let o = Opts::parse(args, &[])?;
    let pcn = read_pcn(Path::new(o.positional(0, "file.pcn")?))?;
    let mut out = String::new();
    let _ = writeln!(out, "clusters:       {}", pcn.num_clusters());
    let _ = writeln!(out, "connections:    {}", pcn.num_connections());
    let _ = writeln!(out, "total neurons:  {}", pcn.total_neurons());
    let _ = writeln!(out, "total synapses: {}", pcn.total_synapses());
    let _ = writeln!(out, "total traffic:  {:.3}", pcn.total_traffic());
    let max_deg = (0..pcn.num_clusters()).map(|c| pcn.degree(c)).max().unwrap_or(0);
    let _ = writeln!(out, "max degree:     {max_deg}");
    let mesh = Mesh::square_for(pcn.num_clusters() as u64)
        .map_err(|e| CliError::usage(e.to_string()))?;
    let _ = writeln!(out, "minimal mesh:   {mesh}");
    Ok(out)
}

fn parse_mesh(spec: &str) -> Result<Mesh, CliError> {
    let (r, c) = spec
        .split_once(['x', 'X'])
        .ok_or_else(|| CliError::usage(format!("expected `--mesh <RxC>`, got `{spec}`")))?;
    let rows: u16 =
        r.parse().map_err(|_| CliError::usage(format!("bad mesh rows `{r}`")))?;
    let cols: u16 =
        c.parse().map_err(|_| CliError::usage(format!("bad mesh cols `{c}`")))?;
    Mesh::new(rows, cols).map_err(|e| CliError::usage(e.to_string()))
}

/// Resolves a `--faults` argument: a number in `[0, 1)` is a uniform
/// core+link fault rate fed to a seeded [`FaultInjector`]; anything else
/// is a fault-map JSON file path.
fn load_faults(o: &Opts, mesh: Mesh, seed: u64) -> Result<Option<FaultMap>, CliError> {
    let Some(spec) = o.flag("faults") else {
        return Ok(None);
    };
    let fm = match spec.parse::<f64>() {
        Ok(rate) => {
            let pattern = FaultPattern::Uniform { core_rate: rate, link_rate: rate };
            FaultInjector::new(seed)
                .inject(mesh, &pattern)
                .map_err(|e| CliError::usage(e.to_string()))?
        }
        Err(_) => read_faults(Path::new(spec))?,
    };
    Ok(Some(fm))
}

/// `snnmap map`: place a PCN onto a mesh.
pub fn map(args: &[String]) -> Result<String, CliError> {
    let o = Opts::parse(
        args,
        &[
            "out",
            "method",
            "mesh",
            "init",
            "potential",
            "lambda",
            "budget-secs",
            "seed",
            "faults",
            "faults-out",
            "threads",
            "trace-out",
            "trace-timing",
        ],
    )?;
    let pcn = read_pcn(Path::new(o.positional(0, "file.pcn")?))?;
    let out = Path::new(o.required("out")?);
    let seed: u64 = o.parsed_or("seed", 42)?;
    let mesh = match o.flag("mesh") {
        Some(spec) => parse_mesh(spec)?,
        None => Mesh::square_for(pcn.num_clusters() as u64)
            .map_err(|e| CliError::usage(e.to_string()))?,
    };
    let budget_secs: u64 = o.parsed_or("budget-secs", 0)?;
    let budget = (budget_secs > 0).then(|| Duration::from_secs(budget_secs));
    let faults = load_faults(&o, mesh, seed)?;
    if let Some(path) = o.flag("faults-out") {
        match &faults {
            Some(fm) => write_faults(Path::new(path), fm)?,
            None => return Err(CliError::usage("`--faults-out` requires `--faults`")),
        }
    }

    // `--trace-out` wins over the `SNNMAP_TRACE` env fallback, which lets
    // wrappers/CI turn tracing on without editing the command line.
    let trace_out = o
        .flag("trace-out")
        .map(str::to_owned)
        .or_else(|| std::env::var("SNNMAP_TRACE").ok().filter(|v| !v.is_empty()));
    let trace_timing = match o.flag("trace-timing").unwrap_or("on") {
        "on" => true,
        "off" => false,
        other => {
            return Err(CliError::usage(format!(
                "`--trace-timing` takes `on` or `off`, got `{other}`"
            )))
        }
    };

    let method = o.flag("method").unwrap_or("proposed");
    if faults.is_some() && method != "proposed" {
        return Err(CliError::usage(format!(
            "`--faults` is only supported with `--method proposed`, not `{method}`"
        )));
    }
    if trace_out.is_some() && method != "proposed" {
        return Err(CliError::usage(format!(
            "`--trace-out` is only supported with `--method proposed`, not `{method}`"
        )));
    }
    let (placement, detail) = match method {
        "proposed" => {
            let init = match o.flag("init").unwrap_or("hilbert") {
                "hilbert" => InitialPlacement::Hilbert,
                "zigzag" => InitialPlacement::ZigZag,
                "circle" => InitialPlacement::Circle,
                "serpentine" => InitialPlacement::Serpentine,
                "random" => InitialPlacement::Random(seed),
                other => return Err(CliError::usage(format!("unknown init `{other}`"))),
            };
            let potential = match o.flag("potential").unwrap_or("l2sq") {
                "l1" => Potential::L1,
                "l1sq" => Potential::L1Squared,
                "l2sq" => Potential::L2Squared,
                "energy" => Potential::energy_model(CostModel::paper_target()),
                other => return Err(CliError::usage(format!("unknown potential `{other}`"))),
            };
            let lambda: f64 = o.parsed_or("lambda", 0.3)?;
            if !(lambda > 0.0 && lambda <= 1.0) {
                return Err(CliError::usage("lambda must be in (0, 1]"));
            }
            // 0 = auto (SNNMAP_THREADS, else available parallelism); the
            // placement is bit-identical for every thread count.
            let threads: usize = o.parsed_or("threads", 0)?;
            let mut builder = Mapper::builder()
                .initial_placement(init)
                .potential(potential)
                .lambda(lambda)
                .threads(threads);
            if let Some(b) = budget {
                builder = builder.time_budget(b);
            }
            if let Some(fm) = faults.clone() {
                builder = builder.fault_map(fm);
            }
            let mapper = builder.build();
            let outcome = match &trace_out {
                Some(path) => {
                    let file = std::fs::File::create(path)
                        .map_err(|e| CliError::Io(snnmap_io::IoError::Io(e)))?;
                    let mut sink = snnmap_trace::JsonlSink::new(std::io::BufWriter::new(file))
                        .with_timing(trace_timing);
                    let outcome = mapper.map_traced(&pcn, mesh, &mut sink)?;
                    // `finish` surfaces the first latched write error and
                    // flushes the BufWriter through to the file.
                    sink.finish().map_err(|e| CliError::Io(snnmap_io::IoError::Io(e)))?;
                    outcome
                }
                None => mapper.map(&pcn, mesh)?,
            };
            let detail = match outcome.fd_stats {
                Some(s) => format!(
                    "FD: {} iterations, {} swaps, energy {:.4e} -> {:.4e}{}",
                    s.iterations,
                    s.swaps,
                    s.initial_energy,
                    s.final_energy,
                    if s.converged { "" } else { " (early stop)" }
                ),
                None => "no FD".to_string(),
            };
            (outcome.placement, detail)
        }
        baseline => {
            let mapper: Box<dyn BaselineMapper> = match baseline {
                "random" => Box::new(RandomMapper::new(seed)),
                "truenorth" => Box::new(TrueNorthMapper::new()),
                "dfsynthesizer" => Box::new(DfSynthesizerMapper::new(seed)),
                "pso" => Box::new(PsoMapper::new(seed)),
                other => return Err(CliError::usage(format!("unknown method `{other}`"))),
            };
            let b = match budget {
                Some(d) => Budget::limited(d),
                None => Budget::unlimited(),
            };
            let outcome = mapper.map(&pcn, mesh, b)?;
            let detail = format!(
                "{}: {} iterations{}",
                mapper.name(),
                outcome.iterations,
                if outcome.early_stopped { " (early stop)" } else { "" }
            );
            (outcome.placement, detail)
        }
    };

    write_placement(out, &placement)?;
    let fault_note = match &faults {
        Some(fm) => format!(
            " avoiding {} dead core(s), {} faulty link(s)",
            fm.num_dead_cores(),
            fm.num_faulty_links()
        ),
        None => String::new(),
    };
    let trace_note = match &trace_out {
        Some(path) => format!("\ntrace -> {path}"),
        None => String::new(),
    };
    Ok(format!(
        "placed {} clusters on {mesh}{fault_note} -> {}\n{detail}{trace_note}\n",
        placement.placed_count(),
        out.display()
    ))
}

/// `snnmap validate`: check a placement against a fault map and per-core
/// capacity constraints. Violations become [`CliError::Validation`]
/// (process exit code 3).
pub fn validate(args: &[String]) -> Result<String, CliError> {
    let o = Opts::parse(args, &["faults", "seed", "npc", "spc"])?;
    let (pcn, placement) = load_pair(&o)?;
    let seed: u64 = o.parsed_or("seed", 42)?;
    let faults = load_faults(&o, placement.mesh(), seed)?;
    let defaults = CoreConstraints::default();
    let npc: u32 = o.parsed_or("npc", defaults.neurons_per_core)?;
    let spc: u64 = o.parsed_or("spc", defaults.synapses_per_core)?;
    if npc == 0 || spc == 0 {
        return Err(CliError::usage("per-core capacities must be nonzero"));
    }
    let con = CoreConstraints::new(npc, spc);
    let report = snnmap_core::validate(&pcn, &placement, faults.as_ref(), Some(&con))?;
    if !report.is_ok() {
        return Err(CliError::Validation(report));
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "placement valid: {} clusters on {} within {con}",
        placement.placed_count(),
        placement.mesh()
    );
    if let Some(fm) = &faults {
        let _ = writeln!(
            out,
            "checked against {} dead core(s), {} faulty link(s)",
            fm.num_dead_cores(),
            fm.num_faulty_links()
        );
    }
    Ok(out)
}

fn load_pair(o: &Opts) -> Result<(Pcn, Placement), CliError> {
    if o.num_positional() > 2 {
        return Err(CliError::usage("expected exactly <file.pcn> <placement.json>"));
    }
    let pcn = read_pcn(Path::new(o.positional(0, "file.pcn")?))?;
    let placement = read_placement(Path::new(o.positional(1, "placement.json")?))?;
    Ok((pcn, placement))
}

/// `snnmap eval`: compute the §3.3 metrics of a placement.
pub fn eval(args: &[String]) -> Result<String, CliError> {
    let o = Opts::parse(args, &["sample", "seed"])?;
    let (pcn, placement) = load_pair(&o)?;
    let sample: u64 = o.parsed_or("sample", 200_000)?;
    let seed: u64 = o.parsed_or("seed", 42)?;
    let report = evaluate_with(
        &pcn,
        &placement,
        CostModel::paper_target(),
        EvalOptions { congestion_sample: Some((sample, seed)) },
    )?;
    let mut out = String::new();
    let _ = writeln!(out, "energy (M_ec):           {:.6e}", report.energy);
    let _ = writeln!(out, "avg latency (M_al):      {:.4}", report.avg_latency);
    let _ = writeln!(out, "max latency (M_ml):      {:.4}", report.max_latency);
    let _ = writeln!(out, "avg congestion (M_ac):   {:.4e}", report.avg_congestion);
    let _ = writeln!(out, "max congestion (M_mc):   {:.4e}", report.max_congestion);
    if report.congestion_coverage < 1.0 {
        let _ = writeln!(
            out,
            "congestion coverage:     {:.1}% of traffic sampled",
            report.congestion_coverage * 100.0
        );
    }
    // Traffic-by-hop-distance distribution, as cumulative percentiles.
    let hist = hop_histogram(&pcn, &placement)?;
    let total: f64 = hist.iter().sum();
    if total > 0.0 {
        let mut acc = 0.0;
        let mut marks = vec![];
        for (d, w) in hist.iter().enumerate() {
            acc += w;
            for pct in [50.0, 90.0, 99.0] {
                if acc >= total * pct / 100.0 && !marks.iter().any(|&(p, _)| p == pct as u32) {
                    marks.push((pct as u32, d));
                }
            }
        }
        let _ = writeln!(
            out,
            "traffic within hops:     {}",
            marks
                .iter()
                .map(|(p, d)| format!("p{p} <= {d}"))
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
    Ok(out)
}

/// `snnmap viz`: ASCII congestion heatmap of a placement.
pub fn viz(args: &[String]) -> Result<String, CliError> {
    let o = Opts::parse(args, &["width"])?;
    let (pcn, placement) = load_pair(&o)?;
    let width: usize = o.parsed_or("width", 64)?;
    viz::congestion_heatmap(&pcn, &placement, width)
}
