//! CLI error type.

use std::error::Error;
use std::fmt;

/// Errors surfaced to the `snnmap` user.
#[derive(Debug)]
#[non_exhaustive]
pub enum CliError {
    /// Bad arguments; the message explains what was expected.
    Usage(String),
    /// A file failed to read/parse/write.
    Io(snnmap_io::IoError),
    /// Mapping failed (mesh too small, …).
    Map(snnmap_core::CoreError),
    /// Metric evaluation failed (unplaced clusters, …).
    Eval(snnmap_hw::HwError),
    /// Workload generation failed.
    Model(snnmap_model::ModelError),
    /// `snnmap validate` found placement violations; the report lists them.
    Validation(snnmap_core::ValidationReport),
    /// The run was stopped by SIGINT/SIGTERM. The message says what was
    /// persisted (best-so-far placement, checkpoint) before exiting.
    Interrupted(String),
    /// The serve daemon failed to start.
    Serve(snnmap_serve::ServeError),
}

impl CliError {
    pub(crate) fn usage(message: impl Into<String>) -> Self {
        CliError::Usage(message.into())
    }

    /// The process exit code for this error: 2 for usage errors, 3 when
    /// `snnmap validate` found violations, 130 when a signal stopped the
    /// run (the shell convention for SIGINT), 1 for everything else
    /// (I/O, mapping, evaluation, generation failures).
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Validation(_) => 3,
            CliError::Interrupted(_) => 130,
            _ => 1,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "{m}"),
            CliError::Io(e) => write!(f, "{e}"),
            CliError::Map(e) => write!(f, "{e}"),
            CliError::Eval(e) => write!(f, "{e}"),
            CliError::Model(e) => write!(f, "{e}"),
            CliError::Validation(report) => write!(f, "{report}"),
            CliError::Interrupted(detail) => write!(f, "{detail}"),
            CliError::Serve(e) => write!(f, "{e}"),
        }
    }
}

impl Error for CliError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CliError::Io(e) => Some(e),
            CliError::Map(e) => Some(e),
            CliError::Eval(e) => Some(e),
            CliError::Model(e) => Some(e),
            CliError::Serve(e) => Some(e),
            CliError::Usage(_) | CliError::Validation(_) | CliError::Interrupted(_) => None,
        }
    }
}

impl From<snnmap_io::IoError> for CliError {
    fn from(e: snnmap_io::IoError) -> Self {
        CliError::Io(e)
    }
}

impl From<snnmap_core::CoreError> for CliError {
    fn from(e: snnmap_core::CoreError) -> Self {
        CliError::Map(e)
    }
}

impl From<snnmap_hw::HwError> for CliError {
    fn from(e: snnmap_hw::HwError) -> Self {
        CliError::Eval(e)
    }
}

impl From<snnmap_model::ModelError> for CliError {
    fn from(e: snnmap_model::ModelError) -> Self {
        CliError::Model(e)
    }
}

impl From<snnmap_serve::ServeError> for CliError {
    fn from(e: snnmap_serve::ServeError) -> Self {
        CliError::Serve(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = CliError::usage("bad flag");
        assert_eq!(e.to_string(), "bad flag");
        assert!(e.source().is_none());
        let e = CliError::from(snnmap_io::IoError::Invalid { message: "x".into() });
        assert!(e.source().is_some());
    }

    #[test]
    fn exit_codes_distinguish_failure_classes() {
        assert_eq!(CliError::usage("x").exit_code(), 2);
        let io = CliError::from(snnmap_io::IoError::Invalid { message: "x".into() });
        assert_eq!(io.exit_code(), 1);
        let v = CliError::Validation(snnmap_core::ValidationReport::default());
        assert_eq!(v.exit_code(), 3);
        assert!(v.source().is_none());
        let i = CliError::Interrupted("stopped at sweep 3".into());
        assert_eq!(i.exit_code(), 130);
        assert_eq!(i.to_string(), "stopped at sweep 3");
        assert!(i.source().is_none());
    }
}
