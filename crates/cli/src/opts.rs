//! Tiny flag parser shared by the subcommands.

use std::collections::HashMap;

use crate::CliError;

/// Parsed positional arguments and `--flag value` options.
#[derive(Debug)]
pub struct Opts {
    positional: Vec<String>,
    flags: HashMap<String, String>,
}

impl Opts {
    /// Splits `args` into positionals and flag/value pairs, rejecting
    /// flags outside `allowed`.
    pub fn parse(args: &[String], allowed: &[&str]) -> Result<Self, CliError> {
        let mut positional = Vec::new();
        let mut flags = HashMap::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                if !allowed.contains(&name) {
                    return Err(CliError::usage(format!("unknown flag `--{name}`")));
                }
                let value = it
                    .next()
                    .ok_or_else(|| CliError::usage(format!("missing value for `--{name}`")))?;
                if flags.insert(name.to_string(), value.clone()).is_some() {
                    return Err(CliError::usage(format!("duplicate flag `--{name}`")));
                }
            } else {
                positional.push(a.clone());
            }
        }
        Ok(Self { positional, flags })
    }

    /// The `i`-th positional argument.
    pub fn positional(&self, i: usize, name: &str) -> Result<&str, CliError> {
        self.positional
            .get(i)
            .map(|s| s.as_str())
            .ok_or_else(|| CliError::usage(format!("missing <{name}> argument")))
    }

    /// Number of positional arguments.
    pub fn num_positional(&self) -> usize {
        self.positional.len()
    }

    /// An optional string flag.
    pub fn flag(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(|s| s.as_str())
    }

    /// A required string flag.
    pub fn required(&self, name: &str) -> Result<&str, CliError> {
        self.flag(name).ok_or_else(|| CliError::usage(format!("missing required `--{name}`")))
    }

    /// An optional parsed flag with a default.
    pub fn parsed_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        match self.flag(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::usage(format!("cannot parse `--{name} {v}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_mixed_args() {
        let o = Opts::parse(&sv(&["file.pcn", "--seed", "7", "out.json"]), &["seed"]).unwrap();
        assert_eq!(o.positional(0, "input").unwrap(), "file.pcn");
        assert_eq!(o.positional(1, "output").unwrap(), "out.json");
        assert_eq!(o.num_positional(), 2);
        assert_eq!(o.parsed_or::<u64>("seed", 0).unwrap(), 7);
        assert_eq!(o.parsed_or::<u64>("other", 9).unwrap(), 9);
    }

    #[test]
    fn rejects_unknown_duplicate_and_malformed() {
        assert!(Opts::parse(&sv(&["--bogus", "1"]), &["seed"]).is_err());
        assert!(Opts::parse(&sv(&["--seed"]), &["seed"]).is_err());
        assert!(Opts::parse(&sv(&["--seed", "1", "--seed", "2"]), &["seed"]).is_err());
        let o = Opts::parse(&sv(&["--seed", "abc"]), &["seed"]).unwrap();
        assert!(o.parsed_or::<u64>("seed", 0).is_err());
        assert!(o.positional(0, "input").is_err());
        assert!(o.required("missing").is_err());
    }
}
