//! The `snnmap` command-line tool: generate, map, evaluate, and
//! visualize SNN cluster-network placements.
//!
//! Subcommands:
//!
//! * `gen` — write a benchmark or random PCN to a `.pcn`/`.pcnb` file,
//! * `info` — summarize a PCN file (text or binary),
//! * `convert` — translate a PCN between the text (`.pcn`) and binary
//!   (`.pcnb`) formats, inferring the direction from the extensions,
//! * `map` — place a PCN onto a mesh with any implemented method,
//!   optionally via the multilevel coarsen→place→refine pipeline
//!   (`--multilevel on`), optionally avoiding faulty hardware
//!   (`--faults <rate|file>`), under a stop budget (`--deadline-ms`,
//!   `--max-sweeps`) and with periodic checkpoints
//!   (`--checkpoint-every`, `--checkpoint-out`),
//! * `resume` — continue an interrupted Force-Directed run from a
//!   checkpoint, bit-identical to the uninterrupted run,
//! * `eval` — compute the five §3.3 quality metrics of a placement,
//! * `viz` — render a placement's congestion map as an ASCII heatmap,
//! * `validate` — check a placement against a fault map and per-core
//!   capacity constraints; exits 3 when violations are found,
//! * `serve` — run the mapping-as-a-service daemon (`snnmap-serve`):
//!   a concurrent job queue over HTTP with live progress, cooperative
//!   cancellation, graceful drain on SIGINT/SIGTERM, and crash recovery
//!   from a spool directory.
//!
//! The library surface is a single [`run`] function over string
//! arguments (what `main` calls), which keeps every code path unit
//! testable.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod commands;
mod error;
mod opts;
mod viz;

pub use error::CliError;

/// Usage text printed on argument errors.
pub const USAGE: &str = "\
usage: snnmap <command> [options]

commands:
  gen   --benchmark <table3-name> | --random <clusters>,<avg-degree>
        [--seed N] --out <file.pcn|file.pcnb>
  info  <file.pcn|file.pcnb>
  convert <input.pcn|input.pcnb> --out <output.pcn|output.pcnb>
  map   <file.pcn|file.pcnb> --out <placement.json>
        [--method proposed|random|truenorth|dfsynthesizer|pso]
        [--mesh <RxC>] [--board <spec|board.json>]
        [--init hilbert|zigzag|circle|serpentine|random]
        [--potential l1|l1sq|l2sq|energy] [--lambda F]
        [--budget-secs N] [--seed N] [--threads N] [--multilevel on|off]
        [--objective energy|congestion|composite]
        [--lambda-congestion F] [--lambda-latency F] [--sim-in-loop N]
        [--faults <rate|file.json|chip:<id,...>>] [--faults-out <file.json>]
        [--trace-out <run.jsonl>] [--trace-timing on|off]
        [--deadline-ms N] [--max-sweeps N]
        [--checkpoint-every N] [--checkpoint-out <cp.json>]
  resume <file.pcn> --checkpoint <cp.json> --out <placement.json>
        [--init ...] [--potential ...] [--lambda F] [--seed N]
        [--threads N] [--faults <rate|file.json>] [--multilevel on|off]
        [--objective ...] [--lambda-congestion F] [--lambda-latency F]
        [--deadline-ms N] [--max-sweeps N]
        [--checkpoint-every N] [--checkpoint-out <cp.json>]
        [--trace-out <run.jsonl>] [--trace-timing on|off]
  eval  <file.pcn> <placement.json> [--sample N]
        [--noc-cycles N] [--format text|prometheus]
  viz   <file.pcn> <placement.json> [--width N]
  validate <file.pcn> <placement.json>
        [--faults <rate|file.json|chip:<id,...>>] [--seed N]
        [--npc N] [--spc N] [--board <spec|board.json>]
  serve [--addr HOST:PORT] [--workers N] [--spool-dir <dir>]
        [--queue-capacity N] [--lease-ttl-ms N] [--daemon-id <id>]
        [--io-timeout-ms N]

PCN files are read and written in the text format (`.pcn`) or the
versioned, checksummed binary format (any path ending in `.pcnb`);
`convert` translates between them. `--multilevel on` maps through the
coarsen -> place -> refine pipeline: heavy-edge matching shrinks the
PCN to a small coarse graph, that graph is placed with the Hilbert/HSC
init, and each level is then refined with region-masked Force-Directed
sweeps — much faster at scale, byte-identical across thread counts.

`--faults` takes a uniform core/link fault rate in [0, 1) (seeded by
`--seed`), a fault-map JSON file written by `--faults-out`, or — with
`--board` — `chip:<id,...>` to kill whole chips.

`--board` maps onto a heterogeneous multi-chip board: a Table 1 preset
name (`truenorth`, `loihi:2x2`, ...), a custom `GxH/RxC[@NPC,SPC]`
spec, or a board JSON file. The mesh is derived from the board (an
explicit `--mesh` must agree). Placement then respects each core's
neuron/synapse capacity: the HSC init skips cores a cluster does not
fit on and FD refinement never swaps a cluster onto a core it would
overload. `validate --board` checks capacity and chip-liveness
invariants; with a fault map it also rejects clusters on dead chips.

`--objective` picks what FD refinement descends: `energy` (default, the
paper's eq. 25 potential — bit-identical to older releases), pure
`congestion` (Algorithm 4 expected per-router traffic, weight
`--lambda-congestion`), or `composite`
(energy + lc*congestion + lt*latency-tail, the tail term charging
squared Manhattan distance via `--lambda-latency`). On a `--board` run
the non-energy terms weight chip-boundary crossings higher.
`--sim-in-loop N` additionally replays the PCN's spike traffic on the
seeded NoC simulator every N sweeps and re-weights hot routers in the
congestion term; it requires a non-energy objective, is incompatible
with checkpointing, and stays byte-identical across thread counts.
`eval`'s NoC columns (`--noc-cycles`, default 256, 0 disables) come
from the same seeded simulator.

`--threads N` pins the FD worker-thread count (N >= 1); omit the flag
for auto-detection (SNNMAP_THREADS if set and valid, else the available
parallelism). The placement is bit-identical for every thread count —
threads only change wall-clock time. In a container, pinning N above
the CPUs actually granted oversubscribes and usually runs *slower* than
auto; see README \"Multi-core scaling\".

`--trace-out` streams per-phase timing and FD convergence telemetry as
JSON lines (schema in DESIGN.md); the SNNMAP_TRACE env var is the
fallback destination when the flag is absent. `--trace-timing off`
omits wall-clock/allocation fields so replays are byte-identical.
Tracing never changes the placement.

`--deadline-ms` / `--max-sweeps` make the FD phase *anytime*: the run
stops at the next sweep boundary and returns the best placement so far
(never worse than the initial one). `--checkpoint-out` flushes a
resumable snapshot on every budgeted stop, and `--checkpoint-every N`
additionally every N sweeps. `resume` verifies the checkpoint's
provenance digests, then continues the run; a killed-and-resumed run
produces a placement byte-identical to an uninterrupted one.

Ctrl-C (SIGINT) or SIGTERM during `map`/`resume` stops the run at the
next sweep boundary, writes the best-so-far placement (and checkpoint,
when configured), and exits 130; a second signal aborts immediately.
`serve` drains gracefully: running jobs checkpoint to the spool and
resume when the daemon restarts with the same --spool-dir. Several
daemons may share one --spool-dir: each running job holds a heartbeated
LEASE file, and a daemon that dies has its jobs finished by a peer once
the lease outlives --lease-ttl-ms. `--io-timeout-ms` bounds how long a
client may take to deliver a request (slow clients get 408).

SNNMAP_CHAOS=<seed>:<failpoint>=<fault>[@<trigger>],... arms seeded,
replayable fault injection on every spool/checkpoint/socket sync point
(faults: enospc, torn, fail, short, disconnect; triggers: #N, #N+,
1inN). Unset, the failpoints compile down to one atomic load.

exit codes: 0 ok, 1 runtime error, 2 usage error, 3 invalid placement,
130 interrupted by SIGINT/SIGTERM.

run `snnmap <command>` with missing arguments for details.";

/// Executes a full CLI invocation, returning the text to print.
///
/// # Errors
///
/// [`CliError`] for unknown commands, malformed options, I/O failures,
/// and any mapping/evaluation error.
pub fn run(args: &[String]) -> Result<String, CliError> {
    // Arm the deterministic fault-injection schedule, if any, before the
    // first I/O. A malformed schedule is a configuration error, not a
    // license to run without the requested faults.
    snnmap_chaos::install_from_env()
        .map_err(|e| CliError::usage(format!("{} env var: {e}", snnmap_chaos::ENV_VAR)))?;
    let (cmd, rest) = args.split_first().ok_or(CliError::usage("missing command"))?;
    match cmd.as_str() {
        "gen" => commands::gen(rest),
        "info" => commands::info(rest),
        "convert" => commands::convert(rest),
        "map" => commands::map(rest),
        "resume" => commands::resume(rest),
        "eval" => commands::eval(rest),
        "viz" => commands::viz(rest),
        "validate" => commands::validate(rest),
        "serve" => commands::serve(rest),
        "--help" | "-h" | "help" => Ok(format!("{USAGE}\n")),
        other => Err(CliError::usage(format!("unknown command `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn help_and_errors() {
        assert!(run(&sv(&["help"])).unwrap().contains("usage"));
        assert!(run(&sv(&[])).is_err());
        assert!(run(&sv(&["frobnicate"])).is_err());
    }

    #[test]
    fn end_to_end_gen_map_eval_viz() {
        let dir = std::env::temp_dir().join("snnmap_cli_e2e");
        std::fs::create_dir_all(&dir).unwrap();
        let pcn = dir.join("app.pcn");
        let placement = dir.join("p.json");
        let pcn_s = pcn.to_str().unwrap();
        let placement_s = placement.to_str().unwrap();

        let out = run(&sv(&["gen", "--random", "40,3", "--seed", "5", "--out", pcn_s]))
            .unwrap();
        assert!(out.contains("40 clusters"), "{out}");

        let out = run(&sv(&["info", pcn_s])).unwrap();
        assert!(out.contains("clusters"), "{out}");

        let out = run(&sv(&["map", pcn_s, "--out", placement_s])).unwrap();
        assert!(out.contains("placed"), "{out}");

        let out = run(&sv(&["eval", pcn_s, placement_s])).unwrap();
        assert!(out.contains("energy"), "{out}");
        assert!(out.contains("NoC sim (256 cycles)"), "{out}");
        assert!(out.contains("NoC hottest router"), "{out}");

        // The NoC replay is seeded: same seed, same columns; and
        // `--noc-cycles 0` drops them for purely analytic evaluation.
        let again = run(&sv(&["eval", pcn_s, placement_s])).unwrap();
        assert_eq!(out, again, "eval must be deterministic per seed");
        let plain = run(&sv(&["eval", pcn_s, placement_s, "--noc-cycles", "0"])).unwrap();
        assert!(!plain.contains("NoC"), "{plain}");

        let out = run(&sv(&["viz", pcn_s, placement_s])).unwrap();
        assert!(out.contains("congestion"), "{out}");
    }

    #[test]
    fn eval_prometheus_format_and_serve_usage_guard() {
        let dir = std::env::temp_dir().join("snnmap_cli_prom");
        std::fs::create_dir_all(&dir).unwrap();
        let pcn = dir.join("app.pcn");
        let placement = dir.join("p.json");
        let pcn_s = pcn.to_str().unwrap();
        let placement_s = placement.to_str().unwrap();
        run(&sv(&["gen", "--random", "20,3", "--out", pcn_s])).unwrap();
        run(&sv(&["map", pcn_s, "--out", placement_s])).unwrap();

        // The shared encoder: same page shape as the daemon's /metrics.
        let page = run(&sv(&["eval", pcn_s, placement_s, "--format", "prometheus"]))
            .unwrap();
        assert!(page.starts_with("# HELP snnmap_energy"), "{page}");
        assert!(page.contains("\nsnnmap_max_congestion "), "{page}");
        assert!(page.contains("\nsnnmap_max_congestion_is_lower_bound "), "{page}");
        for gauge in [
            "snnmap_noc_cycles 256",
            "snnmap_noc_max_latency ",
            "snnmap_noc_detour_hops 0",
            "snnmap_noc_hottest_traversals ",
            "snnmap_noc_sim_max_congestion ",
        ] {
            assert!(page.contains(gauge), "missing {gauge} in:\n{page}");
        }
        // NoC gauges disappear with the simulation disabled.
        let plain =
            run(&sv(&["eval", pcn_s, placement_s, "--noc-cycles", "0", "--format", "prometheus"]))
                .unwrap();
        assert!(!plain.contains("snnmap_noc_"), "{plain}");

        let err = run(&sv(&["eval", pcn_s, placement_s, "--format", "xml"])).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        let err = run(&sv(&["serve", "--queue-capacity", "0"])).unwrap_err();
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn map_objective_flags_select_composite_refinement() {
        let dir = std::env::temp_dir().join("snnmap_cli_objective");
        std::fs::create_dir_all(&dir).unwrap();
        let pcn = dir.join("app.pcn");
        let pcn_s = pcn.to_str().unwrap();
        run(&sv(&["gen", "--random", "36,3", "--seed", "9", "--out", pcn_s])).unwrap();

        let energy = dir.join("energy.json");
        let composite = dir.join("composite.json");
        run(&sv(&["map", pcn_s, "--out", energy.to_str().unwrap(), "--mesh", "6x6"])).unwrap();
        let out = run(&sv(&[
            "map", pcn_s, "--out", composite.to_str().unwrap(), "--mesh", "6x6",
            "--objective", "composite", "--lambda-congestion", "2.0",
            "--lambda-latency", "0.1", "--sim-in-loop", "4",
        ]))
        .unwrap();
        assert!(out.contains("objective: composite (lc=2, lt=0.1)"), "{out}");
        assert!(out.contains("NoC reweight every 4 sweep(s)"), "{out}");

        // Guard rails: λ knobs the objective ignores, sim-in-loop without
        // a congestion term, unknown labels, and baseline methods.
        for bad in [
            vec!["map", pcn_s, "--out", "/dev/null", "--lambda-congestion", "1.0"],
            vec!["map", pcn_s, "--out", "/dev/null", "--sim-in-loop", "4"],
            vec!["map", pcn_s, "--out", "/dev/null", "--objective", "speed"],
            vec![
                "map", pcn_s, "--out", "/dev/null", "--objective", "congestion",
                "--lambda-latency", "0.5",
            ],
            vec![
                "map", pcn_s, "--out", "/dev/null", "--method", "random",
                "--objective", "congestion",
            ],
        ] {
            let err = run(&sv(&bad)).unwrap_err();
            assert_eq!(err.exit_code(), 2, "{bad:?}");
        }

        // Composite refinement is deterministic: repeat runs agree.
        let repeat = dir.join("composite2.json");
        run(&sv(&[
            "map", pcn_s, "--out", repeat.to_str().unwrap(), "--mesh", "6x6",
            "--objective", "composite", "--lambda-congestion", "2.0",
            "--lambda-latency", "0.1", "--sim-in-loop", "4",
        ]))
        .unwrap();
        assert_eq!(
            std::fs::read_to_string(&composite).unwrap(),
            std::fs::read_to_string(&repeat).unwrap(),
            "composite + sim-in-loop runs must be reproducible"
        );
    }

    #[test]
    fn gen_benchmark_by_name() {
        let dir = std::env::temp_dir().join("snnmap_cli_bench");
        std::fs::create_dir_all(&dir).unwrap();
        let pcn = dir.join("lenet.pcn");
        let out = run(&sv(&[
            "gen",
            "--benchmark",
            "LeNet-MNIST",
            "--out",
            pcn.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("9 clusters"), "{out}");
    }

    #[test]
    fn fault_aware_map_then_validate() {
        let dir = std::env::temp_dir().join("snnmap_cli_faults");
        std::fs::create_dir_all(&dir).unwrap();
        let pcn = dir.join("app.pcn");
        let placement = dir.join("p.json");
        let faults = dir.join("faults.json");
        let pcn_s = pcn.to_str().unwrap();
        let placement_s = placement.to_str().unwrap();
        let faults_s = faults.to_str().unwrap();

        run(&sv(&["gen", "--random", "30,3", "--seed", "2", "--out", pcn_s])).unwrap();
        let out = run(&sv(&[
            "map", pcn_s, "--out", placement_s, "--mesh", "8x8", "--seed", "9",
            "--faults", "0.1", "--faults-out", faults_s,
        ]))
        .unwrap();
        assert!(out.contains("placed 30 clusters"), "{out}");
        assert!(out.contains("avoiding"), "{out}");

        // The written fault map validates the placement it shaped.
        let out =
            run(&sv(&["validate", pcn_s, placement_s, "--faults", faults_s])).unwrap();
        assert!(out.contains("placement valid"), "{out}");

        // Faults are only meaningful for the proposed mapper.
        let err = run(&sv(&[
            "map", pcn_s, "--out", placement_s, "--method", "random", "--faults", "0.1",
        ]))
        .unwrap_err();
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn validate_flags_violations_with_exit_code_3() {
        let dir = std::env::temp_dir().join("snnmap_cli_validate");
        std::fs::create_dir_all(&dir).unwrap();
        let pcn = dir.join("app.pcn");
        let placement = dir.join("p.json");
        let faults = dir.join("faults.json");
        let pcn_s = pcn.to_str().unwrap();
        let placement_s = placement.to_str().unwrap();

        // 16 clusters fill a 4x4 mesh completely, so *any* dead core is
        // an occupied dead core.
        run(&sv(&["gen", "--random", "16,3", "--seed", "3", "--out", pcn_s])).unwrap();
        run(&sv(&["map", pcn_s, "--out", placement_s, "--mesh", "4x4"])).unwrap();
        std::fs::write(
            &faults,
            r#"{"format":"snnmap-faults-v1","rows":4,"cols":4,"dead_cores":[[0,0]],"faulty_links":[]}"#,
        )
        .unwrap();
        let err = run(&sv(&[
            "validate", pcn_s, placement_s, "--faults", faults.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert_eq!(err.exit_code(), 3);
        assert!(err.to_string().contains("violation"), "{err}");

        // An impossible capacity bound also trips validation.
        let err = run(&sv(&["validate", pcn_s, placement_s, "--npc", "1", "--spc", "1"]))
            .unwrap_err();
        assert_eq!(err.exit_code(), 3);
    }

    #[test]
    fn map_threads_flag_is_accepted_and_output_invariant() {
        let dir = std::env::temp_dir().join("snnmap_cli_threads");
        std::fs::create_dir_all(&dir).unwrap();
        let pcn = dir.join("app.pcn");
        let pcn_s = pcn.to_str().unwrap();
        run(&sv(&["gen", "--random", "60,4", "--seed", "1", "--out", pcn_s])).unwrap();
        let mut outputs = Vec::new();
        for threads in ["1", "4"] {
            let placement = dir.join(format!("p{threads}.json"));
            run(&sv(&[
                "map", pcn_s, "--out", placement.to_str().unwrap(), "--threads", threads,
            ]))
            .unwrap();
            outputs.push(std::fs::read_to_string(&placement).unwrap());
        }
        assert_eq!(outputs[0], outputs[1], "placement must not depend on --threads");
        // Only the proposed method understands the flag's machinery, but
        // parsing rejects garbage regardless.
        let err = run(&sv(&[
            "map", pcn_s, "--out", "/dev/null", "--threads", "many",
        ]))
        .unwrap_err();
        assert_eq!(err.exit_code(), 2);
        // An explicit `--threads 0` is a usage error, not silent auto:
        // auto-detection is spelled by omitting the flag.
        for bad in ["0", "-1", "1.5"] {
            let err = run(&sv(&[
                "map", pcn_s, "--out", "/dev/null", "--threads", bad,
            ]))
            .unwrap_err();
            assert_eq!(err.exit_code(), 2, "--threads {bad} must be a usage error");
            assert!(err.to_string().contains("--threads"), "{err}");
        }
    }

    #[test]
    fn map_trace_out_is_validated_byte_stable_and_placement_invariant() {
        let dir = std::env::temp_dir().join("snnmap_cli_trace");
        std::fs::create_dir_all(&dir).unwrap();
        let pcn = dir.join("app.pcn");
        let pcn_s = pcn.to_str().unwrap();
        run(&sv(&["gen", "--random", "50,4", "--seed", "7", "--out", pcn_s])).unwrap();

        // Untraced reference placement.
        let plain = dir.join("plain.json");
        run(&sv(&["map", pcn_s, "--out", plain.to_str().unwrap(), "--mesh", "8x8"]))
            .unwrap();

        // Two timing-off traced runs: same placement, byte-identical traces.
        let mut traces = Vec::new();
        for i in 0..2 {
            let placement = dir.join(format!("t{i}.json"));
            let trace = dir.join(format!("t{i}.jsonl"));
            let out = run(&sv(&[
                "map", pcn_s, "--out", placement.to_str().unwrap(), "--mesh", "8x8",
                "--trace-out", trace.to_str().unwrap(), "--trace-timing", "off",
            ]))
            .unwrap();
            assert!(out.contains("trace ->"), "{out}");
            assert_eq!(
                std::fs::read_to_string(&placement).unwrap(),
                std::fs::read_to_string(&plain).unwrap(),
                "tracing changed the placement"
            );
            traces.push(std::fs::read_to_string(&trace).unwrap());
        }
        assert_eq!(traces[0], traces[1], "timing-off traces must be byte-identical");

        // The stream validates against the schema and has no timing tail.
        let summary = snnmap_io::validate_trace(&traces[0]).unwrap();
        assert_eq!(summary.count("run"), 1);
        assert!(summary.count("fd_sweep") >= 1);
        assert!(!summary.timing);

        // Timing on (the default) adds the tail but still validates.
        let trace = dir.join("timed.jsonl");
        run(&sv(&[
            "map", pcn_s, "--out", plain.to_str().unwrap(), "--mesh", "8x8",
            "--trace-out", trace.to_str().unwrap(),
        ]))
        .unwrap();
        let timed = snnmap_io::validate_trace(&std::fs::read_to_string(&trace).unwrap())
            .unwrap();
        assert!(timed.timing);

        // Guard rails: bad --trace-timing value, baseline methods.
        let err = run(&sv(&[
            "map", pcn_s, "--out", "/dev/null", "--trace-out", "/dev/null",
            "--trace-timing", "sometimes",
        ]))
        .unwrap_err();
        assert_eq!(err.exit_code(), 2);
        let err = run(&sv(&[
            "map", pcn_s, "--out", "/dev/null", "--method", "random",
            "--trace-out", "/dev/null",
        ]))
        .unwrap_err();
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn budgeted_map_checkpoint_then_resume_matches_uninterrupted_run() {
        let dir = std::env::temp_dir().join("snnmap_cli_resume");
        std::fs::create_dir_all(&dir).unwrap();
        let pcn = dir.join("app.pcn");
        let pcn_s = pcn.to_str().unwrap();
        run(&sv(&["gen", "--random", "100,4", "--seed", "1", "--out", pcn_s])).unwrap();

        // Uninterrupted reference run.
        let full = dir.join("full.json");
        run(&sv(&["map", pcn_s, "--out", full.to_str().unwrap(), "--mesh", "10x10"]))
            .unwrap();

        // Budget-stopped run flushing a checkpoint every sweep.
        let partial = dir.join("partial.json");
        let cp = dir.join("cp.json");
        let cp_s = cp.to_str().unwrap();
        let out = run(&sv(&[
            "map", pcn_s, "--out", partial.to_str().unwrap(), "--mesh", "10x10",
            "--max-sweeps", "1", "--checkpoint-every", "1", "--checkpoint-out", cp_s,
        ]))
        .unwrap();
        assert!(out.contains("stopped: sweep_cap_reached"), "{out}");
        assert!(out.contains("checkpoint ->"), "{out}");
        assert!(cp.exists());
        assert_ne!(
            std::fs::read_to_string(&partial).unwrap(),
            std::fs::read_to_string(&full).unwrap(),
            "one sweep must not already be converged for this test to bite"
        );

        // Resume to convergence: byte-identical to the uninterrupted run.
        let resumed = dir.join("resumed.json");
        let out = run(&sv(&[
            "resume", pcn_s, "--checkpoint", cp_s, "--out", resumed.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("resumed at sweep 1"), "{out}");
        assert_eq!(
            std::fs::read_to_string(&resumed).unwrap(),
            std::fs::read_to_string(&full).unwrap(),
            "resumed placement must be byte-identical to the uninterrupted run"
        );

        // Provenance guard: different lambda → different config digest.
        let err = run(&sv(&[
            "resume", pcn_s, "--checkpoint", cp_s, "--out", "/dev/null",
            "--lambda", "0.9",
        ]))
        .unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("different configuration"), "{err}");

        // Flag plumbing guards.
        let err = run(&sv(&[
            "map", pcn_s, "--out", "/dev/null", "--checkpoint-every", "1",
        ]))
        .unwrap_err();
        assert_eq!(err.exit_code(), 2);
        let err = run(&sv(&[
            "map", pcn_s, "--out", "/dev/null", "--method", "random",
            "--deadline-ms", "5",
        ]))
        .unwrap_err();
        assert_eq!(err.exit_code(), 2);
        let err = run(&sv(&["resume", pcn_s, "--out", "/dev/null"])).unwrap_err();
        assert_eq!(err.exit_code(), 2, "missing --checkpoint must be a usage error");
    }

    #[test]
    fn resumed_trace_validates_and_reports_the_resume_event() {
        let dir = std::env::temp_dir().join("snnmap_cli_resume_trace");
        std::fs::create_dir_all(&dir).unwrap();
        let pcn = dir.join("app.pcn");
        let pcn_s = pcn.to_str().unwrap();
        run(&sv(&["gen", "--random", "80,4", "--seed", "3", "--out", pcn_s])).unwrap();

        let cp = dir.join("cp.json");
        let cp_s = cp.to_str().unwrap();
        run(&sv(&[
            "map", pcn_s, "--out", "/dev/null", "--mesh", "9x9",
            "--max-sweeps", "1", "--checkpoint-out", cp_s,
        ]))
        .unwrap();
        assert!(cp.exists(), "budgeted stop must flush a checkpoint");

        let trace = dir.join("resume.jsonl");
        run(&sv(&[
            "resume", pcn_s, "--checkpoint", cp_s, "--out", "/dev/null",
            "--trace-out", trace.to_str().unwrap(), "--trace-timing", "off",
        ]))
        .unwrap();
        let summary =
            snnmap_io::validate_trace(&std::fs::read_to_string(&trace).unwrap()).unwrap();
        assert_eq!(summary.count("run"), 1);
        assert_eq!(summary.count("resume"), 1);
        assert_eq!(summary.count("fd_done"), 1);
    }

    #[test]
    fn convert_round_trips_between_text_and_binary() {
        let dir = std::env::temp_dir().join("snnmap_cli_convert");
        std::fs::create_dir_all(&dir).unwrap();
        let text = dir.join("app.pcn");
        let binary = dir.join("app.pcnb");
        let back = dir.join("back.pcn");
        let text_s = text.to_str().unwrap();
        let binary_s = binary.to_str().unwrap();

        run(&sv(&["gen", "--random", "50,4", "--seed", "8", "--out", text_s])).unwrap();
        let out = run(&sv(&["convert", text_s, "--out", binary_s])).unwrap();
        assert!(out.contains("binary"), "{out}");
        assert!(out.contains("50 clusters"), "{out}");

        // The binary file is a first-class input everywhere.
        let info = run(&sv(&["info", binary_s])).unwrap();
        assert!(info.contains("50"), "{info}");
        let (pt, pb) = (dir.join("pt.json"), dir.join("pb.json"));
        run(&sv(&["map", text_s, "--out", pt.to_str().unwrap()])).unwrap();
        run(&sv(&["map", binary_s, "--out", pb.to_str().unwrap()])).unwrap();
        assert_eq!(
            std::fs::read_to_string(&pt).unwrap(),
            std::fs::read_to_string(&pb).unwrap(),
            "text and binary inputs must map identically"
        );

        // Converting back lands on the original bytes (both renderers
        // canonicalize, and `gen` wrote canonical text already).
        run(&sv(&["convert", binary_s, "--out", back.to_str().unwrap()])).unwrap();
        assert_eq!(
            std::fs::read_to_string(&text).unwrap(),
            std::fs::read_to_string(&back).unwrap()
        );

        // A truncated binary is a typed runtime error, not a panic.
        let bytes = std::fs::read(&binary).unwrap();
        std::fs::write(&binary, &bytes[..bytes.len() / 2]).unwrap();
        let err = run(&sv(&["info", binary_s])).unwrap_err();
        assert_eq!(err.exit_code(), 1);
        assert!(err.to_string().contains("truncated"), "{err}");

        let err = run(&sv(&["convert", text_s])).unwrap_err();
        assert_eq!(err.exit_code(), 2, "missing --out is a usage error");
    }

    #[test]
    fn multilevel_map_flag_works_and_guards() {
        let dir = std::env::temp_dir().join("snnmap_cli_multilevel");
        std::fs::create_dir_all(&dir).unwrap();
        let pcn = dir.join("app.pcn");
        let pcn_s = pcn.to_str().unwrap();
        run(&sv(&["gen", "--random", "120,4", "--seed", "6", "--out", pcn_s])).unwrap();

        // Below the coarsening target the pipeline degenerates to the
        // flat one, so the flag must not change the placement here.
        let (flat, ml) = (dir.join("flat.json"), dir.join("ml.json"));
        run(&sv(&["map", pcn_s, "--out", flat.to_str().unwrap(), "--mesh", "12x12"]))
            .unwrap();
        let out = run(&sv(&[
            "map", pcn_s, "--out", ml.to_str().unwrap(), "--mesh", "12x12",
            "--multilevel", "on",
        ]))
        .unwrap();
        assert!(out.contains("placed 120 clusters"), "{out}");
        assert_eq!(
            std::fs::read_to_string(&flat).unwrap(),
            std::fs::read_to_string(&ml).unwrap()
        );

        let err = run(&sv(&[
            "map", pcn_s, "--out", "/dev/null", "--multilevel", "maybe",
        ]))
        .unwrap_err();
        assert_eq!(err.exit_code(), 2);
        let err = run(&sv(&[
            "map", pcn_s, "--out", "/dev/null", "--method", "random",
            "--multilevel", "on",
        ]))
        .unwrap_err();
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn multilevel_checkpoints_carry_the_flag_in_their_digest() {
        let dir = std::env::temp_dir().join("snnmap_cli_ml_resume");
        std::fs::create_dir_all(&dir).unwrap();
        let pcn = dir.join("app.pcn");
        let pcn_s = pcn.to_str().unwrap();
        run(&sv(&["gen", "--random", "100,4", "--seed", "1", "--out", pcn_s])).unwrap();

        let full = dir.join("full.json");
        run(&sv(&[
            "map", pcn_s, "--out", full.to_str().unwrap(), "--mesh", "10x10",
            "--multilevel", "on",
        ]))
        .unwrap();

        let cp = dir.join("cp.json");
        let cp_s = cp.to_str().unwrap();
        run(&sv(&[
            "map", pcn_s, "--out", "/dev/null", "--mesh", "10x10",
            "--multilevel", "on", "--max-sweeps", "1", "--checkpoint-out", cp_s,
        ]))
        .unwrap();
        assert!(cp.exists(), "budgeted multilevel stop must flush a checkpoint");

        // The digest records the multilevel flag, so a flat resume is
        // refused until the caller acknowledges the original pipeline.
        let err = run(&sv(&["resume", pcn_s, "--checkpoint", cp_s, "--out", "/dev/null"]))
            .unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("different configuration"), "{err}");

        // With the flag, resume continues the finest-level FD pass and
        // lands exactly where the uninterrupted run did.
        let resumed = dir.join("resumed.json");
        run(&sv(&[
            "resume", pcn_s, "--checkpoint", cp_s, "--out", resumed.to_str().unwrap(),
            "--multilevel", "on",
        ]))
        .unwrap();
        assert_eq!(
            std::fs::read_to_string(&resumed).unwrap(),
            std::fs::read_to_string(&full).unwrap(),
            "resumed multilevel run must match the uninterrupted one"
        );
    }

    #[test]
    fn board_map_validate_and_chip_faults() {
        let dir = std::env::temp_dir().join("snnmap_cli_board");
        std::fs::create_dir_all(&dir).unwrap();
        let pcn = dir.join("app.pcn");
        let placement = dir.join("p.json");
        let pcn_s = pcn.to_str().unwrap();
        let placement_s = placement.to_str().unwrap();
        let board = "2x2/4x4@4096,65536";

        run(&sv(&["gen", "--random", "40,3", "--seed", "4", "--out", pcn_s])).unwrap();
        // The 8x8 mesh is derived from the board spec.
        let out =
            run(&sv(&["map", pcn_s, "--out", placement_s, "--board", board])).unwrap();
        assert!(out.contains("placed 40 clusters on 8x8"), "{out}");
        assert!(out.contains("chips"), "{out}");

        // The board-aware validator accepts the result...
        let out =
            run(&sv(&["validate", pcn_s, placement_s, "--board", board])).unwrap();
        assert!(out.contains("placement valid"), "{out}");

        // ...and rejects it once the chip under it dies.
        let err = run(&sv(&[
            "validate", pcn_s, placement_s, "--board", board, "--faults", "chip:0",
        ]))
        .unwrap_err();
        assert_eq!(err.exit_code(), 3);
        assert!(err.to_string().contains("dead chip"), "{err}");

        // Mapping with the dead chip masked avoids it and validates clean.
        let out = run(&sv(&[
            "map", pcn_s, "--out", placement_s, "--board", board, "--faults", "chip:0",
        ]))
        .unwrap();
        assert!(out.contains("avoiding 16 dead core(s)"), "{out}");
        let out = run(&sv(&[
            "validate", pcn_s, placement_s, "--board", board, "--faults", "chip:0",
        ]))
        .unwrap();
        assert!(out.contains("placement valid"), "{out}");

        // Guards: disagreeing --mesh, chip faults without a board,
        // baseline methods, and flat capacity flags next to a board.
        let err = run(&sv(&[
            "map", pcn_s, "--out", placement_s, "--board", board, "--mesh", "9x9",
        ]))
        .unwrap_err();
        assert_eq!(err.exit_code(), 2);
        let err = run(&sv(&["map", pcn_s, "--out", placement_s, "--faults", "chip:0"]))
            .unwrap_err();
        assert_eq!(err.exit_code(), 2);
        let err = run(&sv(&[
            "map", pcn_s, "--out", placement_s, "--board", board, "--method", "random",
        ]))
        .unwrap_err();
        assert_eq!(err.exit_code(), 2);
        let err = run(&sv(&[
            "validate", pcn_s, placement_s, "--board", board, "--npc", "16",
        ]))
        .unwrap_err();
        assert_eq!(err.exit_code(), 2);
        let err = run(&sv(&["map", pcn_s, "--out", placement_s, "--board", "bogus"]))
            .unwrap_err();
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn map_with_explicit_method_and_mesh() {
        let dir = std::env::temp_dir().join("snnmap_cli_map");
        std::fs::create_dir_all(&dir).unwrap();
        let pcn = dir.join("app.pcn");
        let placement = dir.join("p.json");
        run(&sv(&["gen", "--random", "16,3", "--out", pcn.to_str().unwrap()])).unwrap();
        for method in ["random", "truenorth", "dfsynthesizer", "pso", "proposed"] {
            let out = run(&sv(&[
                "map",
                pcn.to_str().unwrap(),
                "--out",
                placement.to_str().unwrap(),
                "--method",
                method,
                "--mesh",
                "5x5",
                "--budget-secs",
                "5",
            ]))
            .unwrap();
            assert!(out.contains("placed"), "{method}: {out}");
        }
    }
}
