//! Property tests: every generated PCN and placement survives a format
//! round trip bit-exactly.

use proptest::prelude::*;
use snnmap_core::DegradedPlacement;
use snnmap_hw::{Coord, Mesh, Placement};
use snnmap_io::{
    parse_degraded, parse_pcn, parse_placement, render_degraded, render_pcn, render_placement,
};
use snnmap_model::PcnBuilder;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// PCN render/parse round trip preserves structure exactly.
    #[test]
    fn pcn_roundtrip(
        caps in prop::collection::vec((1u32..5000, 0u64..100_000), 1..40),
        edges in prop::collection::vec((0u32..40, 0u32..40, 0.01f32..100.0), 0..120),
    ) {
        let mut b = PcnBuilder::new();
        for &(n, s) in &caps {
            b.add_cluster(n, s);
        }
        let n = caps.len() as u32;
        for (f, t, w) in edges {
            b.add_edge(f % n, t % n, w).unwrap();
        }
        let pcn = b.build().unwrap();
        let back = parse_pcn(&render_pcn(&pcn)).unwrap();
        // Structure is preserved exactly; the aggregate intra-traffic is
        // serialized as one f32, so compare it with rounding tolerance
        // and everything else bit-exactly via the canonical rendering.
        prop_assert_eq!(render_pcn(&pcn), render_pcn(&back));
        prop_assert_eq!(pcn.num_clusters(), back.num_clusters());
        prop_assert_eq!(pcn.num_connections(), back.num_connections());
        prop_assert_eq!(pcn.total_traffic(), back.total_traffic());
        for c in 0..pcn.num_clusters() {
            prop_assert_eq!(pcn.neurons_in(c), back.neurons_in(c));
            prop_assert_eq!(pcn.synapses_in(c), back.synapses_in(c));
        }
        for (f, t, w) in pcn.iter_edges() {
            prop_assert_eq!(back.edge_weight(f, t), Some(w));
        }
        let d = (pcn.intra_traffic() - back.intra_traffic()).abs();
        prop_assert!(d <= 1e-6 * pcn.intra_traffic().max(1.0));
    }

    /// Placement render/parse round trip preserves coordinates exactly,
    /// including unplaced clusters.
    #[test]
    fn placement_roundtrip(
        rows in 1u16..20,
        cols in 1u16..20,
        picks in prop::collection::vec(any::<bool>(), 0..100),
    ) {
        let mesh = Mesh::new(rows, cols).unwrap();
        let n = picks.len().min(mesh.len()) as u32;
        let mut p = Placement::new_unplaced(mesh, n);
        let mut next = 0usize;
        for c in 0..n {
            if picks[c as usize] {
                p.place(c, mesh.coord_of_index(next)).unwrap();
                next += 1;
            }
        }
        let back = parse_placement(&render_placement(&p)).unwrap();
        prop_assert_eq!(&p, &back);
        back.check_consistency().unwrap();
        // Spot-check a coordinate survives.
        if n > 0 && picks[0] {
            prop_assert_eq!(back.coord_of(0), Some(Coord::new(0, 0)));
        }
    }

    /// Degraded-mode reports (the typed capacity-shortfall outcome of a
    /// board repair) round-trip bit-exactly and render byte-identically
    /// — the sha256 a CI job takes over the document is reproducible.
    #[test]
    fn degraded_roundtrip(
        raw in prop::collection::vec(0u32..100_000, 0..64),
        demand_neurons in 0u64..1_000_000,
        demand_synapses in 0u64..1_000_000,
        spare_neurons in 0u64..1_000_000,
        spare_synapses in 0u64..1_000_000,
    ) {
        let mut unplaced = raw;
        unplaced.sort_unstable();
        unplaced.dedup();
        let d = DegradedPlacement {
            unplaced,
            demand_neurons,
            demand_synapses,
            spare_neurons,
            spare_synapses,
        };
        let doc = render_degraded(&d);
        prop_assert_eq!(&doc, &render_degraded(&d), "rendering is not byte-deterministic");
        prop_assert_eq!(parse_degraded(&doc).unwrap(), d);
    }
}
