//! Corruption torture for the checkpoint format: a checkpoint file
//! truncated at **every** byte offset, or with a bit flipped at every
//! byte offset, is always rejected with a typed [`IoError`] — never a
//! panic and never a silently-wrong resume. The only acceptable `Ok` is
//! one whose canonical re-rendering is byte-identical to the original
//! document (e.g. a flip inside insignificant whitespace, which the
//! self-digest canonicalization absorbs).

use proptest::prelude::*;
use snnmap_core::FdCheckpoint;
use snnmap_hw::{Coord, Mesh};
use snnmap_io::{parse_checkpoint, render_checkpoint, CheckpointMeta, IoError};

fn sample_checkpoint() -> (FdCheckpoint, CheckpointMeta) {
    let mesh = Mesh::new(3, 4).unwrap();
    let coords: Vec<Coord> = (0..7).map(|i| mesh.coord_of_index(i)).collect();
    let forces = (0..7)
        .map(|i| {
            let b = i as f64;
            [0.1 + b, -b / 3.0, b * 1e-8, 1.0 / (b + 1.0)]
        })
        .collect();
    let cp = FdCheckpoint {
        mesh,
        coords,
        forces,
        sweeps: 5,
        swaps: 41,
        initial_energy: 987.125,
        energy: 0.1 + 0.2,
    };
    let meta = CheckpointMeta {
        config_digest: "cfg-0123456789abcdef".into(),
        pcn_digest: "pcn-fedcba9876543210".into(),
    };
    (cp, meta)
}

/// A corrupted parse is acceptable only as a typed error, or as an `Ok`
/// that is provably the same checkpoint (canonical re-render matches the
/// pristine document byte-for-byte).
fn assert_never_silently_wrong(mutated: &str, pristine: &str, what: &str) {
    match parse_checkpoint(mutated) {
        Err(
            IoError::Json(_)
            | IoError::Invalid { .. }
            | IoError::DuplicateKey { .. }
            | IoError::Parse { .. },
        ) => {}
        Err(other) => panic!("{what}: unexpected error variant {other:?}"),
        Ok((cp, meta)) => {
            assert_eq!(
                render_checkpoint(&cp, &meta),
                pristine,
                "{what}: parsed Ok but the result differs from the original"
            );
        }
    }
}

/// Every strict prefix of a checkpoint document is rejected (or, for
/// whitespace-only tail loss, yields the identical checkpoint).
#[test]
fn truncation_at_every_byte_offset_is_rejected() {
    let (cp, meta) = sample_checkpoint();
    let text = render_checkpoint(&cp, &meta);
    assert!(text.len() > 500, "sample must be non-trivial, got {} bytes", text.len());
    for cut in 0..text.len() {
        assert_never_silently_wrong(&text[..cut], &text, &format!("truncated at byte {cut}"));
    }
}

/// Flipping bits at every byte offset never panics and never yields a
/// different checkpoint. Three masks: low bit (digit/letter nudges), bit
/// 5 (case/punctuation swaps that often keep JSON well-formed), and the
/// high bit (non-ASCII garbage).
#[test]
fn bit_flip_at_every_byte_offset_is_rejected() {
    let (cp, meta) = sample_checkpoint();
    let text = render_checkpoint(&cp, &meta);
    for mask in [0x01u8, 0x20, 0x80] {
        for pos in 0..text.len() {
            let mut bytes = text.clone().into_bytes();
            bytes[pos] ^= mask;
            let Ok(mutated) = String::from_utf8(bytes) else {
                // parse_checkpoint takes &str; a flip producing invalid
                // UTF-8 is rejected upstream by the file read.
                continue;
            };
            if mutated == text {
                continue;
            }
            assert_never_silently_wrong(
                &mutated,
                &text,
                &format!("byte {pos} xor {mask:#04x}"),
            );
        }
    }
}

/// The digest actually bites: a value-level edit that still parses as a
/// structurally valid checkpoint is caught by `self_sha256` alone.
#[test]
fn clean_value_swap_is_caught_by_integrity_digest() {
    let (cp, meta) = sample_checkpoint();
    let text = render_checkpoint(&cp, &meta);
    let swapped = text.replacen("\"swaps\": 41", "\"swaps\": 14", 1);
    assert_ne!(swapped, text, "the edit must land");
    match parse_checkpoint(&swapped) {
        Err(IoError::Invalid { message }) => {
            assert!(message.contains("integrity digest"), "{message}");
        }
        other => panic!("value swap must fail the digest check, got {other:?}"),
    }
}

/// Pre-digest documents (no `self_sha256` field) still parse, so a
/// daemon upgraded mid-fleet can resume checkpoints its predecessor
/// wrote.
#[test]
fn legacy_checkpoint_without_digest_still_parses() {
    let (cp, meta) = sample_checkpoint();
    let text = render_checkpoint(&cp, &meta);
    let legacy: String = text
        .lines()
        .filter(|l| !l.contains("self_sha256"))
        .collect::<Vec<_>>()
        .join("\n");
    // Drop the now-trailing comma on the previous line.
    let legacy = {
        let idx = legacy.rfind("],").expect("forces_bits array close");
        let mut s = legacy;
        s.replace_range(idx..idx + 2, "]");
        s
    };
    let (back, back_meta) = parse_checkpoint(&legacy).expect("legacy doc parses");
    assert_eq!(back_meta, meta);
    assert_eq!(back.coords, cp.coords);
    assert_eq!(back.swaps, cp.swaps);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Random multi-byte corruptions (splices, overwrites, deletions at
    /// arbitrary offsets) are no stronger than the exhaustive single-byte
    /// sweeps: still a typed error or a provably identical checkpoint.
    #[test]
    fn random_splices_never_panic_or_lie(
        start in 0usize..2000,
        len in 1usize..64,
        replacement in prop::collection::vec(32u8..127, 0..64),
    ) {
        let (cp, meta) = sample_checkpoint();
        let text = render_checkpoint(&cp, &meta);
        let start = start % text.len();
        let end = (start + len).min(text.len());
        let mut bytes = text.as_bytes()[..start].to_vec();
        bytes.extend_from_slice(&replacement);
        bytes.extend_from_slice(&text.as_bytes()[end..]);
        let mutated = String::from_utf8(bytes).expect("printable ASCII splice");
        if mutated != text {
            assert_never_silently_wrong(&mutated, &text, "random splice");
        }
    }
}
