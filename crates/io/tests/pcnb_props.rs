//! Property tests for the binary PCN format.
//!
//! For random PCNs: `.pcnb → Pcn → .pcnb` must be byte-stable and agree
//! with the text format; truncating the document at *any* offset or
//! flipping *any* single bit must produce a typed [`IoError`] — never a
//! panic, and never a silently-accepted wrong graph (a body flip always
//! changes the FNV-1a state, whose byte-step is bijective, so the
//! trailing checksum catches whatever the structural validators miss).

use proptest::prelude::*;
use snnmap_io::{parse_pcn, parse_pcnb, render_pcn, render_pcnb, IoError};
use snnmap_model::generators::random_pcn;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn binary_round_trip_is_byte_stable_and_matches_text(
        n in 2u32..120,
        degree in 1.0f64..6.0,
        seed in 0u64..1000,
    ) {
        let pcn = random_pcn(n, degree, seed).expect("generator accepts these sizes");
        let bytes = render_pcnb(&pcn);
        let again = parse_pcnb(&bytes).expect("own rendering parses");
        prop_assert_eq!(&again, &pcn);
        prop_assert_eq!(render_pcnb(&again), bytes, "byte-stability");
        // Crossing through the binary format lands on the same text
        // rendering as the original graph.
        prop_assert_eq!(render_pcn(&again), render_pcn(&pcn));
        let via_text = parse_pcn(&render_pcn(&pcn)).expect("text rendering parses");
        prop_assert_eq!(via_text.num_connections(), again.num_connections());
    }

    #[test]
    fn truncation_anywhere_is_a_typed_error(
        n in 2u32..60,
        seed in 0u64..500,
        frac in 0.0f64..1.0,
    ) {
        let pcn = random_pcn(n, 3.0, seed).expect("generator accepts these sizes");
        let bytes = render_pcnb(&pcn);
        let cut = ((bytes.len() - 1) as f64 * frac) as usize;
        match parse_pcnb(&bytes[..cut]) {
            Err(IoError::Truncated { .. } | IoError::Corrupt { .. } | IoError::Invalid { .. }) => {}
            Ok(_) => prop_assert!(false, "a {cut}-byte prefix of {} parsed", bytes.len()),
            Err(other) => prop_assert!(false, "unexpected error kind: {other:?}"),
        }
    }

    #[test]
    fn single_bit_flips_are_always_rejected(
        n in 2u32..60,
        seed in 0u64..500,
        pos_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let pcn = random_pcn(n, 3.0, seed).expect("generator accepts these sizes");
        let mut bytes = render_pcnb(&pcn);
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= 1 << bit;
        match parse_pcnb(&bytes) {
            Err(IoError::Truncated { .. } | IoError::Corrupt { .. } | IoError::Invalid { .. }) => {}
            Ok(_) => prop_assert!(
                false,
                "flipping bit {bit} of byte {pos}/{} was silently accepted",
                bytes.len()
            ),
            Err(other) => prop_assert!(false, "unexpected error kind: {other:?}"),
        }
    }
}
