//! Duplicate-key detection for untrusted JSON documents.
//!
//! The vendored `serde_json` parser (like upstream in its default
//! configuration) resolves duplicate object keys last-write-wins. That
//! is fine for trusted artifacts but a classic smuggling vector for
//! network input: `{"rows": 4, ..., "rows": 60000}` passes a validator
//! that reads the first key and a consumer that reads the second. Every
//! JSON parser in this crate rejects duplicates up front via
//! [`reject_duplicate_keys`] instead.

use std::collections::HashSet;

use crate::IoError;

/// What the scanner expects next inside an object frame.
enum Frame {
    /// An object, with every key seen so far (raw, still escaped — two
    /// spellings of the same key that differ only in escape sequences
    /// are conservatively treated as distinct).
    Object { keys: HashSet<String>, expect_key: bool },
    /// An array; strings inside are values, never keys.
    Array,
}

/// Scans a JSON document and returns [`IoError::DuplicateKey`] if any
/// object repeats a key at the same nesting level.
///
/// The scan is purely lexical: it tracks object/array nesting and string
/// tokens but does not otherwise validate the document (the real parser
/// runs next and reports malformed JSON as [`IoError::Json`]). On text
/// that is not valid JSON the scanner simply finds no duplicates.
pub fn reject_duplicate_keys(text: &str) -> Result<(), IoError> {
    let mut stack: Vec<Frame> = Vec::new();
    let mut chars = text.char_indices();
    while let Some((start, c)) = chars.next() {
        match c {
            '{' => stack.push(Frame::Object { keys: HashSet::new(), expect_key: true }),
            '[' => stack.push(Frame::Array),
            '}' | ']' => {
                stack.pop();
            }
            ',' => {
                if let Some(Frame::Object { expect_key, .. }) = stack.last_mut() {
                    *expect_key = true;
                }
            }
            '"' => {
                // Consume the whole string token, honoring escapes.
                let mut end = None;
                while let Some((i, sc)) = chars.next() {
                    match sc {
                        '\\' => {
                            chars.next();
                        }
                        '"' => {
                            end = Some(i);
                            break;
                        }
                        _ => {}
                    }
                }
                let Some(end) = end else { return Ok(()) }; // unterminated: not JSON
                if let Some(Frame::Object { keys, expect_key }) = stack.last_mut() {
                    if *expect_key {
                        let key = &text[start + 1..end];
                        if !keys.insert(key.to_string()) {
                            return Err(IoError::DuplicateKey { key: key.to_string() });
                        }
                        *expect_key = false;
                    }
                }
            }
            _ => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_unique_keys_at_every_level() {
        reject_duplicate_keys(r#"{"a": 1, "b": {"a": 2}, "c": [{"a": 3}, {"a": 4}]}"#)
            .unwrap();
        reject_duplicate_keys("[]").unwrap();
        reject_duplicate_keys("42").unwrap();
        reject_duplicate_keys("not json at all").unwrap();
    }

    #[test]
    fn rejects_top_level_duplicates() {
        let err = reject_duplicate_keys(r#"{"rows": 4, "rows": 60000}"#).unwrap_err();
        match err {
            IoError::DuplicateKey { key } => assert_eq!(key, "rows"),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn rejects_nested_duplicates() {
        assert!(reject_duplicate_keys(r#"{"a": {"x": 1, "x": 2}}"#).is_err());
        assert!(reject_duplicate_keys(r#"[{"x": 1}, {"x": 1, "x": 2}]"#).is_err());
    }

    #[test]
    fn string_values_and_escapes_are_not_keys() {
        // The value "a" must not collide with the key "a".
        reject_duplicate_keys(r#"{"a": "a", "b": "a"}"#).unwrap();
        // Escaped quote inside a key does not end the token early.
        reject_duplicate_keys(r#"{"a\"": 1, "a": 2}"#).unwrap();
        assert!(reject_duplicate_keys(r#"{"a\"": 1, "a\"": 2}"#).is_err());
        // Braces inside strings are data, not structure.
        reject_duplicate_keys(r#"{"a": "}{", "b": "{"}"#).unwrap();
        // Unterminated string: scanner bails, parser reports the error.
        reject_duplicate_keys(r#"{"a": "unterminated"#).unwrap();
    }
}
