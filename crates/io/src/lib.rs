//! File formats for SNN-mapping artifacts.
//!
//! Two formats, both human-inspectable and round-trip-safe:
//!
//! * **PCN edge lists** (`.pcn`, [`read_pcn`] / [`write_pcn`]) — a plain
//!   text format describing a Partitioned Cluster Network: cluster
//!   capacities and weighted directed connections. This is the interface
//!   for bringing externally partitioned applications into the mapper
//!   (e.g. from a PyNN/SNNToolBox flow).
//! * **Binary PCN** (`.pcnb`, [`read_pcnb`] / [`write_pcnb`]) — the same
//!   data as a versioned, checksummed little-endian layout with
//!   length-prefixed CSR sections; a streaming buffered reader loads
//!   million-cluster networks without the text parser's per-line cost.
//!   `snnmap convert` translates between the two.
//! * **Placement JSON** ([`read_placement`] / [`write_placement`]) — the
//!   mesh dimensions and each cluster's core coordinates; the artifact a
//!   hardware loader consumes.
//! * **Fault-map JSON** ([`read_faults`] / [`write_faults`]) — dead cores
//!   and faulty mesh links; deterministic rendering makes equal fault
//!   maps byte-identical on disk.
//! * **Board JSON** ([`read_board`] / [`write_board`]) — a multi-chip
//!   board topology: the chip grid, per-chip core block, uniform
//!   per-core capacity and any heterogeneous overrides.
//! * **Degraded-placement JSON** ([`read_degraded`] /
//!   [`write_degraded`]) — the typed capacity-shortfall report a
//!   board-aware repair emits when a placement cannot be completed.
//! * **Checkpoint JSON** ([`read_checkpoint`] / [`write_checkpoint`]) —
//!   a Force-Directed run frozen at a sweep boundary, with `f64` values
//!   stored as bit patterns so kill-and-resume is bit-identical to an
//!   uninterrupted run.
//! * **Job JSON** ([`parse_job`] / [`render_job`]) — a mapping request
//!   (embedded PCN + proposed-method configuration), the body
//!   `snnmap-serve` accepts on `POST /jobs`.
//!
//! Every parser treats its input as untrusted: declared sizes are capped
//! (see [`MAX_MESH_CORES`] / [`MAX_CLUSTERS`]), duplicate declarations
//! and out-of-range coordinates are typed errors, never panics. JSON
//! parsers additionally reject duplicate object keys
//! ([`IoError::DuplicateKey`]) instead of resolving them
//! last-write-wins — network-facing input must not be able to show one
//! value to a validator and another to a consumer.
//!
//! # PCN format
//!
//! ```text
//! # comments and blank lines are ignored
//! pcn v1
//! clusters 3
//! cluster 0 128 4096      # id, neurons, stored synapses (optional line)
//! edge 0 1 12.5           # from, to, traffic weight
//! edge 1 2 3.0
//! ```
//!
//! Cluster lines are optional: clusters without one default to
//! 1 neuron / 0 synapses. Duplicate edges accumulate, matching
//! [`PcnBuilder`](snnmap_model::PcnBuilder) semantics.
//!
//! # Examples
//!
//! ```
//! use snnmap_io::{parse_pcn, render_pcn};
//!
//! let text = "pcn v1\nclusters 2\nedge 0 1 4.5\n";
//! let pcn = parse_pcn(text)?;
//! assert_eq!(pcn.num_clusters(), 2);
//! assert_eq!(pcn.edge_weight(0, 1), Some(4.5));
//!
//! // Round trip.
//! let again = parse_pcn(&render_pcn(&pcn))?;
//! assert_eq!(again.edge_weight(0, 1), Some(4.5));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod board_format;
mod checkpoint_format;
mod degraded_format;
mod dupkey;
mod error;
mod fault_format;
mod job_format;
mod limits;
mod pcn_format;
mod pcnb_format;
mod placement_format;
mod trace_format;

pub use board_format::{parse_board, read_board, render_board, write_board};
pub use checkpoint_format::{
    parse_checkpoint, read_checkpoint, render_checkpoint, write_checkpoint, CheckpointMeta,
};
pub use degraded_format::{
    parse_degraded, read_degraded, render_degraded, write_degraded,
};
pub use dupkey::reject_duplicate_keys;
pub use error::IoError;
pub use fault_format::{parse_faults, read_faults, render_faults, write_faults};
pub use job_format::{parse_job, render_job, JobSpec, JOB_INITS, JOB_POTENTIALS};
pub use limits::{MAX_CLUSTERS, MAX_MESH_CORES};
pub use pcn_format::{parse_pcn, read_pcn, render_pcn, write_pcn};
pub use pcnb_format::{
    parse_pcnb, read_pcnb, render_pcnb, write_pcnb, PCNB_MAGIC, PCNB_VERSION,
};
pub use placement_format::{
    parse_placement, read_placement, render_placement, write_placement,
};
pub use trace_format::{validate_trace, TraceSummary};
