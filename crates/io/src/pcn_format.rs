//! The `.pcn` text edge-list format.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use snnmap_model::{Pcn, PcnBuilder};

use crate::limits::MAX_CLUSTERS;
use crate::IoError;

/// Parses a PCN from its text representation (see the crate docs for the
/// grammar). The input is treated as untrusted: the declared cluster
/// count is capped at [`MAX_CLUSTERS`] so a hostile document cannot force
/// a huge allocation, and duplicate `clusters` / `cluster <id>` lines are
/// rejected rather than silently overwriting earlier ones.
///
/// # Errors
///
/// [`IoError::Parse`] with a line number for malformed lines, duplicate
/// declarations, and counts above [`MAX_CLUSTERS`]; [`IoError::Invalid`]
/// for structural violations (edge to an undeclared cluster, missing
/// header).
pub fn parse_pcn(text: &str) -> Result<Pcn, IoError> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.split('#').next().unwrap_or("").trim()))
        .filter(|(_, l)| !l.is_empty());

    let (line_no, header) = lines
        .next()
        .ok_or(IoError::Invalid { message: "empty document".into() })?;
    if header != "pcn v1" {
        return Err(IoError::Parse {
            line: line_no,
            message: format!("expected header `pcn v1`, got `{header}`"),
        });
    }

    let mut declared: Option<u32> = None;
    // (neurons, synapses) per cluster; defaulted lazily.
    let mut caps: Vec<(u32, u64)> = Vec::new();
    // Which clusters already had an explicit `cluster` line.
    let mut cap_set: Vec<bool> = Vec::new();
    let mut edges: Vec<(u32, u32, f32)> = Vec::new();

    for (line_no, line) in lines {
        let mut parts = line.split_whitespace();
        let Some(kind) = parts.next() else { continue };
        let mut field = |name: &str| {
            parts.next().ok_or(IoError::Parse {
                line: line_no,
                message: format!("missing field `{name}`"),
            })
        };
        match kind {
            "clusters" => {
                if declared.is_some() {
                    return Err(IoError::Parse {
                        line: line_no,
                        message: "duplicate `clusters` directive".into(),
                    });
                }
                let n: u32 = parse_field(field("count")?, line_no, "count")?;
                if n as usize > MAX_CLUSTERS {
                    return Err(IoError::Parse {
                        line: line_no,
                        message: format!(
                            "{n} clusters exceed the supported maximum of {MAX_CLUSTERS}"
                        ),
                    });
                }
                declared = Some(n);
                caps.resize(n as usize, (1, 0));
                cap_set.resize(n as usize, false);
            }
            "cluster" => {
                let id: u32 = parse_field(field("id")?, line_no, "id")?;
                let neurons: u32 = parse_field(field("neurons")?, line_no, "neurons")?;
                let synapses: u64 = parse_field(field("synapses")?, line_no, "synapses")?;
                let n = declared.ok_or(IoError::Parse {
                    line: line_no,
                    message: "`cluster` before `clusters <count>`".into(),
                })?;
                if id >= n {
                    return Err(IoError::Parse {
                        line: line_no,
                        message: format!("cluster id {id} outside declared count {n}"),
                    });
                }
                if cap_set[id as usize] {
                    return Err(IoError::Parse {
                        line: line_no,
                        message: format!("duplicate `cluster {id}` line"),
                    });
                }
                cap_set[id as usize] = true;
                caps[id as usize] = (neurons, synapses);
            }
            "edge" => {
                let from: u32 = parse_field(field("from")?, line_no, "from")?;
                let to: u32 = parse_field(field("to")?, line_no, "to")?;
                let weight: f32 = parse_field(field("weight")?, line_no, "weight")?;
                edges.push((from, to, weight));
            }
            "intra" => {
                // Aggregate intra-cluster traffic (self-loop bookkeeping);
                // recorded against cluster 0, which only affects the
                // aggregate the PCN exposes.
                let weight: f32 = parse_field(field("weight")?, line_no, "weight")?;
                edges.push((0, 0, weight));
            }
            other => {
                return Err(IoError::Parse {
                    line: line_no,
                    message: format!("unknown directive `{other}`"),
                })
            }
        }
        if let Some(extra) = parts.next() {
            return Err(IoError::Parse {
                line: line_no,
                message: format!("unexpected trailing field `{extra}`"),
            });
        }
    }

    let n = declared.ok_or(IoError::Invalid { message: "missing `clusters` line".into() })?;
    let mut b = PcnBuilder::with_capacity(n as usize, edges.len());
    for &(neurons, synapses) in &caps {
        b.add_cluster(neurons, synapses);
    }
    for (from, to, w) in edges {
        b.add_edge(from, to, w).map_err(|e| IoError::Invalid { message: e.to_string() })?;
    }
    b.build().map_err(|e| IoError::Invalid { message: e.to_string() })
}

fn parse_field<T: std::str::FromStr>(s: &str, line: usize, name: &str) -> Result<T, IoError> {
    s.parse().map_err(|_| IoError::Parse {
        line,
        message: format!("cannot parse `{s}` as {name}"),
    })
}

/// Renders a PCN to its text representation.
pub fn render_pcn(pcn: &Pcn) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# snnmap partitioned cluster network");
    let _ = writeln!(out, "pcn v1");
    let _ = writeln!(out, "clusters {}", pcn.num_clusters());
    for c in 0..pcn.num_clusters() {
        let (n, s) = (pcn.neurons_in(c), pcn.synapses_in(c));
        if (n, s) != (1, 0) {
            let _ = writeln!(out, "cluster {c} {n} {s}");
        }
    }
    for (f, t, w) in pcn.iter_edges() {
        let _ = writeln!(out, "edge {f} {t} {w}");
    }
    if pcn.intra_traffic() > 0.0 {
        let _ = writeln!(out, "intra {}", pcn.intra_traffic() as f32);
    }
    out
}

/// Reads a PCN from a `.pcn` file.
///
/// # Errors
///
/// [`IoError::Io`] for filesystem failures plus all [`parse_pcn`]
/// errors.
pub fn read_pcn(path: &Path) -> Result<Pcn, IoError> {
    parse_pcn(&fs::read_to_string(path)?)
}

/// Writes a PCN to a `.pcn` file.
///
/// # Errors
///
/// [`IoError::Io`] for filesystem failures.
pub fn write_pcn(path: &Path, pcn: &Pcn) -> Result<(), IoError> {
    Ok(fs::write(path, render_pcn(pcn))?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_document() {
        let pcn = parse_pcn("pcn v1\nclusters 2\nedge 0 1 2.5\n").unwrap();
        assert_eq!(pcn.num_clusters(), 2);
        assert_eq!(pcn.neurons_in(0), 1);
        assert_eq!(pcn.edge_weight(0, 1), Some(2.5));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "\n# header comment\npcn v1\n\nclusters 2 # two of them\nedge 0 1 1.0\n";
        assert!(parse_pcn(text).is_ok());
    }

    #[test]
    fn cluster_capacities_apply() {
        let text = "pcn v1\nclusters 2\ncluster 1 100 5000\nedge 0 1 1.0\n";
        let pcn = parse_pcn(text).unwrap();
        assert_eq!(pcn.neurons_in(0), 1);
        assert_eq!(pcn.neurons_in(1), 100);
        assert_eq!(pcn.synapses_in(1), 5000);
    }

    #[test]
    fn duplicate_edges_accumulate() {
        let pcn = parse_pcn("pcn v1\nclusters 2\nedge 0 1 1.0\nedge 0 1 2.0\n").unwrap();
        assert_eq!(pcn.edge_weight(0, 1), Some(3.0));
        assert_eq!(pcn.num_connections(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_pcn("pcn v1\nclusters 2\nedge 0 two 1.0\n").unwrap_err();
        match err {
            IoError::Parse { line, .. } => assert_eq!(line, 3),
            other => panic!("wrong error: {other}"),
        }
        assert!(parse_pcn("").is_err());
        assert!(parse_pcn("pcn v2\nclusters 1\n").is_err());
        assert!(parse_pcn("pcn v1\nclusters 1\nbogus 1 2\n").is_err());
        assert!(parse_pcn("pcn v1\ncluster 0 1 1\nclusters 1\n").is_err());
        assert!(parse_pcn("pcn v1\nclusters 1\nedge 0 0 1.0 extra\n").is_err());
        assert!(parse_pcn("pcn v1\nclusters 2\ncluster 5 1 1\n").is_err());
    }

    #[test]
    fn rejects_adversarial_documents() {
        // Allocation bomb: u32::MAX clusters would resize `caps` to
        // ~48 GiB. Must be a typed error, not an OOM.
        let err = parse_pcn("pcn v1\nclusters 4294967295\n").unwrap_err();
        match err {
            IoError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("exceed"), "{message}");
            }
            other => panic!("wrong error: {other}"),
        }
        // Duplicate `clusters` directive (could shrink/grow mid-parse).
        let err = parse_pcn("pcn v1\nclusters 2\nclusters 3\n").unwrap_err();
        assert!(matches!(err, IoError::Parse { line: 3, .. }), "{err}");
        // Duplicate `cluster <id>` (silent overwrite would hide data).
        let err =
            parse_pcn("pcn v1\nclusters 2\ncluster 0 1 1\ncluster 0 9 9\n").unwrap_err();
        assert!(matches!(err, IoError::Parse { line: 4, .. }), "{err}");
    }

    #[test]
    fn out_of_range_edge_is_invalid() {
        let err = parse_pcn("pcn v1\nclusters 2\nedge 0 7 1.0\n").unwrap_err();
        assert!(matches!(err, IoError::Invalid { .. }));
    }

    #[test]
    fn intra_traffic_roundtrips() {
        let pcn = parse_pcn("pcn v1\nclusters 2\nedge 0 1 1.0\nedge 1 1 4.5\n").unwrap();
        assert_eq!(pcn.intra_traffic(), 4.5);
        let back = parse_pcn(&render_pcn(&pcn)).unwrap();
        assert_eq!(back.intra_traffic(), 4.5);
        assert_eq!(pcn, back);
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let text = "pcn v1\nclusters 3\ncluster 0 64 1024\nedge 0 1 1.5\nedge 1 2 0.5\nedge 2 0 2.0\n";
        let a = parse_pcn(text).unwrap();
        let b = parse_pcn(&render_pcn(&a)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("snnmap_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.pcn");
        let pcn = parse_pcn("pcn v1\nclusters 2\nedge 0 1 1.0\n").unwrap();
        write_pcn(&path, &pcn).unwrap();
        assert_eq!(read_pcn(&path).unwrap(), pcn);
    }
}
