//! Mapping-job request JSON — the `POST /jobs` body `snnmap-serve`
//! accepts, and the document a spooled job is recovered from.
//!
//! A job bundles a PCN (embedded as the text format [`crate::parse_pcn`]
//! reads) with the mapper configuration knobs of `snnmap map --method
//! proposed`. Everything but the PCN is optional and defaults to the
//! CLI's defaults, so a minimal request is just
//! `{"format": "snnmap-job-v1", "pcn": "pcn v1\n..."}`.
//!
//! Parsing treats the document as untrusted network input: duplicate
//! JSON keys are rejected ([`IoError::DuplicateKey`]), mesh dimensions
//! go through the [`crate::MAX_MESH_CORES`] cap, the embedded PCN is
//! parsed with the hardened PCN reader, and every knob is validated with
//! a typed error before any mapping work is queued.

use serde::{Deserialize, Serialize};
use snnmap_core::Objective;
use snnmap_hw::{Board, Mesh};
use snnmap_model::Pcn;
use snnmap_trace::sha256_hex;

use crate::board_format::render_board;
use crate::limits::checked_mesh;
use crate::pcn_format::{parse_pcn, render_pcn};
use crate::{CheckpointMeta, IoError};

/// The format tag every job document must carry.
const FORMAT: &str = "snnmap-job-v1";

/// Initial-placement names accepted by [`parse_job`] (the CLI's
/// `--init` vocabulary).
pub const JOB_INITS: [&str; 5] = ["hilbert", "zigzag", "circle", "serpentine", "random"];

/// Potential names accepted by [`parse_job`] (the CLI's `--potential`
/// vocabulary).
pub const JOB_POTENTIALS: [&str; 4] = ["l1", "l1sq", "l2sq", "energy"];

/// A validated mapping job: the PCN to place plus the proposed-method
/// configuration. Produced by [`parse_job`]; field semantics match the
/// same-named `snnmap map` flags.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The cluster network to map.
    pub pcn: Pcn,
    /// Target mesh (defaults to the smallest square that fits).
    pub mesh: Mesh,
    /// Initial placement: one of [`JOB_INITS`].
    pub init: String,
    /// FD potential: one of [`JOB_POTENTIALS`].
    pub potential: String,
    /// Queue fraction λ in `(0, 1]`.
    pub lambda: f64,
    /// Seed for `init = "random"`.
    pub seed: u64,
    /// Worker threads for the FD engine (0 = auto).
    pub threads: usize,
    /// Optional sweep budget; the job finishes with the best-so-far
    /// placement when the cap is reached.
    pub max_sweeps: Option<u64>,
    /// Spool-checkpoint cadence in sweeps (0 disables periodic
    /// checkpoints; budgeted stops still flush one).
    pub checkpoint_every: u64,
    /// Optional multi-chip board (the `snnmap map --board` semantics):
    /// the mesh is the board's, the initial placement and FD refinement
    /// respect per-core capacities, and the job becomes a target for
    /// `POST /faults/chip` injection.
    pub board: Option<Board>,
    /// Refinement objective (the `snnmap map --objective` family).
    /// Defaults to pure energy, which keeps historical digests intact.
    pub objective: Objective,
    /// Sim-in-the-loop cadence in sweeps (the `snnmap map
    /// --sim-in-loop` semantics): every `k` sweeps a seeded NoC replay
    /// re-weights congested routers. Incompatible with spool
    /// checkpointing, so `checkpoint_every` defaults to 0 (and an
    /// explicit positive cadence is rejected) when this is set.
    pub sim_in_loop: Option<u64>,
}

/// The JSON document shape for a job request.
#[derive(Debug, Serialize, Deserialize)]
struct JobDoc {
    format: String,
    pcn: String,
    mesh: Option<String>,
    init: Option<String>,
    potential: Option<String>,
    lambda: Option<f64>,
    seed: Option<u64>,
    threads: Option<u64>,
    max_sweeps: Option<u64>,
    checkpoint_every: Option<u64>,
    board: Option<String>,
    objective: Option<String>,
    lambda_congestion: Option<f64>,
    lambda_latency: Option<f64>,
    sim_in_loop: Option<u64>,
}

/// The canonical topology-spec string for a board (`GxH/RxC@NPC,SPC` —
/// the `Board::parse` vocabulary). Per-core overrides are not
/// representable in a job document, so only the uniform capacity is
/// rendered; every board [`parse_job`] itself produces round-trips
/// exactly.
fn board_spec(board: &Board) -> String {
    let uniform = board.uniform_constraints();
    format!(
        "{}x{}/{}x{}@{},{}",
        board.grid_rows(),
        board.grid_cols(),
        board.chip_rows(),
        board.chip_cols(),
        uniform.neurons_per_core,
        uniform.synapses_per_core
    )
}

impl JobSpec {
    /// The provenance digests a checkpoint taken for this job carries —
    /// the same formula `snnmap map --checkpoint-out` stamps, so a
    /// spooled checkpoint can be cross-checked on recovery exactly like
    /// `snnmap resume` cross-checks a CLI checkpoint.
    pub fn provenance(&self) -> CheckpointMeta {
        let mut config = format!(
            "init={} potential={} lambda={} seed={} faults=none",
            self.init, self.potential, self.lambda, self.seed
        );
        // Board-constrained runs digest the full board topology (the
        // `snnmap map --board` formula); boardless configs keep their
        // historical digest value.
        if let Some(board) = &self.board {
            config.push_str(&format!(" board={}", sha256_hex(render_board(board).as_bytes())));
        }
        // Same append-only discipline for the objective family: the
        // default (pure energy, no reweighting) contributes nothing, so
        // pre-objective checkpoints keep verifying.
        if !(self.objective.is_energy() && self.sim_in_loop.is_none()) {
            let (_, lc, lt) = self.objective.weights();
            let rw = match self.sim_in_loop {
                Some(k) => format!(" reweight={k}"),
                None => String::new(),
            };
            config.push_str(&format!(
                " objective={} lc={lc} lt={lt}{rw}",
                self.objective.label()
            ));
        }
        CheckpointMeta {
            config_digest: sha256_hex(config.as_bytes()),
            pcn_digest: sha256_hex(render_pcn(&self.pcn).as_bytes()),
        }
    }
}

/// Renders a job spec back to request JSON (deterministic; the PCN is
/// embedded via [`render_pcn`], so `parse_job(render_job(s))` round
/// trips).
pub fn render_job(spec: &JobSpec) -> String {
    // λ knobs the objective ignores are omitted rather than rendered,
    // because `parse_job` (like the CLI) rejects them as dead weight.
    let (_, lc, lt) = spec.objective.weights();
    let doc = JobDoc {
        format: FORMAT.to_string(),
        pcn: render_pcn(&spec.pcn),
        mesh: Some(format!("{}x{}", spec.mesh.rows(), spec.mesh.cols())),
        init: Some(spec.init.clone()),
        potential: Some(spec.potential.clone()),
        lambda: Some(spec.lambda),
        seed: Some(spec.seed),
        threads: Some(spec.threads as u64),
        max_sweeps: spec.max_sweeps,
        checkpoint_every: Some(spec.checkpoint_every),
        board: spec.board.as_ref().map(board_spec),
        objective: Some(spec.objective.label().to_string()),
        lambda_congestion: (!spec.objective.is_energy()).then_some(lc),
        lambda_latency: (spec.objective.label() == "composite").then_some(lt),
        sim_in_loop: spec.sim_in_loop,
    };
    serde_json::to_string_pretty(&doc).expect("job doc always serializes")
}

/// Parses and validates a job request from JSON.
///
/// # Errors
///
/// [`IoError::DuplicateKey`] for repeated JSON keys, [`IoError::Json`]
/// for malformed JSON, [`IoError::Parse`] for a malformed embedded PCN,
/// and [`IoError::Invalid`] for a wrong format tag, an unknown
/// init/potential name, λ outside `(0, 1]`, a mesh that fails the
/// [`crate::MAX_MESH_CORES`] bound, a mesh too small for the PCN, a
/// malformed `board` topology spec, or a `mesh` that disagrees with the
/// board's.
pub fn parse_job(text: &str) -> Result<JobSpec, IoError> {
    crate::dupkey::reject_duplicate_keys(text)?;
    let doc: JobDoc = serde_json::from_str(text)?;
    if doc.format != FORMAT {
        return Err(IoError::Invalid { message: format!("unknown format tag `{}`", doc.format) });
    }
    let pcn = parse_pcn(&doc.pcn)?;
    let board = match doc.board.as_deref() {
        Some(spec) => Some(
            Board::parse(spec).map_err(|e| IoError::Invalid { message: e.to_string() })?,
        ),
        None => None,
    };
    let mesh = match (doc.mesh.as_deref(), &board) {
        (Some(spec), _) => {
            let (r, c) = spec.split_once(['x', 'X']).ok_or_else(|| IoError::Invalid {
                message: format!("mesh must be `<rows>x<cols>`, got `{spec}`"),
            })?;
            let rows: u16 = r.parse().map_err(|_| IoError::Invalid {
                message: format!("bad mesh rows `{r}`"),
            })?;
            let cols: u16 = c.parse().map_err(|_| IoError::Invalid {
                message: format!("bad mesh cols `{c}`"),
            })?;
            let mesh = checked_mesh(rows, cols)?;
            if let Some(board) = &board {
                if mesh != board.mesh() {
                    return Err(IoError::Invalid {
                        message: format!(
                            "mesh {mesh} disagrees with the board's {} mesh; \
                             omit `mesh` to derive it from `board`",
                            board.mesh()
                        ),
                    });
                }
            }
            mesh
        }
        // Boards go through the same dimension cap as explicit meshes —
        // `Board::parse` bounds each side at u16 but not the product.
        (None, Some(board)) => checked_mesh(board.mesh().rows(), board.mesh().cols())?,
        (None, None) => Mesh::square_for(u64::from(pcn.num_clusters()))
            .map_err(|e| IoError::Invalid { message: e.to_string() })?,
    };
    if (mesh.len() as u64) < u64::from(pcn.num_clusters()) {
        return Err(IoError::Invalid {
            message: format!(
                "{} clusters do not fit the {} cores of a {mesh} mesh",
                pcn.num_clusters(),
                mesh.len()
            ),
        });
    }
    let init = doc.init.unwrap_or_else(|| "hilbert".to_string());
    if !JOB_INITS.contains(&init.as_str()) {
        return Err(IoError::Invalid { message: format!("unknown init `{init}`") });
    }
    let potential = doc.potential.unwrap_or_else(|| "l2sq".to_string());
    if !JOB_POTENTIALS.contains(&potential.as_str()) {
        return Err(IoError::Invalid { message: format!("unknown potential `{potential}`") });
    }
    let lambda = doc.lambda.unwrap_or(0.3);
    if !(lambda > 0.0 && lambda <= 1.0) {
        return Err(IoError::Invalid {
            message: format!("lambda must be in (0, 1], got {lambda}"),
        });
    }
    let threads = doc.threads.unwrap_or(0);
    let threads = usize::try_from(threads).map_err(|_| IoError::Invalid {
        message: format!("thread count {threads} does not fit this platform"),
    })?;
    if let Some(0) = doc.max_sweeps {
        return Err(IoError::Invalid { message: "max_sweeps must be positive".into() });
    }
    let label = doc.objective.as_deref().unwrap_or("energy");
    if label == "energy" {
        for (name, set) in [
            ("lambda_congestion", doc.lambda_congestion.is_some()),
            ("lambda_latency", doc.lambda_latency.is_some()),
        ] {
            if set {
                return Err(IoError::Invalid {
                    message: format!("`{name}` has no effect with objective `energy`"),
                });
            }
        }
    }
    if label == "congestion" && doc.lambda_latency.is_some() {
        return Err(IoError::Invalid {
            message: "`lambda_latency` has no effect with objective `congestion`; \
                      use objective `composite`"
                .into(),
        });
    }
    let objective = Objective::from_parts(
        label,
        doc.lambda_congestion.unwrap_or(1.0),
        doc.lambda_latency.unwrap_or(0.0),
    )
    .ok_or_else(|| IoError::Invalid {
        message: format!("unknown objective `{label}` (energy, congestion, or composite)"),
    })?;
    objective.validate().map_err(|e| IoError::Invalid { message: e.to_string() })?;
    if let Some(0) = doc.sim_in_loop {
        return Err(IoError::Invalid { message: "sim_in_loop must be positive".into() });
    }
    if doc.sim_in_loop.is_some() && objective.is_energy() {
        return Err(IoError::Invalid {
            message: "sim_in_loop needs a congestion-aware objective \
                      (objective `congestion` or `composite`)"
                .into(),
        });
    }
    // The heat-derived weight field is not part of a checkpoint, so
    // sim-in-the-loop jobs are never spool-checkpointed.
    let checkpoint_every = match (doc.checkpoint_every, doc.sim_in_loop) {
        (Some(n), Some(_)) if n > 0 => {
            return Err(IoError::Invalid {
                message: "sim_in_loop jobs cannot be spool-checkpointed; \
                          omit checkpoint_every or set it to 0"
                    .into(),
            })
        }
        (Some(n), _) => n,
        (None, Some(_)) => 0,
        (None, None) => 4,
    };
    Ok(JobSpec {
        pcn,
        mesh,
        init,
        potential,
        lambda,
        seed: doc.seed.unwrap_or(42),
        threads,
        max_sweeps: doc.max_sweeps,
        checkpoint_every,
        board,
        objective,
        sim_in_loop: doc.sim_in_loop,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const PCN: &str = "pcn v1\nclusters 3\nedge 0 1 2.0\nedge 1 2 1.0\n";

    fn minimal(extra: &str) -> String {
        format!(
            "{{\"format\": \"snnmap-job-v1\", \"pcn\": \"pcn v1\\nclusters 3\\nedge 0 1 2.0\\nedge 1 2 1.0\\n\"{extra}}}"
        )
    }

    #[test]
    fn minimal_request_gets_cli_defaults() {
        let spec = parse_job(&minimal("")).unwrap();
        assert_eq!(spec.pcn.num_clusters(), 3);
        assert_eq!(spec.mesh, Mesh::square_for(3).unwrap());
        assert_eq!(spec.init, "hilbert");
        assert_eq!(spec.potential, "l2sq");
        assert_eq!(spec.lambda, 0.3);
        assert_eq!(spec.seed, 42);
        assert_eq!(spec.threads, 0);
        assert_eq!(spec.max_sweeps, None);
        assert_eq!(spec.checkpoint_every, 4);
        assert!(spec.objective.is_energy());
        assert_eq!(spec.sim_in_loop, None);
    }

    #[test]
    fn roundtrips_through_render() {
        let spec = parse_job(&minimal(
            ", \"mesh\": \"3x4\", \"init\": \"zigzag\", \"potential\": \"l1\", \
             \"lambda\": 0.5, \"seed\": 7, \"threads\": 2, \"max_sweeps\": 9, \
             \"checkpoint_every\": 1",
        ))
        .unwrap();
        let back = parse_job(&render_job(&spec)).unwrap();
        assert_eq!(back.mesh, spec.mesh);
        assert_eq!(back.init, spec.init);
        assert_eq!(back.potential, spec.potential);
        assert_eq!(back.lambda, spec.lambda);
        assert_eq!(back.seed, spec.seed);
        assert_eq!(back.threads, spec.threads);
        assert_eq!(back.max_sweeps, spec.max_sweeps);
        assert_eq!(back.checkpoint_every, spec.checkpoint_every);
        assert_eq!(back.provenance(), spec.provenance());
        assert_eq!(render_pcn(&back.pcn), render_pcn(&parse_pcn(PCN).unwrap()));
    }

    #[test]
    fn provenance_matches_the_cli_formula() {
        let spec = parse_job(&minimal("")).unwrap();
        let meta = spec.provenance();
        let config = "init=hilbert potential=l2sq lambda=0.3 seed=42 faults=none";
        assert_eq!(meta.config_digest, sha256_hex(config.as_bytes()));
        // The PCN digest covers the *canonical* rendering, exactly like
        // `snnmap map --checkpoint-out` digests its parsed input.
        let canonical = render_pcn(&parse_pcn(PCN).unwrap());
        assert_eq!(meta.pcn_digest, sha256_hex(canonical.as_bytes()));
    }

    #[test]
    fn board_jobs_parse_render_and_digest_the_topology() {
        // The mesh derives from the board when omitted.
        let spec = parse_job(&minimal(", \"board\": \"1x2/2x2@64,1024\"")).unwrap();
        let board = spec.board.clone().expect("board parsed");
        assert_eq!(spec.mesh, board.mesh());
        assert_eq!((spec.mesh.rows(), spec.mesh.cols()), (2, 4));
        // Round trip through render_job preserves the board exactly.
        let back = parse_job(&render_job(&spec)).unwrap();
        assert_eq!(back.board, spec.board);
        assert_eq!(back.provenance(), spec.provenance());
        // An explicit matching mesh is accepted; a disagreeing one is not.
        assert!(parse_job(&minimal(
            ", \"board\": \"1x2/2x2@64,1024\", \"mesh\": \"2x4\""
        ))
        .is_ok());
        let err = parse_job(&minimal(
            ", \"board\": \"1x2/2x2@64,1024\", \"mesh\": \"3x3\""
        ))
        .unwrap_err();
        assert!(matches!(err, IoError::Invalid { .. }), "{err:?}");
        // The board changes the provenance digest; boardless digests keep
        // their historical formula (see `provenance_matches_the_cli_formula`).
        let boardless = parse_job(&minimal("")).unwrap();
        assert_ne!(spec.provenance().config_digest, boardless.provenance().config_digest);
        assert_eq!(spec.provenance().pcn_digest, boardless.provenance().pcn_digest);
        // Named presets work too.
        let preset = parse_job(&minimal(", \"board\": \"dynaps:2x2\"")).unwrap();
        assert!(preset.board.is_some());
        // A malformed spec is a typed error.
        let err = parse_job(&minimal(", \"board\": \"bogus/spec\"")).unwrap_err();
        assert!(matches!(err, IoError::Invalid { .. }), "{err:?}");
    }

    #[test]
    fn objective_jobs_roundtrip_and_extend_the_digest_append_only() {
        let spec = parse_job(&minimal(
            ", \"objective\": \"composite\", \"lambda_congestion\": 2.0, \
             \"lambda_latency\": 0.5, \"sim_in_loop\": 4",
        ))
        .unwrap();
        assert_eq!(spec.objective.label(), "composite");
        assert_eq!(spec.objective.weights(), (1.0, 2.0, 0.5));
        assert_eq!(spec.sim_in_loop, Some(4));
        // sim_in_loop jobs default to no spool checkpoints.
        assert_eq!(spec.checkpoint_every, 0);
        let back = parse_job(&render_job(&spec)).unwrap();
        assert_eq!(back.objective, spec.objective);
        assert_eq!(back.sim_in_loop, spec.sim_in_loop);
        assert_eq!(back.provenance(), spec.provenance());
        // The digest extends the boardless formula append-only, exactly
        // like the CLI's `--objective` family.
        let config = "init=hilbert potential=l2sq lambda=0.3 seed=42 faults=none \
                      objective=composite lc=2 lt=0.5 reweight=4";
        assert_eq!(spec.provenance().config_digest, sha256_hex(config.as_bytes()));
        // A pure-congestion job digests without the reweight suffix.
        let cong = parse_job(&minimal(", \"objective\": \"congestion\"")).unwrap();
        assert_eq!(cong.objective.label(), "congestion");
        let config = "init=hilbert potential=l2sq lambda=0.3 seed=42 faults=none \
                      objective=congestion lc=1 lt=0";
        assert_eq!(cong.provenance().config_digest, sha256_hex(config.as_bytes()));
        // ...and still spool-checkpoints on the default cadence.
        assert_eq!(cong.checkpoint_every, 4);
    }

    #[test]
    fn rejects_inconsistent_objective_requests() {
        // λ knobs the objective ignores are dead weight, not silence.
        assert!(parse_job(&minimal(", \"lambda_congestion\": 1.0")).is_err());
        assert!(parse_job(&minimal(", \"lambda_latency\": 1.0")).is_err());
        assert!(parse_job(&minimal(
            ", \"objective\": \"congestion\", \"lambda_latency\": 1.0"
        ))
        .is_err());
        // Unknown labels and out-of-range weights.
        assert!(parse_job(&minimal(", \"objective\": \"bandwidth\"")).is_err());
        assert!(parse_job(&minimal(
            ", \"objective\": \"composite\", \"lambda_congestion\": -1.0"
        ))
        .is_err());
        // Reweighting needs a congestion-aware objective and a positive
        // cadence, and cannot coexist with spool checkpoints.
        assert!(parse_job(&minimal(", \"sim_in_loop\": 4")).is_err());
        assert!(parse_job(&minimal(
            ", \"objective\": \"congestion\", \"sim_in_loop\": 0"
        ))
        .is_err());
        assert!(parse_job(&minimal(
            ", \"objective\": \"congestion\", \"sim_in_loop\": 4, \"checkpoint_every\": 2"
        ))
        .is_err());
        // An explicit 0 cadence is the documented escape hatch.
        let spec = parse_job(&minimal(
            ", \"objective\": \"congestion\", \"sim_in_loop\": 4, \"checkpoint_every\": 0"
        ))
        .unwrap();
        assert_eq!(spec.checkpoint_every, 0);
    }

    #[test]
    fn rejects_adversarial_requests() {
        // Duplicate key smuggling.
        let err = parse_job(&minimal(", \"seed\": 1, \"seed\": 2")).unwrap_err();
        assert!(matches!(err, IoError::DuplicateKey { .. }), "{err:?}");
        // Wrong format tag.
        let bad = minimal("").replacen("snnmap-job-v1", "snnmap-job-v9", 1);
        assert!(matches!(parse_job(&bad), Err(IoError::Invalid { .. })));
        // Dimension bomb.
        let err = parse_job(&minimal(", \"mesh\": \"65535x65535\"")).unwrap_err();
        assert!(matches!(err, IoError::Invalid { .. }), "{err:?}");
        // Mesh too small for the PCN.
        assert!(parse_job(&minimal(", \"mesh\": \"1x2\"")).is_err());
        // Unknown knob values and a bad λ.
        assert!(parse_job(&minimal(", \"init\": \"spiral\"")).is_err());
        assert!(parse_job(&minimal(", \"potential\": \"l3\"")).is_err());
        assert!(parse_job(&minimal(", \"lambda\": 0.0")).is_err());
        assert!(parse_job(&minimal(", \"max_sweeps\": 0")).is_err());
        // Malformed embedded PCN.
        let err =
            parse_job("{\"format\": \"snnmap-job-v1\", \"pcn\": \"garbage\"}").unwrap_err();
        assert!(matches!(err, IoError::Parse { .. }), "{err:?}");
        // Not JSON at all.
        assert!(matches!(parse_job("nope"), Err(IoError::Json(_))));
    }
}
