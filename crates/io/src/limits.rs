//! Allocation guards for untrusted documents.
//!
//! Every parser in this crate allocates buffers sized by numbers read
//! from the document (`clusters 4294967295`, a 65535×65535 mesh). A
//! hostile or corrupt file must produce a typed [`IoError`], not a
//! multi-gigabyte allocation, so declared sizes are capped well above
//! the paper's 1 M-core scale but far below anything that could hurt.

use snnmap_hw::Mesh;

use crate::IoError;

/// Largest mesh area (rows × cols) a document may declare: 2²⁴ cores,
/// 16× the paper's million-core target.
pub const MAX_MESH_CORES: usize = 1 << 24;

/// Largest cluster count a document may declare, matching
/// [`MAX_MESH_CORES`] (a placement is injective, so more clusters than
/// cores can never be mapped anyway).
pub const MAX_CLUSTERS: usize = 1 << 24;

/// Builds the mesh a document declares, refusing dimension bombs.
pub(crate) fn checked_mesh(rows: u16, cols: u16) -> Result<Mesh, IoError> {
    let area = rows as usize * cols as usize;
    if area > MAX_MESH_CORES {
        return Err(IoError::Invalid {
            message: format!(
                "mesh {rows}x{cols} ({area} cores) exceeds the supported \
                 maximum of {MAX_MESH_CORES}"
            ),
        });
    }
    Mesh::new(rows, cols).map_err(|e| IoError::Invalid { message: e.to_string() })
}
