//! The binary PCN format (`.pcnb`).
//!
//! At million-core scale the text `.pcn` parser dominates wall clock —
//! every edge costs a line split and three decimal parses. `.pcnb` is the
//! same data as a versioned little-endian binary layout that loads with
//! bulk byte-to-integer conversions instead:
//!
//! ```text
//! magic      8 bytes  "SNNPCNB\0"
//! version    u32      1
//! clusters   u32      n
//! edges      u64      m
//! intra      f64      intra-cluster traffic total (bit-exact)
//! — clusters section —
//! length     u64      must equal 12·n
//! neurons    u32 × n
//! synapses   u64 × n
//! — edges section (out-CSR, canonical) —
//! length     u64      must equal 8·(n+1) + 12·m
//! offsets    u64 × (n+1)   monotone, offsets[0] = 0, offsets[n] = m
//! targets    u32 × m       per row: strictly increasing, ≠ row, < n
//! weights    f32 × m       finite, ≥ 0
//! checksum   u64      FNV-1a over every preceding byte
//! ```
//!
//! The CSR is **canonical** — exactly what [`PcnBuilder`] produces — so
//! `.pcnb → Pcn → .pcnb` is byte-identical, and `intra` carries the `f64`
//! total bit-exactly (the text format rounds it through `f32`).
//!
//! The reader streams through any [`Read`] with a bounded scratch buffer
//! (no mmap, no size-`m` trust): allocations grow with bytes actually
//! read, so a 100-byte file claiming 2⁶⁰ edges fails with
//! [`IoError::Truncated`] instead of an allocation bomb. Every other
//! inconsistency — bad magic, section-length contradictions,
//! non-canonical CSR, bit flips (caught by the checksum), trailing
//! garbage — is a typed [`IoError`], never a panic.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use snnmap_model::{Pcn, PcnBuilder};

use crate::limits::MAX_CLUSTERS;
use crate::IoError;

/// The 8-byte magic that opens every `.pcnb` document.
pub const PCNB_MAGIC: [u8; 8] = *b"SNNPCNB\0";

/// The format version this build reads and writes.
pub const PCNB_VERSION: u32 = 1;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

fn fnv1a(hash: u64, bytes: &[u8]) -> u64 {
    bytes.iter().fold(hash, |h, &b| (h ^ u64::from(b)).wrapping_mul(FNV_PRIME))
}

/// Serializes a PCN to the `.pcnb` byte layout. Deterministic: equal PCNs
/// render byte-identically.
pub fn render_pcnb(pcn: &Pcn) -> Vec<u8> {
    let n = pcn.num_clusters() as usize;
    let m = pcn.num_connections() as usize;
    let clusters_len = 12 * n as u64;
    let edges_len = 8 * (n as u64 + 1) + 12 * m as u64;
    let mut out = Vec::with_capacity(32 + 8 + clusters_len as usize + 8 + edges_len as usize + 8);
    out.extend_from_slice(&PCNB_MAGIC);
    out.extend_from_slice(&PCNB_VERSION.to_le_bytes());
    out.extend_from_slice(&(n as u32).to_le_bytes());
    out.extend_from_slice(&(m as u64).to_le_bytes());
    out.extend_from_slice(&pcn.intra_traffic().to_le_bytes());

    out.extend_from_slice(&clusters_len.to_le_bytes());
    for c in 0..n as u32 {
        out.extend_from_slice(&pcn.neurons_in(c).to_le_bytes());
    }
    for c in 0..n as u32 {
        out.extend_from_slice(&pcn.synapses_in(c).to_le_bytes());
    }

    out.extend_from_slice(&edges_len.to_le_bytes());
    let mut offset = 0u64;
    out.extend_from_slice(&offset.to_le_bytes());
    for c in 0..n as u32 {
        offset += pcn.out_edges(c).count() as u64;
        out.extend_from_slice(&offset.to_le_bytes());
    }
    for c in 0..n as u32 {
        for (t, _) in pcn.out_edges(c) {
            out.extend_from_slice(&t.to_le_bytes());
        }
    }
    for c in 0..n as u32 {
        for (_, w) in pcn.out_edges(c) {
            out.extend_from_slice(&w.to_le_bytes());
        }
    }

    let checksum = fnv1a(FNV_OFFSET, &out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Writes `pcn` to `path` in the `.pcnb` format.
///
/// # Errors
///
/// [`IoError::Io`] on filesystem failures.
pub fn write_pcnb(path: impl AsRef<Path>, pcn: &Pcn) -> Result<(), IoError> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(&render_pcnb(pcn))?;
    w.flush()?;
    Ok(())
}

/// Parses a `.pcnb` document from a byte slice (see [`read_pcnb`] for the
/// streaming file variant).
///
/// # Errors
///
/// [`IoError::Truncated`] when the input ends inside a section,
/// [`IoError::Corrupt`] for magic/version/length/CSR/checksum violations,
/// [`IoError::Invalid`] for declared sizes above [`MAX_CLUSTERS`].
pub fn parse_pcnb(bytes: &[u8]) -> Result<Pcn, IoError> {
    parse_pcnb_from(bytes)
}

/// Reads a `.pcnb` file through a buffered streaming reader.
///
/// # Errors
///
/// As [`parse_pcnb`], plus [`IoError::Io`] on filesystem failures.
pub fn read_pcnb(path: impl AsRef<Path>) -> Result<Pcn, IoError> {
    parse_pcnb_from(BufReader::new(File::open(path)?))
}

/// Streaming `.pcnb` parser over any [`Read`].
fn parse_pcnb_from<R: Read>(reader: R) -> Result<Pcn, IoError> {
    let mut r = HashingReader { inner: reader, hash: FNV_OFFSET };

    let mut head = [0u8; 32];
    r.read_exact_hashed(&mut head, "header")?;
    if head[..8] != PCNB_MAGIC {
        return Err(IoError::Corrupt {
            message: format!("bad magic {:02x?}, expected \"SNNPCNB\\0\"", &head[..8]),
        });
    }
    let version = u32::from_le_bytes(head[8..12].try_into().expect("4 bytes"));
    if version != PCNB_VERSION {
        return Err(IoError::Corrupt {
            message: format!("unsupported pcnb version {version}, this build reads {PCNB_VERSION}"),
        });
    }
    let n = u32::from_le_bytes(head[12..16].try_into().expect("4 bytes")) as usize;
    let m = u64::from_le_bytes(head[16..24].try_into().expect("8 bytes"));
    let intra = f64::from_le_bytes(head[24..32].try_into().expect("8 bytes"));
    if n == 0 {
        return Err(IoError::Corrupt { message: "pcnb declares zero clusters".into() });
    }
    if n > MAX_CLUSTERS {
        return Err(IoError::Invalid {
            message: format!("{n} clusters exceeds the supported maximum of {MAX_CLUSTERS}"),
        });
    }
    if !intra.is_finite() || intra < 0.0 {
        return Err(IoError::Corrupt {
            message: format!("intra traffic {intra} is not a finite non-negative number"),
        });
    }

    let clusters_len = r.read_u64("clusters")?;
    if clusters_len != 12 * n as u64 {
        return Err(IoError::Corrupt {
            message: format!(
                "clusters section declares {clusters_len} bytes but {n} clusters need {}",
                12 * n as u64
            ),
        });
    }
    let cluster_bytes = r.read_section(clusters_len, "clusters")?;
    let (neuron_bytes, synapse_bytes) = cluster_bytes.split_at(4 * n);
    let neurons: Vec<u32> = le_u32s(neuron_bytes);
    let synapses: Vec<u64> = le_u64s(synapse_bytes);

    let edges_len = r.read_u64("edges")?;
    let expect_edges_len = 12u64
        .checked_mul(m)
        .and_then(|x| x.checked_add(8 * (n as u64 + 1)))
        .ok_or_else(|| IoError::Corrupt {
            message: format!("{m} edges overflow the section arithmetic"),
        })?;
    if edges_len != expect_edges_len {
        return Err(IoError::Corrupt {
            message: format!(
                "edges section declares {edges_len} bytes but {m} edges over {n} clusters \
                 need {expect_edges_len}"
            ),
        });
    }
    // Offsets first: they are sized by n (already capped), and checking
    // them against m up front means the target/weight arrays — the only
    // m-sized allocations — are never larger than the bytes the document
    // actually delivers.
    let offset_bytes = r.read_section(8 * (n as u64 + 1), "edges")?;
    let offsets: Vec<u64> = le_u64s(&offset_bytes);
    if offsets[0] != 0 || offsets[n] != m {
        return Err(IoError::Corrupt {
            message: format!(
                "CSR offsets must run 0..={m}, got {}..={}",
                offsets[0], offsets[n]
            ),
        });
    }
    for w in offsets.windows(2) {
        if w[1] < w[0] {
            return Err(IoError::Corrupt {
                message: format!("CSR offsets must be monotone, got {} after {}", w[1], w[0]),
            });
        }
    }
    let m_usize = usize::try_from(m)
        .map_err(|_| IoError::Invalid { message: format!("{m} edges exceed the address space") })?;
    let target_bytes = r.read_section(4 * m, "edges")?;
    let targets: Vec<u32> = le_u32s(&target_bytes);
    let weight_bytes = r.read_section(4 * m, "edges")?;

    let computed = r.hash;
    let declared = r.read_u64("checksum")?;
    if declared != computed {
        return Err(IoError::Corrupt {
            message: format!("checksum mismatch: document says {declared:#018x}, bytes hash to {computed:#018x}"),
        });
    }
    let mut one = [0u8; 1];
    if r.inner.read(&mut one)? != 0 {
        return Err(IoError::Corrupt {
            message: "trailing bytes after the checksum".into(),
        });
    }

    // Semantic validation + reconstruction.
    let mut b = PcnBuilder::with_capacity(n, m_usize);
    for c in 0..n {
        b.add_cluster(neurons[c], synapses[c]);
    }
    for row in 0..n {
        let (lo, hi) = (offsets[row] as usize, offsets[row + 1] as usize);
        let mut prev: Option<u32> = None;
        for k in lo..hi {
            let t = targets[k];
            if t as usize >= n {
                return Err(IoError::Corrupt {
                    message: format!("edge {row} → {t} targets a cluster outside 0..{n}"),
                });
            }
            if t as usize == row {
                return Err(IoError::Corrupt {
                    message: format!("self-loop {row} → {t}: intra traffic belongs in the header"),
                });
            }
            if prev.is_some_and(|p| t <= p) {
                return Err(IoError::Corrupt {
                    message: format!(
                        "row {row} targets must be strictly increasing (canonical CSR), \
                         got {t} after {}",
                        prev.unwrap_or(0)
                    ),
                });
            }
            prev = Some(t);
            let w = f32::from_le_bytes(weight_bytes[4 * k..4 * k + 4].try_into().expect("4 bytes"));
            if !w.is_finite() || w < 0.0 {
                return Err(IoError::Corrupt {
                    message: format!("edge {row} → {t} weight {w} is not finite and non-negative"),
                });
            }
            b.add_edge(row as u32, t, w)
                .map_err(|e| IoError::Corrupt { message: e.to_string() })?;
        }
    }
    b.add_intra(intra).map_err(|e| IoError::Corrupt { message: e.to_string() })?;
    b.build().map_err(|e| IoError::Corrupt { message: e.to_string() })
}

fn le_u32s(bytes: &[u8]) -> Vec<u32> {
    bytes.chunks_exact(4).map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes"))).collect()
}

fn le_u64s(bytes: &[u8]) -> Vec<u64> {
    bytes.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes"))).collect()
}

/// A [`Read`] wrapper that folds every byte it delivers into a running
/// FNV-1a hash, so the checksum verifies against exactly the bytes the
/// parser consumed.
struct HashingReader<R> {
    inner: R,
    hash: u64,
}

impl<R: Read> HashingReader<R> {
    fn read_exact_hashed(&mut self, buf: &mut [u8], section: &str) -> Result<(), IoError> {
        self.inner.read_exact(buf).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                IoError::Truncated { section: section.to_owned() }
            } else {
                IoError::Io(e)
            }
        })?;
        self.hash = fnv1a(self.hash, buf);
        Ok(())
    }

    fn read_u64(&mut self, section: &str) -> Result<u64, IoError> {
        let mut buf = [0u8; 8];
        self.read_exact_hashed(&mut buf, section)?;
        Ok(u64::from_le_bytes(buf))
    }

    /// Reads a `len`-byte section in bounded chunks: memory grows with
    /// bytes actually delivered, never with a hostile declared size.
    fn read_section(&mut self, len: u64, section: &str) -> Result<Vec<u8>, IoError> {
        const CHUNK: usize = 64 * 1024;
        let len = usize::try_from(len).map_err(|_| IoError::Invalid {
            message: format!("{len}-byte section exceeds the address space"),
        })?;
        let mut out = Vec::with_capacity(len.min(CHUNK));
        let mut chunk = vec![0u8; CHUNK.min(len.max(1))];
        let mut remaining = len;
        while remaining > 0 {
            let take = remaining.min(chunk.len());
            self.read_exact_hashed(&mut chunk[..take], section)?;
            out.extend_from_slice(&chunk[..take]);
            remaining -= take;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snnmap_model::generators::random_pcn;

    fn sample() -> Pcn {
        let mut b = PcnBuilder::new();
        b.add_cluster(100, 5_000);
        b.add_cluster(80, 4_000);
        b.add_cluster(120, 6_000);
        b.add_edge(0, 1, 10.5).unwrap();
        b.add_edge(1, 2, 4.25).unwrap();
        b.add_edge(0, 2, 2.0).unwrap();
        b.add_intra(1.000_000_000_123_456_7).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn round_trip_is_byte_stable() {
        let pcn = sample();
        let bytes = render_pcnb(&pcn);
        let again = parse_pcnb(&bytes).unwrap();
        assert_eq!(again, pcn);
        assert_eq!(render_pcnb(&again), bytes, "pcnb → Pcn → pcnb must be byte-identical");
        // The f64 intra total survives bit-exactly.
        assert_eq!(again.intra_traffic().to_bits(), pcn.intra_traffic().to_bits());
    }

    #[test]
    fn text_and_binary_agree_on_the_graph() {
        let pcn = random_pcn(200, 5.0, 42).unwrap();
        let via_binary = parse_pcnb(&render_pcnb(&pcn)).unwrap();
        let via_text = crate::parse_pcn(&crate::render_pcn(&pcn)).unwrap();
        assert_eq!(via_binary.num_clusters(), via_text.num_clusters());
        assert_eq!(via_binary.num_connections(), via_text.num_connections());
        for (f, t, w) in via_binary.iter_edges() {
            assert_eq!(via_text.edge_weight(f, t), Some(w));
        }
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join(format!("snnmap_pcnb_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("net.pcnb");
        let pcn = sample();
        write_pcnb(&path, &pcn).unwrap();
        let again = read_pcnb(&path).unwrap();
        assert_eq!(again, pcn);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_magic_and_version_are_corrupt() {
        let mut bytes = render_pcnb(&sample());
        bytes[0] ^= 0xff;
        assert!(matches!(parse_pcnb(&bytes), Err(IoError::Corrupt { .. })));
        let mut bytes = render_pcnb(&sample());
        bytes[8] = 99; // version
        assert!(matches!(parse_pcnb(&bytes), Err(IoError::Corrupt { .. })));
    }

    #[test]
    fn truncation_is_typed() {
        let bytes = render_pcnb(&sample());
        for cut in [0, 7, 31, 40, bytes.len() / 2, bytes.len() - 1] {
            match parse_pcnb(&bytes[..cut]) {
                Err(IoError::Truncated { .. }) => {}
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn trailing_bytes_are_corrupt() {
        let mut bytes = render_pcnb(&sample());
        bytes.push(0);
        assert!(matches!(parse_pcnb(&bytes), Err(IoError::Corrupt { .. })));
    }

    #[test]
    fn declared_size_bombs_fail_without_allocating() {
        // A tiny document claiming 2^60 edges must die on missing bytes,
        // not on a 2^60-sized allocation.
        let mut bytes = render_pcnb(&sample());
        bytes[16..24].copy_from_slice(&(1u64 << 60).to_le_bytes());
        assert!(matches!(
            parse_pcnb(&bytes),
            Err(IoError::Corrupt { .. } | IoError::Truncated { .. })
        ));
        // Oversized cluster count is rejected up front.
        let mut bytes = render_pcnb(&sample());
        bytes[12..16].copy_from_slice(&(MAX_CLUSTERS as u32 + 1).to_le_bytes());
        assert!(matches!(parse_pcnb(&bytes), Err(IoError::Invalid { .. })));
    }

    #[test]
    fn non_canonical_csr_is_rejected() {
        // Swap the two targets of row 0 (and fix the checksum) so the CSR
        // is structurally sound but out of order.
        let pcn = sample();
        let mut bytes = render_pcnb(&pcn);
        let n = 3usize;
        let targets_at = 32 + 8 + 12 * n + 8 + 8 * (n + 1);
        let (a, b) = (targets_at, targets_at + 4);
        let (ta, tb): ([u8; 4], [u8; 4]) =
            (bytes[a..a + 4].try_into().unwrap(), bytes[b..b + 4].try_into().unwrap());
        bytes[a..a + 4].copy_from_slice(&tb);
        bytes[b..b + 4].copy_from_slice(&ta);
        let body_len = bytes.len() - 8;
        let fixed = fnv1a(FNV_OFFSET, &bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&fixed.to_le_bytes());
        let err = parse_pcnb(&bytes).unwrap_err();
        assert!(matches!(err, IoError::Corrupt { .. }), "{err}");
        assert!(err.to_string().contains("strictly increasing"), "{err}");
    }
}
