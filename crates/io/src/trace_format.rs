//! Validation of trace JSONL streams against the versioned schema.
//!
//! A trace stream (see `snnmap-trace`) is one JSON object per line with a
//! fixed field order; [`validate_trace`] checks a stream line by line
//! against [`snnmap_trace::schema`] so CI (and users) can assert a
//! `--trace-out` file is well-formed without external tooling.

use serde_json::Value;
use snnmap_trace::schema;

use crate::IoError;

/// Summary of a validated trace stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total event lines.
    pub lines: usize,
    /// `(event name, count)` in first-seen order.
    pub events: Vec<(String, usize)>,
    /// Whether any timing-only field (e.g. `wall_ns`) was present.
    pub timing: bool,
}

impl TraceSummary {
    /// The count of events named `name` (0 when absent).
    pub fn count(&self, name: &str) -> usize {
        self.events.iter().find(|(n, _)| n == name).map_or(0, |(_, c)| *c)
    }
}

/// The expected JSON shape of a schema field, derived from its name.
fn check_type(event: &str, field: &str, v: &Value, line: usize) -> Result<(), IoError> {
    let ok = match field {
        "event" | "tool" | "mesh" | "name" | "potential" | "tension" | "scope" | "stop"
        | "objective" | "source" => v.as_str().is_some(),
        "converged" | "masked" => matches!(v, Value::Bool(_)),
        // Nullable numerics: caps/budgets that may be unset, and floats
        // that were non-finite at render time.
        "lambda" | "max_iterations" | "time_budget_ms" | "energy" | "initial_energy"
        | "final_energy" | "congestion" | "latency" | "composite" => {
            matches!(v, Value::Number(_) | Value::Null)
        }
        _ => matches!(v, Value::Number(_)),
    };
    if ok {
        Ok(())
    } else {
        Err(IoError::Parse {
            line,
            message: format!("event {event:?}: field {field:?} has the wrong JSON type"),
        })
    }
}

/// Validates a JSONL trace stream against the versioned schema.
///
/// Checks, per line: the line parses as a JSON object; its `event` name
/// is known; its keys are exactly the schema's required fields in the
/// schema's order, optionally followed by the timing-only fields (all or
/// none of them, in order); and every field has the expected JSON type.
/// Stream-level checks: the first line must be a `run` header whose
/// `schema` equals [`schema::VERSION`].
///
/// # Errors
///
/// [`IoError::Parse`] (with a 1-based line number) on the first
/// violation; [`IoError::Invalid`] for an empty stream.
///
/// # Examples
///
/// ```
/// use snnmap_io::validate_trace;
///
/// let text = "{\"schema\":4,\"event\":\"run\",\"tool\":\"map\",\"clusters\":2,\
///             \"connections\":1,\"mesh\":\"2x2\",\"threads_requested\":0,\
///             \"threads_resolved\":1}\n\
///             {\"event\":\"phase\",\"name\":\"toposort\"}\n";
/// let summary = validate_trace(text)?;
/// assert_eq!(summary.lines, 2);
/// assert_eq!(summary.count("phase"), 1);
/// assert!(!summary.timing);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn validate_trace(text: &str) -> Result<TraceSummary, IoError> {
    let mut summary = TraceSummary { lines: 0, events: Vec::new(), timing: false };
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        if raw.trim().is_empty() {
            return Err(IoError::Parse { line, message: "blank line in trace stream".into() });
        }
        let value: Value = serde_json::from_str(raw).map_err(|e| IoError::Parse {
            line,
            message: format!("not valid JSON: {e}"),
        })?;
        let obj = value.as_object().ok_or_else(|| IoError::Parse {
            line,
            message: "trace line is not a JSON object".into(),
        })?;
        let event = obj
            .get("event")
            .and_then(Value::as_str)
            .ok_or_else(|| IoError::Parse {
                line,
                message: "missing string field \"event\"".into(),
            })?
            .to_owned();
        let (required, timing_only) = schema::fields(&event).ok_or_else(|| IoError::Parse {
            line,
            message: format!("unknown event kind {event:?}"),
        })?;

        // Keys must be exactly `required` (in order), optionally followed
        // by all of `timing_only` (in order).
        let keys: Vec<&String> = obj.iter().map(|(k, _)| k).collect();
        let matches_required = keys.len() >= required.len()
            && keys.iter().zip(required.iter()).all(|(k, r)| k.as_str() == *r);
        let tail: Vec<&str> = keys.iter().skip(required.len()).map(|k| k.as_str()).collect();
        let tail_ok = tail.is_empty() || tail == timing_only;
        if !matches_required || !tail_ok {
            return Err(IoError::Parse {
                line,
                message: format!(
                    "event {event:?}: fields {keys:?} do not match schema \
                     {required:?} (+ optional {timing_only:?})"
                ),
            });
        }
        if !tail.is_empty() {
            summary.timing = true;
        }
        for (k, v) in obj.iter() {
            check_type(&event, k, v, line)?;
        }

        if line == 1 {
            if event != "run" {
                return Err(IoError::Parse {
                    line,
                    message: format!("stream must start with a \"run\" header, got {event:?}"),
                });
            }
            let version = match obj.get("schema") {
                Some(Value::Number(n)) => n.as_f64(),
                _ => -1.0,
            };
            if version != schema::VERSION as f64 {
                return Err(IoError::Parse {
                    line,
                    message: format!(
                        "unsupported trace schema version {version} (expected {})",
                        schema::VERSION
                    ),
                });
            }
        }

        summary.lines += 1;
        match summary.events.iter_mut().find(|(n, _)| *n == event) {
            Some((_, c)) => *c += 1,
            None => summary.events.push((event, 1)),
        }
    }
    if summary.lines == 0 {
        return Err(IoError::Invalid { message: "empty trace stream".into() });
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use snnmap_trace::{
        FdSweepEvent, JsonlSink, PhaseEvent, RunEvent, TraceEvent, TraceSink,
    };

    fn sample(timing: bool) -> String {
        let mut sink = JsonlSink::new(Vec::new()).with_timing(timing);
        sink.record(&TraceEvent::Run(RunEvent {
            tool: "map".into(),
            clusters: 4,
            connections: 6,
            mesh_rows: 2,
            mesh_cols: 2,
            threads_requested: 0,
            threads_resolved: 2,
        }));
        sink.record(&TraceEvent::Phase(PhaseEvent {
            name: "toposort".into(),
            wall_ns: 10,
            alloc_bytes: 20,
            allocs: 3,
        }));
        sink.record(&TraceEvent::FdSweep(FdSweepEvent {
            sweep: 1,
            queue: 9,
            cutoff: 3,
            applied: 3,
            dirty: 12,
            carried: 2,
            energy: 4.5,
            wall_ns: 77,
            select_ns: 7,
            swap_ns: 30,
            rescore_ns: 40,
        }));
        String::from_utf8(sink.finish().unwrap()).unwrap()
    }

    #[test]
    fn accepts_real_sink_output_with_and_without_timing() {
        for timing in [false, true] {
            let s = validate_trace(&sample(timing)).unwrap();
            assert_eq!(s.lines, 3, "timing={timing}");
            assert_eq!(s.timing, timing);
            assert_eq!(s.count("run"), 1);
            assert_eq!(s.count("phase"), 1);
            assert_eq!(s.count("fd_sweep"), 1);
            assert_eq!(s.count("fd_done"), 0);
        }
    }

    #[test]
    fn accepts_the_resilience_events() {
        use snnmap_trace::{CheckpointEvent, FdDoneEvent, RepairEvent, ResumeEvent};
        let mut sink = JsonlSink::new(Vec::new()).with_timing(false);
        sink.record(&TraceEvent::Run(RunEvent {
            tool: "resume".into(),
            clusters: 4,
            connections: 6,
            mesh_rows: 2,
            mesh_cols: 2,
            threads_requested: 0,
            threads_resolved: 2,
        }));
        sink.record(&TraceEvent::Resume(ResumeEvent { sweep: 3, swaps: 9, initial_energy: 2.0 }));
        sink.record(&TraceEvent::Checkpoint(CheckpointEvent { sweep: 5, swaps: 12, energy: 1.5 }));
        sink.record(&TraceEvent::Repair(RepairEvent {
            evicted: 1,
            moved: 4,
            region_cores: 25,
            energy_before: 2.0,
            energy_after: 1.8,
        }));
        sink.record(&TraceEvent::FdDone(FdDoneEvent {
            iterations: 5,
            swaps: 12,
            initial_energy: 2.0,
            final_energy: 1.5,
            converged: false,
            stop: "deadline_expired".into(),
        }));
        let text = String::from_utf8(sink.finish().unwrap()).unwrap();
        let s = validate_trace(&text).unwrap();
        assert_eq!(s.lines, 5);
        for name in ["resume", "checkpoint", "repair", "fd_done"] {
            assert_eq!(s.count(name), 1, "{name}");
        }
        // `stop` must be a string, not a number.
        let bad = text.replacen("\"stop\":\"deadline_expired\"", "\"stop\":3", 1);
        assert_ne!(bad, text);
        assert!(validate_trace(&bad).is_err());
    }

    #[test]
    fn rejects_streams_without_a_run_header() {
        let err = validate_trace("{\"event\":\"phase\",\"name\":\"fd\"}\n").unwrap_err();
        assert!(matches!(err, IoError::Parse { line: 1, .. }), "{err}");
    }

    #[test]
    fn rejects_wrong_schema_version_and_unknown_events() {
        // Version-agnostic: bump whatever version the sink stamped.
        let good = format!("\"schema\":{}", schema::VERSION);
        let bad = format!("\"schema\":{}", schema::VERSION + 1);
        let bad_version = sample(false).replacen(&good, &bad, 1);
        assert!(bad_version != sample(false), "replacement must have applied");
        assert!(validate_trace(&bad_version).is_err());
        let unknown = format!("{}{}\n", sample(false), "{\"event\":\"mystery\"}");
        assert!(validate_trace(&unknown).is_err());
    }

    #[test]
    fn rejects_field_order_and_type_violations() {
        // Swap two required fields of the phase line.
        let reordered = sample(false).replacen(
            "{\"event\":\"phase\",\"name\":\"toposort\"}",
            "{\"name\":\"toposort\",\"event\":\"phase\"}",
            1,
        );
        assert!(validate_trace(&reordered).is_err());
        // A string where a number belongs.
        let bad_type = sample(false).replacen("\"clusters\":4", "\"clusters\":\"4\"", 1);
        assert!(validate_trace(&bad_type).is_err());
        // A partial timing tail (wall_ns without the alloc fields).
        let partial = sample(false).replacen(
            "{\"event\":\"phase\",\"name\":\"toposort\"}",
            "{\"event\":\"phase\",\"name\":\"toposort\",\"wall_ns\":5}",
            1,
        );
        assert!(validate_trace(&partial).is_err());
    }

    #[test]
    fn rejects_empty_and_malformed_streams() {
        assert!(matches!(validate_trace(""), Err(IoError::Invalid { .. })));
        assert!(validate_trace("not json\n").is_err());
        let blank = format!("{}\n{}", sample(false), "\n");
        assert!(validate_trace(&blank).is_err());
    }
}
