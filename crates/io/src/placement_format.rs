//! Placement JSON serialization.

use std::fs;
use std::path::Path;

use serde::{Deserialize, Serialize};
use snnmap_hw::{Coord, Placement};

use crate::limits::checked_mesh;
use crate::IoError;

/// The JSON document shape for a placement.
#[derive(Debug, Serialize, Deserialize)]
struct PlacementDoc {
    format: String,
    rows: u16,
    cols: u16,
    /// Element `i` is cluster `i`'s `[x, y]`, or `null` if unplaced.
    coords: Vec<Option<(u16, u16)>>,
}

/// Renders a placement as pretty-printed JSON.
pub fn render_placement(placement: &Placement) -> String {
    let doc = PlacementDoc {
        format: "snnmap-placement-v1".to_string(),
        rows: placement.mesh().rows(),
        cols: placement.mesh().cols(),
        coords: (0..placement.len())
            .map(|c| placement.coord_of(c).map(|p| (p.x, p.y)))
            .collect(),
    };
    serde_json::to_string_pretty(&doc).expect("placement doc always serializes")
}

/// Parses a placement from JSON, treating it as untrusted input.
///
/// # Errors
///
/// [`IoError::Json`] for malformed JSON, [`IoError::Invalid`] for wrong
/// format tags, dimension bombs (see [`crate::MAX_MESH_CORES`]),
/// out-of-mesh coordinates, or occupancy violations.
pub fn parse_placement(text: &str) -> Result<Placement, IoError> {
    crate::dupkey::reject_duplicate_keys(text)?;
    let doc: PlacementDoc = serde_json::from_str(text)?;
    if doc.format != "snnmap-placement-v1" {
        return Err(IoError::Invalid {
            message: format!("unknown format tag `{}`", doc.format),
        });
    }
    let mesh = checked_mesh(doc.rows, doc.cols)?;
    if doc.coords.len() > mesh.len() {
        return Err(IoError::Invalid {
            message: format!("{} clusters exceed {} cores", doc.coords.len(), mesh.len()),
        });
    }
    let mut p = Placement::new_unplaced(mesh, doc.coords.len() as u32);
    for (c, coord) in doc.coords.iter().enumerate() {
        if let Some((x, y)) = coord {
            p.place(c as u32, Coord::new(*x, *y))
                .map_err(|e| IoError::Invalid { message: e.to_string() })?;
        }
    }
    Ok(p)
}

/// Reads a placement from a JSON file.
///
/// # Errors
///
/// [`IoError::Io`] plus all [`parse_placement`] errors.
pub fn read_placement(path: &Path) -> Result<Placement, IoError> {
    parse_placement(&fs::read_to_string(path)?)
}

/// Writes a placement to a JSON file.
///
/// # Errors
///
/// [`IoError::Io`] for filesystem failures.
pub fn write_placement(path: &Path, placement: &Placement) -> Result<(), IoError> {
    Ok(fs::write(path, render_placement(placement))?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use snnmap_hw::Mesh;

    fn sample() -> Placement {
        let mesh = Mesh::new(2, 3).unwrap();
        let mut p = Placement::new_unplaced(mesh, 4);
        p.place(0, Coord::new(0, 0)).unwrap();
        p.place(2, Coord::new(1, 2)).unwrap();
        p.place(3, Coord::new(0, 1)).unwrap();
        p // cluster 1 left unplaced
    }

    #[test]
    fn roundtrip() {
        let p = sample();
        let back = parse_placement(&render_placement(&p)).unwrap();
        assert_eq!(p, back);
        back.check_consistency().unwrap();
    }

    #[test]
    fn rejects_bad_documents() {
        assert!(matches!(parse_placement("not json"), Err(IoError::Json(_))));
        let wrong_tag = r#"{"format":"nope","rows":2,"cols":2,"coords":[]}"#;
        assert!(matches!(parse_placement(wrong_tag), Err(IoError::Invalid { .. })));
        let out_of_mesh =
            r#"{"format":"snnmap-placement-v1","rows":2,"cols":2,"coords":[[5,5]]}"#;
        assert!(matches!(parse_placement(out_of_mesh), Err(IoError::Invalid { .. })));
        let collision = r#"{"format":"snnmap-placement-v1","rows":2,"cols":2,"coords":[[0,0],[0,0]]}"#;
        assert!(matches!(parse_placement(collision), Err(IoError::Invalid { .. })));
        let overfull = r#"{"format":"snnmap-placement-v1","rows":1,"cols":1,"coords":[[0,0],null]}"#;
        assert!(matches!(parse_placement(overfull), Err(IoError::Invalid { .. })));
        // Dimension bomb: would allocate a 65535x65535 occupancy grid
        // (~4 billion slots) before any coordinate check.
        let bomb = r#"{"format":"snnmap-placement-v1","rows":65535,"cols":65535,"coords":[]}"#;
        assert!(matches!(parse_placement(bomb), Err(IoError::Invalid { .. })));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("snnmap_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("p.json");
        let p = sample();
        write_placement(&path, &p).unwrap();
        assert_eq!(read_placement(&path).unwrap(), p);
    }
}
