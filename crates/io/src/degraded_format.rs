//! Degraded-placement JSON serialization.
//!
//! A [`DegradedPlacement`] is the typed result a board-aware repair
//! returns when the surviving capacity cannot absorb a dead chip's load
//! (see `snnmap_core::repair_board`). Operators and CI consume it as
//! JSON; the rendering is fully deterministic — unplaced clusters are
//! sorted ascending by the producer — so equal outcomes are
//! byte-identical on disk.

use std::fs;
use std::path::Path;

use serde::{Deserialize, Serialize};
use snnmap_core::DegradedPlacement;

use crate::limits::MAX_CLUSTERS;
use crate::IoError;

/// The JSON document shape for a degraded-placement report.
#[derive(Debug, Serialize, Deserialize)]
struct DegradedDoc {
    format: String,
    /// Clusters left unplaced, ascending.
    unplaced: Vec<u32>,
    /// Total neuron demand of the unplaced clusters.
    demand_neurons: u64,
    /// Total synapse demand of the unplaced clusters.
    demand_synapses: u64,
    /// Total neuron capacity of free healthy cores.
    spare_neurons: u64,
    /// Total synapse capacity of free healthy cores.
    spare_synapses: u64,
}

/// Renders a degraded-placement report as pretty-printed JSON
/// (byte-identical for equal reports).
pub fn render_degraded(degraded: &DegradedPlacement) -> String {
    let doc = DegradedDoc {
        format: "snnmap-degraded-v1".to_string(),
        unplaced: degraded.unplaced.clone(),
        demand_neurons: degraded.demand_neurons,
        demand_synapses: degraded.demand_synapses,
        spare_neurons: degraded.spare_neurons,
        spare_synapses: degraded.spare_synapses,
    };
    serde_json::to_string_pretty(&doc).expect("degraded doc always serializes")
}

/// Parses a degraded-placement report from JSON.
///
/// # Errors
///
/// [`IoError::Json`] for malformed JSON; [`IoError::Invalid`] for a
/// wrong format tag, an unsorted or duplicated cluster list, or a
/// bomb-sized one (see [`crate::MAX_CLUSTERS`]).
pub fn parse_degraded(text: &str) -> Result<DegradedPlacement, IoError> {
    crate::dupkey::reject_duplicate_keys(text)?;
    let doc: DegradedDoc = serde_json::from_str(text)?;
    if doc.format != "snnmap-degraded-v1" {
        return Err(IoError::Invalid { message: format!("unknown format tag `{}`", doc.format) });
    }
    if doc.unplaced.len() > MAX_CLUSTERS {
        return Err(IoError::Invalid {
            message: format!(
                "{} unplaced clusters exceeds the supported maximum of {MAX_CLUSTERS}",
                doc.unplaced.len()
            ),
        });
    }
    if doc.unplaced.windows(2).any(|w| w[0] >= w[1]) {
        return Err(IoError::Invalid {
            message: "unplaced cluster list must be strictly ascending".to_string(),
        });
    }
    Ok(DegradedPlacement {
        unplaced: doc.unplaced,
        demand_neurons: doc.demand_neurons,
        demand_synapses: doc.demand_synapses,
        spare_neurons: doc.spare_neurons,
        spare_synapses: doc.spare_synapses,
    })
}

/// Reads a degraded-placement report from a JSON file.
///
/// # Errors
///
/// [`IoError::Io`] plus all [`parse_degraded`] errors.
pub fn read_degraded(path: &Path) -> Result<DegradedPlacement, IoError> {
    parse_degraded(&fs::read_to_string(path)?)
}

/// Writes a degraded-placement report to a JSON file.
///
/// # Errors
///
/// [`IoError::Io`] for filesystem failures.
pub fn write_degraded(path: &Path, degraded: &DegradedPlacement) -> Result<(), IoError> {
    Ok(fs::write(path, render_degraded(degraded))?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DegradedPlacement {
        DegradedPlacement {
            unplaced: vec![3, 7, 42],
            demand_neurons: 900,
            demand_synapses: 120_000,
            spare_neurons: 256,
            spare_synapses: 4096,
        }
    }

    #[test]
    fn roundtrip() {
        let d = sample();
        assert_eq!(parse_degraded(&render_degraded(&d)).unwrap(), d);
        let empty = DegradedPlacement::default();
        assert_eq!(parse_degraded(&render_degraded(&empty)).unwrap(), empty);
    }

    #[test]
    fn rendering_is_byte_deterministic() {
        assert_eq!(render_degraded(&sample()), render_degraded(&sample()));
    }

    #[test]
    fn rejects_bad_documents() {
        assert!(matches!(parse_degraded("not json"), Err(IoError::Json(_))));
        let wrong_tag = r#"{"format":"nope","unplaced":[],"demand_neurons":0,"demand_synapses":0,"spare_neurons":0,"spare_synapses":0}"#;
        assert!(matches!(parse_degraded(wrong_tag), Err(IoError::Invalid { .. })));
        let unsorted = r#"{"format":"snnmap-degraded-v1","unplaced":[5,2],"demand_neurons":0,"demand_synapses":0,"spare_neurons":0,"spare_synapses":0}"#;
        assert!(matches!(parse_degraded(unsorted), Err(IoError::Invalid { .. })));
        let dup = r#"{"format":"snnmap-degraded-v1","unplaced":[2,2],"demand_neurons":0,"demand_synapses":0,"spare_neurons":0,"spare_synapses":0}"#;
        assert!(matches!(parse_degraded(dup), Err(IoError::Invalid { .. })));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("snnmap_io_degraded_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("degraded.json");
        let d = sample();
        write_degraded(&path, &d).unwrap();
        assert_eq!(read_degraded(&path).unwrap(), d);
    }
}
