//! Board-topology JSON serialization.
//!
//! The rendered document is fully deterministic: the chip grid, the
//! uniform per-core capacity, and any per-core overrides sorted in
//! row-major mesh order, so equal boards always render to byte-identical
//! JSON.

use std::fs;
use std::path::Path;

use serde::{Deserialize, Serialize};
use snnmap_hw::{Board, Coord, CoreConstraints};

use crate::limits::MAX_MESH_CORES;
use crate::IoError;

/// The JSON document shape for a board topology.
#[derive(Debug, Serialize, Deserialize)]
struct BoardDoc {
    format: String,
    /// Chip-grid dimensions.
    grid_rows: u16,
    grid_cols: u16,
    /// Per-chip core-block dimensions.
    chip_rows: u16,
    chip_cols: u16,
    /// Uniform per-core capacity.
    neurons_per_core: u32,
    synapses_per_core: u64,
    /// Heterogeneous per-core overrides, row-major.
    overrides: Vec<OverrideDoc>,
}

/// One per-core capacity override.
#[derive(Debug, Serialize, Deserialize)]
struct OverrideDoc {
    x: u16,
    y: u16,
    neurons: u32,
    synapses: u64,
}

/// Renders a board as pretty-printed JSON (byte-identical for equal
/// boards).
pub fn render_board(board: &Board) -> String {
    let uniform = board.uniform_constraints();
    let doc = BoardDoc {
        format: "snnmap-board-v1".to_string(),
        grid_rows: board.grid_rows(),
        grid_cols: board.grid_cols(),
        chip_rows: board.chip_rows(),
        chip_cols: board.chip_cols(),
        neurons_per_core: uniform.neurons_per_core,
        synapses_per_core: uniform.synapses_per_core,
        overrides: board
            .overridden_cores()
            .map(|(c, con)| OverrideDoc {
                x: c.x,
                y: c.y,
                neurons: con.neurons_per_core,
                synapses: con.synapses_per_core,
            })
            .collect(),
    };
    serde_json::to_string_pretty(&doc).expect("board doc always serializes")
}

/// Parses a board from JSON.
///
/// # Errors
///
/// [`IoError::Json`] for malformed JSON; [`IoError::Invalid`] for a wrong
/// format tag, zero or bomb-sized dimensions (see
/// [`crate::MAX_MESH_CORES`]), zero capacity limits, or out-of-mesh
/// override coordinates.
pub fn parse_board(text: &str) -> Result<Board, IoError> {
    crate::dupkey::reject_duplicate_keys(text)?;
    let doc: BoardDoc = serde_json::from_str(text)?;
    if doc.format != "snnmap-board-v1" {
        return Err(IoError::Invalid { message: format!("unknown format tag `{}`", doc.format) });
    }
    let area = doc.grid_rows as usize
        * doc.grid_cols as usize
        * doc.chip_rows as usize
        * doc.chip_cols as usize;
    if area > MAX_MESH_CORES {
        return Err(IoError::Invalid {
            message: format!(
                "board of {}x{} chips of {}x{} cores ({area} cores) exceeds the \
                 supported maximum of {MAX_MESH_CORES}",
                doc.grid_rows, doc.grid_cols, doc.chip_rows, doc.chip_cols
            ),
        });
    }
    let uniform = CoreConstraints::new(doc.neurons_per_core, doc.synapses_per_core)
        .map_err(|e| IoError::Invalid { message: e.to_string() })?;
    let mut board =
        Board::uniform(doc.grid_rows, doc.grid_cols, doc.chip_rows, doc.chip_cols, uniform)
            .map_err(|e| IoError::Invalid { message: e.to_string() })?;
    for o in doc.overrides {
        let con = CoreConstraints::new(o.neurons, o.synapses)
            .map_err(|e| IoError::Invalid { message: e.to_string() })?;
        board
            .set_constraints(Coord::new(o.x, o.y), con)
            .map_err(|e| IoError::Invalid { message: e.to_string() })?;
    }
    Ok(board)
}

/// Reads a board from a JSON file.
///
/// # Errors
///
/// [`IoError::Io`] plus all [`parse_board`] errors.
pub fn read_board(path: &Path) -> Result<Board, IoError> {
    parse_board(&fs::read_to_string(path)?)
}

/// Writes a board to a JSON file.
///
/// # Errors
///
/// [`IoError::Io`] for filesystem failures.
pub fn write_board(path: &Path, board: &Board) -> Result<(), IoError> {
    Ok(fs::write(path, render_board(board))?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Board {
        let mut b =
            Board::uniform(2, 3, 4, 4, CoreConstraints::new(256, 65536).unwrap()).unwrap();
        b.set_constraints(Coord::new(1, 2), CoreConstraints::new(64, 1024).unwrap()).unwrap();
        b.set_constraints(Coord::new(7, 11), CoreConstraints::new(512, 2048).unwrap()).unwrap();
        b
    }

    #[test]
    fn roundtrip_preserves_topology_and_overrides() {
        let b = sample();
        let back = parse_board(&render_board(&b)).unwrap();
        assert_eq!(b, back);
        assert_eq!(back.constraints_at(Coord::new(1, 2)).neurons_per_core, 64);
        assert_eq!(back.constraints_at(Coord::new(0, 0)).neurons_per_core, 256);
    }

    #[test]
    fn rendering_is_byte_deterministic() {
        assert_eq!(render_board(&sample()), render_board(&sample()));
    }

    #[test]
    fn preset_boards_roundtrip() {
        let b = Board::parse("2x2/16x16@256,65536").unwrap();
        assert_eq!(parse_board(&render_board(&b)).unwrap(), b);
    }

    #[test]
    fn rejects_bad_documents() {
        assert!(matches!(parse_board("not json"), Err(IoError::Json(_))));
        let wrong_tag = r#"{"format":"nope","grid_rows":1,"grid_cols":1,"chip_rows":2,"chip_cols":2,"neurons_per_core":1,"synapses_per_core":1,"overrides":[]}"#;
        assert!(matches!(parse_board(wrong_tag), Err(IoError::Invalid { .. })));
        let zero_cap = r#"{"format":"snnmap-board-v1","grid_rows":1,"grid_cols":1,"chip_rows":2,"chip_cols":2,"neurons_per_core":0,"synapses_per_core":1,"overrides":[]}"#;
        assert!(matches!(parse_board(zero_cap), Err(IoError::Invalid { .. })));
        let bomb = r#"{"format":"snnmap-board-v1","grid_rows":4096,"grid_cols":4096,"chip_rows":64,"chip_cols":64,"neurons_per_core":1,"synapses_per_core":1,"overrides":[]}"#;
        assert!(matches!(parse_board(bomb), Err(IoError::Invalid { .. })));
        let bad_override = r#"{"format":"snnmap-board-v1","grid_rows":1,"grid_cols":1,"chip_rows":2,"chip_cols":2,"neurons_per_core":4,"synapses_per_core":4,"overrides":[{"x":9,"y":9,"neurons":1,"synapses":1}]}"#;
        assert!(matches!(parse_board(bad_override), Err(IoError::Invalid { .. })));
        let dup = r#"{"format":"snnmap-board-v1","format":"snnmap-board-v1","grid_rows":1,"grid_cols":1,"chip_rows":2,"chip_cols":2,"neurons_per_core":4,"synapses_per_core":4,"overrides":[]}"#;
        assert!(matches!(parse_board(dup), Err(IoError::DuplicateKey { .. })));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("snnmap_io_board_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("board.json");
        let b = sample();
        write_board(&path, &b).unwrap();
        assert_eq!(read_board(&path).unwrap(), b);
    }
}
