//! Error type for reading and writing mapping artifacts.

use std::error::Error;
use std::fmt;

/// Errors produced by the I/O layer.
#[derive(Debug)]
#[non_exhaustive]
pub enum IoError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// A text-format line failed to parse.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A JSON document failed to parse or serialize.
    Json(serde_json::Error),
    /// The parsed data violated a structural invariant (e.g. an edge
    /// referencing an undeclared cluster).
    Invalid {
        /// Description of the violation.
        message: String,
    },
    /// A binary document ended before a declared section was complete.
    Truncated {
        /// The section (magic, header, clusters, edges, checksum) that
        /// ran out of bytes.
        section: String,
    },
    /// A binary document's bytes are internally inconsistent: wrong
    /// magic/version, a section length that contradicts the header, a
    /// non-canonical CSR, or a checksum mismatch.
    Corrupt {
        /// Description of the inconsistency.
        message: String,
    },
    /// A JSON object repeated a key. The underlying parser resolves
    /// duplicates last-write-wins, which would let a crafted document
    /// show one value to a validator and another to a consumer, so the
    /// JSON readers reject the document outright.
    DuplicateKey {
        /// The repeated key.
        key: String,
    },
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse { line, message } => write!(f, "line {line}: {message}"),
            IoError::Json(e) => write!(f, "json error: {e}"),
            IoError::Invalid { message } => write!(f, "invalid document: {message}"),
            IoError::Truncated { section } => {
                write!(f, "truncated document: {section} section ends early")
            }
            IoError::Corrupt { message } => write!(f, "corrupt document: {message}"),
            IoError::DuplicateKey { key } => {
                write!(f, "invalid document: duplicate JSON key `{key}`")
            }
        }
    }
}

impl Error for IoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            IoError::Json(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<serde_json::Error> for IoError {
    fn from(e: serde_json::Error) -> Self {
        IoError::Json(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = IoError::Parse { line: 3, message: "bad edge".into() };
        assert!(e.to_string().contains("line 3"));
        let e = IoError::Invalid { message: "unknown cluster".into() };
        assert!(e.to_string().contains("unknown cluster"));
        assert!(e.source().is_none());
    }
}
