//! Fault-map JSON serialization.
//!
//! The rendered document is fully deterministic: dead cores are listed in
//! row-major order and faulty links sorted canonically (both guaranteed
//! by [`FaultMap`]'s iteration order), so the same fault map — e.g. one
//! produced by a seeded
//! [`FaultInjector`](snnmap_hw::FaultInjector) — always renders to
//! byte-identical JSON.

use std::fs;
use std::path::Path;

use serde::{Deserialize, Serialize};
use snnmap_hw::{Coord, FaultMap};

use crate::limits::checked_mesh;
use crate::IoError;

/// The JSON document shape for a fault map.
#[derive(Debug, Serialize, Deserialize)]
struct FaultDoc {
    format: String,
    rows: u16,
    cols: u16,
    /// Dead cores as `[x, y]`, row-major.
    dead_cores: Vec<(u16, u16)>,
    /// Faulty links as `[[x, y], [x, y]]` with canonically ordered
    /// endpoints, sorted.
    faulty_links: Vec<((u16, u16), (u16, u16))>,
}

/// Renders a fault map as pretty-printed JSON (byte-identical for equal
/// fault maps).
pub fn render_faults(faults: &FaultMap) -> String {
    let doc = FaultDoc {
        format: "snnmap-faults-v1".to_string(),
        rows: faults.mesh().rows(),
        cols: faults.mesh().cols(),
        dead_cores: faults.dead_cores().map(|c| (c.x, c.y)).collect(),
        faulty_links: faults
            .faulty_links()
            .map(|(a, b)| ((a.x, a.y), (b.x, b.y)))
            .collect(),
    };
    serde_json::to_string_pretty(&doc).expect("fault doc always serializes")
}

/// Parses a fault map from JSON.
///
/// # Errors
///
/// [`IoError::Json`] for malformed JSON; [`IoError::Invalid`] for a wrong
/// format tag, a bad or bomb-sized mesh (see [`crate::MAX_MESH_CORES`]),
/// out-of-mesh coordinates, or non-adjacent link endpoints.
pub fn parse_faults(text: &str) -> Result<FaultMap, IoError> {
    crate::dupkey::reject_duplicate_keys(text)?;
    let doc: FaultDoc = serde_json::from_str(text)?;
    if doc.format != "snnmap-faults-v1" {
        return Err(IoError::Invalid { message: format!("unknown format tag `{}`", doc.format) });
    }
    let mesh = checked_mesh(doc.rows, doc.cols)?;
    let mut fm = FaultMap::new(mesh);
    for (x, y) in doc.dead_cores {
        fm.kill_core(Coord::new(x, y))
            .map_err(|e| IoError::Invalid { message: e.to_string() })?;
    }
    for ((ax, ay), (bx, by)) in doc.faulty_links {
        fm.fail_link(Coord::new(ax, ay), Coord::new(bx, by))
            .map_err(|e| IoError::Invalid { message: e.to_string() })?;
    }
    Ok(fm)
}

/// Reads a fault map from a JSON file.
///
/// # Errors
///
/// [`IoError::Io`] plus all [`parse_faults`] errors.
pub fn read_faults(path: &Path) -> Result<FaultMap, IoError> {
    parse_faults(&fs::read_to_string(path)?)
}

/// Writes a fault map to a JSON file.
///
/// # Errors
///
/// [`IoError::Io`] for filesystem failures.
pub fn write_faults(path: &Path, faults: &FaultMap) -> Result<(), IoError> {
    Ok(fs::write(path, render_faults(faults))?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use snnmap_hw::{FaultInjector, FaultPattern, Mesh};

    fn sample() -> FaultMap {
        let mesh = Mesh::new(3, 4).unwrap();
        let mut fm = FaultMap::new(mesh);
        fm.kill_core(Coord::new(2, 1)).unwrap();
        fm.kill_core(Coord::new(0, 3)).unwrap();
        fm.fail_link(Coord::new(1, 1), Coord::new(1, 2)).unwrap();
        fm.fail_link(Coord::new(0, 0), Coord::new(1, 0)).unwrap();
        fm
    }

    #[test]
    fn roundtrip() {
        let fm = sample();
        let back = parse_faults(&render_faults(&fm)).unwrap();
        assert_eq!(fm, back);
    }

    #[test]
    fn rendering_is_byte_deterministic_per_seed() {
        // The acceptance property: the same fault seed yields a
        // byte-identical fault-map file across runs.
        let mesh = Mesh::new(16, 16).unwrap();
        let pattern = FaultPattern::Uniform { core_rate: 0.05, link_rate: 0.02 };
        let a = render_faults(&FaultInjector::new(7).inject(mesh, &pattern).unwrap());
        let b = render_faults(&FaultInjector::new(7).inject(mesh, &pattern).unwrap());
        assert_eq!(a, b);
        assert_eq!(parse_faults(&a).unwrap(), parse_faults(&b).unwrap());
    }

    #[test]
    fn rejects_bad_documents() {
        assert!(matches!(parse_faults("not json"), Err(IoError::Json(_))));
        let wrong_tag =
            r#"{"format":"nope","rows":2,"cols":2,"dead_cores":[],"faulty_links":[]}"#;
        assert!(matches!(parse_faults(wrong_tag), Err(IoError::Invalid { .. })));
        let out_of_mesh = r#"{"format":"snnmap-faults-v1","rows":2,"cols":2,"dead_cores":[[5,5]],"faulty_links":[]}"#;
        assert!(matches!(parse_faults(out_of_mesh), Err(IoError::Invalid { .. })));
        let not_adjacent = r#"{"format":"snnmap-faults-v1","rows":3,"cols":3,"dead_cores":[],"faulty_links":[[[0,0],[2,2]]]}"#;
        assert!(matches!(parse_faults(not_adjacent), Err(IoError::Invalid { .. })));
        let bomb = r#"{"format":"snnmap-faults-v1","rows":65535,"cols":65535,"dead_cores":[],"faulty_links":[]}"#;
        assert!(matches!(parse_faults(bomb), Err(IoError::Invalid { .. })));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("snnmap_io_fault_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("faults.json");
        let fm = sample();
        write_faults(&path, &fm).unwrap();
        assert_eq!(read_faults(&path).unwrap(), fm);
    }
}
