//! FD checkpoint JSON serialization.
//!
//! A checkpoint captures a Force-Directed run at a sweep boundary
//! ([`FdCheckpoint`]): every cluster's coordinate, the engine's
//! incrementally patched force table, and the sweep/swap/energy
//! counters. The force table is restored verbatim on resume — its values
//! differ in the low bits from a from-scratch rebuild (floating-point
//! addition is not associative), and carrying them is what makes a
//! killed-and-resumed run bit-identical to an uninterrupted one.
//!
//! All `f64` values are stored as IEEE-754 bit patterns
//! ([`f64::to_bits`]) so the JSON round trip is exact, and the document
//! carries two caller-supplied digests (run configuration and PCN) so
//! `snnmap resume` can refuse a checkpoint taken under different inputs.
//!
//! The document additionally carries `self_sha256`, a digest of its own
//! canonical rendering (computed with the digest field blanked). The
//! provenance digests only cover the *inputs*; a bit flip inside
//! `coords` or `forces_bits` can still parse cleanly into a
//! valid-looking checkpoint that resumes to a silently different
//! placement. [`parse_checkpoint`] re-renders what it parsed and
//! compares, so any such flip is rejected with a typed error.

use std::path::Path;

use serde::{Deserialize, Serialize};
use snnmap_core::FdCheckpoint;
use snnmap_hw::Coord;

use crate::limits::checked_mesh;
use crate::IoError;

/// Provenance of a checkpoint: digests of the inputs the run was started
/// with. [`parse_checkpoint`] returns them for the caller to compare
/// against the inputs it is about to resume with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointMeta {
    /// Digest of the run configuration (potential, λ, tension mode, …).
    pub config_digest: String,
    /// Digest of the PCN the run maps.
    pub pcn_digest: String,
}

/// The JSON document shape for a checkpoint.
#[derive(Debug, Serialize, Deserialize)]
struct CheckpointDoc {
    format: String,
    config_digest: String,
    pcn_digest: String,
    rows: u16,
    cols: u16,
    sweeps: u64,
    swaps: u64,
    initial_energy_bits: u64,
    energy_bits: u64,
    /// Element `i` is cluster `i`'s `[x, y]`.
    coords: Vec<(u16, u16)>,
    /// Element `i` is cluster `i`'s `[UP, DOWN, LEFT, RIGHT]` force
    /// record as `f64` bit patterns.
    forces_bits: Vec<[u64; 4]>,
    /// SHA-256 of this document's canonical rendering with this field
    /// set to `""`. Absent in pre-chaos checkpoints, which are accepted
    /// without self-verification.
    self_sha256: Option<String>,
}

const FORMAT: &str = "snnmap-checkpoint-v1";

fn render_doc(checkpoint: &FdCheckpoint, meta: &CheckpointMeta, self_sha256: &str) -> String {
    let doc = CheckpointDoc {
        format: FORMAT.to_string(),
        config_digest: meta.config_digest.clone(),
        pcn_digest: meta.pcn_digest.clone(),
        rows: checkpoint.mesh.rows(),
        cols: checkpoint.mesh.cols(),
        sweeps: checkpoint.sweeps,
        swaps: checkpoint.swaps,
        initial_energy_bits: checkpoint.initial_energy.to_bits(),
        energy_bits: checkpoint.energy.to_bits(),
        coords: checkpoint.coords.iter().map(|c| (c.x, c.y)).collect(),
        forces_bits: checkpoint
            .forces
            .iter()
            .map(|f| [f[0].to_bits(), f[1].to_bits(), f[2].to_bits(), f[3].to_bits()])
            .collect(),
        self_sha256: Some(self_sha256.to_string()),
    };
    serde_json::to_string_pretty(&doc).expect("checkpoint doc always serializes")
}

/// Renders a checkpoint as pretty-printed JSON (deterministic: equal
/// checkpoints render byte-identically), stamped with its own integrity
/// digest.
pub fn render_checkpoint(checkpoint: &FdCheckpoint, meta: &CheckpointMeta) -> String {
    let preimage = render_doc(checkpoint, meta, "");
    render_doc(checkpoint, meta, &snnmap_trace::sha256_hex(preimage.as_bytes()))
}

/// Parses a checkpoint from JSON, validating it as untrusted input.
///
/// # Errors
///
/// [`IoError::Json`] for malformed JSON; [`IoError::Invalid`] for a
/// wrong format tag, a dimension bomb (see [`crate::MAX_MESH_CORES`]), a
/// coordinate/force table length mismatch, more clusters than cores,
/// out-of-mesh coordinates, two clusters on the same core, or a
/// document whose `self_sha256` does not match its own canonical
/// re-rendering (a flipped bit anywhere in the payload).
pub fn parse_checkpoint(text: &str) -> Result<(FdCheckpoint, CheckpointMeta), IoError> {
    crate::dupkey::reject_duplicate_keys(text)?;
    let doc: CheckpointDoc = serde_json::from_str(text)?;
    if doc.format != FORMAT {
        return Err(IoError::Invalid { message: format!("unknown format tag `{}`", doc.format) });
    }
    let mesh = checked_mesh(doc.rows, doc.cols)?;
    if doc.coords.len() != doc.forces_bits.len() {
        return Err(IoError::Invalid {
            message: format!(
                "{} coordinates but {} force records",
                doc.coords.len(),
                doc.forces_bits.len()
            ),
        });
    }
    if doc.coords.len() > mesh.len() {
        return Err(IoError::Invalid {
            message: format!("{} clusters exceed {} cores", doc.coords.len(), mesh.len()),
        });
    }
    let mut occupied = vec![false; mesh.len()];
    let mut coords = Vec::with_capacity(doc.coords.len());
    for (cluster, &(x, y)) in doc.coords.iter().enumerate() {
        let c = Coord::new(x, y);
        if !mesh.contains(c) {
            return Err(IoError::Invalid {
                message: format!("cluster {cluster} at {c} lies outside the {mesh} mesh"),
            });
        }
        let idx = mesh.index_of(c);
        if occupied[idx] {
            return Err(IoError::Invalid {
                message: format!("two clusters occupy core {c}"),
            });
        }
        occupied[idx] = true;
        coords.push(c);
    }
    let checkpoint = FdCheckpoint {
        mesh,
        coords,
        forces: doc
            .forces_bits
            .iter()
            .map(|f| {
                [
                    f64::from_bits(f[0]),
                    f64::from_bits(f[1]),
                    f64::from_bits(f[2]),
                    f64::from_bits(f[3]),
                ]
            })
            .collect(),
        sweeps: doc.sweeps,
        swaps: doc.swaps,
        initial_energy: f64::from_bits(doc.initial_energy_bits),
        energy: f64::from_bits(doc.energy_bits),
    };
    let meta = CheckpointMeta { config_digest: doc.config_digest, pcn_digest: doc.pcn_digest };
    if let Some(claimed) = doc.self_sha256 {
        let preimage = render_doc(&checkpoint, &meta, "");
        let actual = snnmap_trace::sha256_hex(preimage.as_bytes());
        if claimed != actual {
            return Err(IoError::Invalid {
                message: format!(
                    "integrity digest mismatch: document claims {claimed}, \
                     canonical re-rendering hashes to {actual}"
                ),
            });
        }
    }
    Ok((checkpoint, meta))
}

/// Reads a checkpoint from a JSON file.
///
/// The read goes through the `checkpoint.read` failpoint; an injected
/// short read hands [`parse_checkpoint`] a truncated document, which the
/// format's own validation (JSON structure + `self_sha256`) rejects.
///
/// # Errors
///
/// [`IoError::Io`] plus all [`parse_checkpoint`] errors.
pub fn read_checkpoint(path: &Path) -> Result<(FdCheckpoint, CheckpointMeta), IoError> {
    parse_checkpoint(&snnmap_chaos::cfs::read_to_string("checkpoint.read", path)?)
}

/// Writes a checkpoint to a JSON file, atomically: the document lands in
/// a sibling temporary file first and is renamed over `path`, so a
/// process killed mid-write leaves either the previous checkpoint or the
/// new one — never a truncated file.
///
/// Both steps are failpoints (`checkpoint.write`, `checkpoint.rename`).
/// A torn write only ever tears the `.tmp` sibling; `path` itself either
/// keeps its previous content or receives the complete new document via
/// the atomic rename.
///
/// # Errors
///
/// [`IoError::Io`] for filesystem failures (including injected ones).
pub fn write_checkpoint(
    path: &Path,
    checkpoint: &FdCheckpoint,
    meta: &CheckpointMeta,
) -> Result<(), IoError> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = Path::new(&tmp);
    snnmap_chaos::cfs::write("checkpoint.write", tmp, render_checkpoint(checkpoint, meta).as_bytes())?;
    Ok(snnmap_chaos::cfs::rename("checkpoint.rename", tmp, path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use snnmap_hw::Mesh;

    fn sample() -> (FdCheckpoint, CheckpointMeta) {
        let cp = FdCheckpoint {
            mesh: Mesh::new(2, 3).unwrap(),
            coords: vec![Coord::new(0, 0), Coord::new(1, 2), Coord::new(0, 2)],
            // Deliberately awkward values: results of non-associative
            // sums, negative zero, subnormals.
            forces: vec![
                [0.1 + 0.2, -0.0, f64::MIN_POSITIVE, 1.5e308],
                [0.0, -3.25, 2.0f64.powi(-1060), 7.0],
                [1.0 / 3.0, 0.3 - 0.1, -55.5, 0.0],
            ],
            sweeps: 17,
            swaps: 112,
            initial_energy: 1234.5678,
            energy: 0.1 + 0.2 + 0.3,
        };
        let meta = CheckpointMeta {
            config_digest: "cfg-abc".into(),
            pcn_digest: "pcn-def".into(),
        };
        (cp, meta)
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let (cp, meta) = sample();
        let text = render_checkpoint(&cp, &meta);
        let (back, back_meta) = parse_checkpoint(&text).unwrap();
        assert_eq!(back_meta, meta);
        assert_eq!(back.mesh, cp.mesh);
        assert_eq!(back.coords, cp.coords);
        assert_eq!(back.sweeps, cp.sweeps);
        assert_eq!(back.swaps, cp.swaps);
        assert_eq!(back.initial_energy.to_bits(), cp.initial_energy.to_bits());
        assert_eq!(back.energy.to_bits(), cp.energy.to_bits());
        for (a, b) in back.forces.iter().zip(cp.forces.iter()) {
            for d in 0..4 {
                assert_eq!(a[d].to_bits(), b[d].to_bits());
            }
        }
        // Deterministic rendering.
        assert_eq!(text, render_checkpoint(&back, &back_meta));
    }

    #[test]
    fn rejects_adversarial_documents() {
        let (cp, meta) = sample();
        let good = render_checkpoint(&cp, &meta);
        // Wrong format tag.
        let bad = good.replacen(FORMAT, "snnmap-checkpoint-v999", 1);
        assert!(matches!(parse_checkpoint(&bad), Err(IoError::Invalid { .. })));
        // Dimension bomb: 65535x65535 would allocate gigabytes.
        let bad = good.replacen("\"rows\": 2", "\"rows\": 65535", 1).replacen(
            "\"cols\": 3",
            "\"cols\": 65535",
            1,
        );
        assert!(matches!(parse_checkpoint(&bad), Err(IoError::Invalid { .. })));
        // Out-of-mesh coordinate (render doesn't validate, parse must).
        let (mut cp2, meta2) = sample();
        cp2.coords[1] = Coord::new(9, 9);
        let bad = render_checkpoint(&cp2, &meta2);
        assert!(matches!(parse_checkpoint(&bad), Err(IoError::Invalid { .. })));
        // Colliding coordinates.
        let (mut cp2, meta2) = sample();
        cp2.coords[1] = cp2.coords[0];
        let bad = render_checkpoint(&cp2, &meta2);
        assert!(matches!(parse_checkpoint(&bad), Err(IoError::Invalid { .. })));
        // Force-table length mismatch.
        let (mut cp3, meta3) = sample();
        cp3.forces.pop();
        let bad = render_checkpoint(&cp3, &meta3);
        assert!(matches!(parse_checkpoint(&bad), Err(IoError::Invalid { .. })));
        // Not JSON at all.
        assert!(matches!(parse_checkpoint("not json"), Err(IoError::Json(_))));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("snnmap_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cp.json");
        let (cp, meta) = sample();
        write_checkpoint(&path, &cp, &meta).unwrap();
        let (back, back_meta) = read_checkpoint(&path).unwrap();
        assert_eq!(back_meta, meta);
        assert_eq!(back.coords, cp.coords);
    }
}
