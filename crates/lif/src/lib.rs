//! Leaky integrate-and-fire (LIF) simulation for measuring spike traffic.
//!
//! The paper's edge weights `w_S` are "the density of the spiking emitted
//! by synapse `e`" (§3.2) — measured by *executing* the SNN, not a
//! property of its structure. This crate closes that loop for
//! materializable networks: a discrete-time LIF simulator runs the
//! application under Poisson input drive, counts every neuron's spikes,
//! and re-weights the graph so each synapse carries its measured spike
//! density. The mapping pipeline then consumes real traffic instead of
//! the seeded-random stand-ins the generators default to.
//!
//! The neuron model is the standard discrete-time LIF used by
//! neuromorphic cores (e.g. Loihi's CUBA model, simplified):
//!
//! ```text
//! v[t+1] = v[t] * leak + Σ_in w_syn * spike_in[t] + I_ext[t]
//! spike when v ≥ v_thresh, then v := v_reset, refractory for R steps
//! ```
//!
//! # Examples
//!
//! ```
//! use snnmap_lif::{measure_traffic, LifConfig};
//! use snnmap_model::SnnBuilder;
//!
//! // A 2-neuron chain with a strong synapse: drive neuron 0, count spikes.
//! let mut b = SnnBuilder::new(2);
//! b.synapse(0, 1, 1.5)?; // here the weight is synaptic strength
//! let net = b.build()?;
//!
//! let outcome = measure_traffic(&net, &LifConfig::default(), 1_000, 7)?;
//! // The measured graph has the same topology, re-weighted by spike rate.
//! assert_eq!(outcome.network.num_synapses(), 1);
//! assert!(outcome.spike_rates[0] > 0.0, "driven input neuron must spike");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use snnmap_model::{ModelError, SnnBuilder, SnnNetwork};

/// LIF neuron and input-drive parameters.
///
/// Defaults give a moderately active network: leak 0.9 per step,
/// threshold 1.0, Poisson drive of strength ~0.3 at rate 0.3 on input
/// neurons (those without incoming synapses).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LifConfig {
    /// Multiplicative membrane leak per step (`exp(-dt/τ)`), in `[0, 1)`.
    pub leak: f64,
    /// Firing threshold.
    pub v_thresh: f64,
    /// Post-spike reset potential.
    pub v_reset: f64,
    /// Refractory period in steps (no integration, no firing).
    pub refractory: u32,
    /// Per-step probability that an input neuron receives an external
    /// drive impulse.
    pub input_rate: f64,
    /// Magnitude of one external drive impulse.
    pub input_strength: f64,
}

impl Default for LifConfig {
    fn default() -> Self {
        Self {
            leak: 0.9,
            v_thresh: 1.0,
            v_reset: 0.0,
            refractory: 2,
            input_rate: 0.3,
            input_strength: 0.5,
        }
    }
}

impl LifConfig {
    fn validate(&self) {
        assert!((0.0..1.0).contains(&self.leak), "leak must be in [0, 1)");
        assert!(self.v_thresh > self.v_reset, "threshold must exceed reset");
        assert!((0.0..=1.0).contains(&self.input_rate), "input rate is a probability");
        assert!(self.input_strength.is_finite() && self.input_strength >= 0.0);
    }
}

/// The result of a measurement run.
#[derive(Debug, Clone)]
pub struct MeasuredTraffic {
    /// The input topology re-weighted: each synapse's weight is its
    /// source neuron's measured spike density (spikes per step).
    pub network: SnnNetwork,
    /// Per-neuron spike rate (spikes per step).
    pub spike_rates: Vec<f64>,
    /// Total spikes emitted during the measured window.
    pub total_spikes: u64,
    /// Steps simulated.
    pub steps: u64,
}

/// A discrete-time LIF simulator over an explicit network whose edge
/// weights are interpreted as *synaptic strengths* (positive = excitatory,
/// the builder rejects negatives — inhibition can be modelled by scaling
/// strengths down).
#[derive(Debug)]
pub struct LifSim<'a> {
    net: &'a SnnNetwork,
    config: LifConfig,
    v: Vec<f64>,
    refractory_left: Vec<u32>,
    spike_counts: Vec<u64>,
    /// Neurons with no incoming synapses, driven externally.
    inputs: Vec<u32>,
    rng: ChaCha8Rng,
    steps: u64,
    /// Scratch: neurons that fired this step.
    fired: Vec<u32>,
    /// Accumulated synaptic input for the next step.
    pending: Vec<f64>,
}

impl<'a> LifSim<'a> {
    /// Creates a simulator with all membranes at reset.
    ///
    /// # Panics
    ///
    /// Panics on invalid configuration (see [`LifConfig`] field docs).
    pub fn new(net: &'a SnnNetwork, config: LifConfig, seed: u64) -> Self {
        config.validate();
        let n = net.num_neurons() as usize;
        let inputs = (0..net.num_neurons()).filter(|&x| net.fan_in(x) == 0).collect();
        Self {
            net,
            config,
            v: vec![config.v_reset; n],
            refractory_left: vec![0; n],
            spike_counts: vec![0; n],
            inputs,
            rng: ChaCha8Rng::seed_from_u64(seed),
            steps: 0,
            fired: Vec::new(),
            pending: vec![0.0; n],
        }
    }

    /// Steps simulated so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Spikes emitted by `neuron` so far.
    ///
    /// # Panics
    ///
    /// Panics if `neuron` is out of range.
    pub fn spike_count(&self, neuron: u32) -> u64 {
        self.spike_counts[neuron as usize]
    }

    /// Current membrane potential of `neuron`.
    ///
    /// # Panics
    ///
    /// Panics if `neuron` is out of range.
    pub fn potential(&self, neuron: u32) -> f64 {
        self.v[neuron as usize]
    }

    /// Advances the network one step: integrate pending synaptic input
    /// and external drive, fire, propagate spikes into the next step's
    /// pending input.
    pub fn step(&mut self) {
        let cfg = self.config;
        // External Poisson drive onto input neurons.
        for &x in &self.inputs {
            if cfg.input_rate > 0.0 && self.rng.gen_bool(cfg.input_rate) {
                self.pending[x as usize] += cfg.input_strength;
            }
        }
        // Integrate and fire.
        self.fired.clear();
        for i in 0..self.v.len() {
            if self.refractory_left[i] > 0 {
                self.refractory_left[i] -= 1;
                self.pending[i] = 0.0;
                continue;
            }
            self.v[i] = self.v[i] * cfg.leak + self.pending[i];
            self.pending[i] = 0.0;
            if self.v[i] >= cfg.v_thresh {
                self.v[i] = cfg.v_reset;
                self.refractory_left[i] = cfg.refractory;
                self.spike_counts[i] += 1;
                self.fired.push(i as u32);
            }
        }
        // Propagate.
        for k in 0..self.fired.len() {
            let src = self.fired[k];
            for (dst, w) in self.net.synapses_out(src) {
                self.pending[dst as usize] += w as f64;
            }
        }
        self.steps += 1;
    }

    /// Runs `steps` steps.
    pub fn run(&mut self, steps: u64) {
        for _ in 0..steps {
            self.step();
        }
    }

    /// Per-neuron spike rates over the simulated window.
    pub fn spike_rates(&self) -> Vec<f64> {
        let t = self.steps.max(1) as f64;
        self.spike_counts.iter().map(|&c| c as f64 / t).collect()
    }
}

/// Runs the network for `steps` under the given configuration and
/// returns the same topology re-weighted with measured spike densities:
/// each synapse's weight becomes its *source* neuron's spike rate (a
/// synapse transmits exactly one message per source spike, §3.2).
///
/// Synapses whose source never fired keep a tiny floor weight so the
/// graph's connectivity (and therefore the PCN's) is preserved.
///
/// # Errors
///
/// Propagates [`ModelError`] from rebuilding the network (cannot occur
/// for a valid input topology).
///
/// # Panics
///
/// Panics on invalid configuration or `steps == 0`.
pub fn measure_traffic(
    net: &SnnNetwork,
    config: &LifConfig,
    steps: u64,
    seed: u64,
) -> Result<MeasuredTraffic, ModelError> {
    assert!(steps > 0, "need at least one step");
    let mut sim = LifSim::new(net, *config, seed);
    sim.run(steps);
    let rates = sim.spike_rates();
    const RATE_FLOOR: f32 = 1e-6;

    let mut b = SnnBuilder::with_capacity(net.num_neurons(), net.num_synapses() as usize);
    for (u, v, _) in net.iter_synapses() {
        let density = (rates[u as usize] as f32).max(RATE_FLOOR);
        b.synapse(u, v, density)?;
    }
    let total_spikes = sim.spike_counts.iter().sum();
    Ok(MeasuredTraffic { network: b.build()?, spike_rates: rates, total_spikes, steps })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(weight: f32) -> SnnNetwork {
        let mut b = SnnBuilder::new(3);
        b.synapse(0, 1, weight).unwrap();
        b.synapse(1, 2, weight).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn driven_input_neuron_fires() {
        let net = chain(2.0);
        let cfg = LifConfig { input_rate: 1.0, input_strength: 2.0, ..LifConfig::default() };
        let mut sim = LifSim::new(&net, cfg, 1);
        sim.run(100);
        assert!(sim.spike_count(0) > 10, "{}", sim.spike_count(0));
        // Strong synapses carry activity down the chain.
        assert!(sim.spike_count(1) > 0);
        assert!(sim.spike_count(2) > 0);
    }

    #[test]
    fn refractory_caps_rate() {
        // With drive every step and refractory R, a neuron fires at most
        // every R + 1 steps.
        let net = chain(0.0001);
        let cfg = LifConfig {
            input_rate: 1.0,
            input_strength: 10.0,
            refractory: 4,
            ..LifConfig::default()
        };
        let mut sim = LifSim::new(&net, cfg, 2);
        sim.run(1000);
        let rate = sim.spike_rates()[0];
        assert!(rate <= 1.0 / 5.0 + 1e-9, "rate {rate} exceeds refractory bound");
        assert!(rate >= 1.0 / 6.0, "rate {rate} should be near the bound");
    }

    #[test]
    fn silent_without_drive() {
        let net = chain(2.0);
        let cfg = LifConfig { input_rate: 0.0, ..LifConfig::default() };
        let mut sim = LifSim::new(&net, cfg, 3);
        sim.run(500);
        assert_eq!(sim.spike_counts.iter().sum::<u64>(), 0);
        assert!(sim.potential(0).abs() < 1e-12);
    }

    #[test]
    fn leak_decays_subthreshold_input() {
        // Weak rare impulses leak away: no spikes.
        let net = chain(0.1);
        let cfg = LifConfig {
            input_rate: 0.05,
            input_strength: 0.2,
            leak: 0.5,
            ..LifConfig::default()
        };
        let mut sim = LifSim::new(&net, cfg, 4);
        sim.run(2000);
        assert_eq!(sim.spike_count(0), 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let net = chain(1.5);
        let run = |seed| {
            let mut sim = LifSim::new(&net, LifConfig::default(), seed);
            sim.run(500);
            sim.spike_counts.clone()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn measured_traffic_reweights_by_source_rate() {
        let net = chain(2.0);
        let cfg = LifConfig { input_rate: 1.0, input_strength: 2.0, ..LifConfig::default() };
        let m = measure_traffic(&net, &cfg, 1000, 5).unwrap();
        assert_eq!(m.network.num_synapses(), 2);
        let syn: Vec<_> = m.network.iter_synapses().collect();
        // Synapse 0->1 carries neuron 0's rate; 1->2 carries neuron 1's.
        assert!((syn[0].2 as f64 - m.spike_rates[0]).abs() < 1e-6);
        assert!((syn[1].2 as f64 - m.spike_rates[1]).abs() < 1e-6);
        assert!(m.total_spikes > 0);
        // Downstream rates cannot exceed upstream drive in a chain.
        assert!(m.spike_rates[1] <= m.spike_rates[0] + 1e-9);
    }

    #[test]
    fn never_fired_synapses_keep_floor_weight() {
        let net = chain(0.0001); // too weak to propagate
        let cfg = LifConfig { input_rate: 1.0, input_strength: 2.0, ..LifConfig::default() };
        let m = measure_traffic(&net, &cfg, 200, 6).unwrap();
        // Topology preserved even though neuron 1 never fired.
        assert_eq!(m.network.num_synapses(), 2);
        assert!(m.network.iter_synapses().all(|(_, _, w)| w > 0.0));
    }

    #[test]
    #[should_panic(expected = "leak")]
    fn rejects_bad_config() {
        let net = chain(1.0);
        let cfg = LifConfig { leak: 1.5, ..LifConfig::default() };
        let _ = LifSim::new(&net, cfg, 0);
    }
}
