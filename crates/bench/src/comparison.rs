//! The Figures 9–12 sweep: every method on every Table 3 benchmark.

use std::time::Duration;

use serde::{Deserialize, Serialize};
use snnmap_hw::{CostModel, Mesh};
use snnmap_metrics::{evaluate_with, EvalOptions, MetricsReport};
use snnmap_model::generators::{table3_suite, Table3Benchmark};

use crate::args::Options;
use crate::methods::Method;

/// One (benchmark, method) measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunRecord {
    /// Benchmark name (Table 3 row).
    pub benchmark: String,
    /// PCN cluster count actually produced.
    pub clusters: u32,
    /// PCN connection count actually produced.
    pub connections: u64,
    /// Method name.
    pub method: String,
    /// Solve time in seconds.
    pub elapsed_secs: f64,
    /// Whether the run hit its budget ("ES" in the paper's figures).
    pub early_stopped: bool,
    /// The five §3.3 quality metrics.
    pub metrics: MetricsReport,
}

/// Runs `methods` over every Table 3 benchmark within the option's scale
/// filter, evaluating each placement.
///
/// Baselines get `options.budget_secs`; the proposed method runs
/// unbudgeted (it finishes in seconds even at full scale, which is the
/// paper's headline result). Congestion uses edge sampling above
/// `options.congestion_sample` edges.
///
/// Skips and reports (rather than fails) benchmarks whose PCN build or
/// mapping errors — no Table 3 instance should, so any message here is a
/// bug.
pub fn run_comparison(methods: &[Method], options: &Options) -> Vec<RunRecord> {
    let cost = CostModel::paper_target();
    let mut records = Vec::new();
    for bench in suite_at_scale(options) {
        let name = bench.row.name;
        eprintln!("[comparison] building {name}...");
        let pcn = match bench.pcn(options.seed) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("[comparison] {name}: PCN build failed: {e}");
                continue;
            }
        };
        let mesh = match Mesh::square_for(pcn.num_clusters() as u64) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("[comparison] {name}: mesh sizing failed: {e}");
                continue;
            }
        };
        for &method in methods {
            let budget = match method {
                Method::Proposed => None,
                _ => Some(Duration::from_secs(options.budget_secs)),
            };
            eprintln!("[comparison] {name}: running {method}...");
            let run = match method.run_with_threads(&pcn, mesh, budget, options.seed, options.threads)
            {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("[comparison] {name}/{method}: {e}");
                    continue;
                }
            };
            let opts = EvalOptions {
                congestion_sample: Some((options.congestion_sample, options.seed)),
            };
            let metrics = match evaluate_with(&pcn, &run.placement, cost, opts) {
                Ok(m) => m,
                Err(e) => {
                    eprintln!("[comparison] {name}/{method}: evaluation failed: {e}");
                    continue;
                }
            };
            records.push(RunRecord {
                benchmark: name.to_string(),
                clusters: pcn.num_clusters(),
                connections: pcn.num_connections(),
                method: method.name().to_string(),
                elapsed_secs: run.elapsed.as_secs_f64(),
                early_stopped: run.early_stopped,
                metrics,
            });
        }
    }
    records
}

/// A column of a metric figure: display name plus metric selector.
pub type MetricColumn = (&'static str, fn(&MetricsReport) -> f64);

/// Renders a Figures 10–12 style table: the selected metric columns per
/// (benchmark, method), normalized to the same benchmark's `Random`
/// record (the paper plots everything relative to the baseline). Rows
/// whose benchmark has no Random record show absolute values.
pub fn render_metric_table(
    records: &[RunRecord],
    columns: &[MetricColumn],
) -> crate::table::Table {
    let mut headers = vec!["Benchmark", "Method"];
    headers.extend(columns.iter().map(|(name, _)| *name));
    headers.push("Early stop");
    let mut t = crate::table::Table::new(&headers);
    for r in records {
        let baseline = records
            .iter()
            .find(|b| b.benchmark == r.benchmark && b.method == "Random")
            .map(|b| &b.metrics);
        let mut cells = vec![r.benchmark.clone(), r.method.clone()];
        for (_, f) in columns {
            let v = f(&r.metrics);
            let cell = match baseline {
                Some(b) if f(b) != 0.0 => format!("{:.3}", v / f(b)),
                _ => crate::table::fmt_value(v),
            };
            cells.push(cell);
        }
        cells.push(if r.early_stopped { "ES".to_string() } else { String::new() });
        t.row(&cells);
    }
    t
}

/// The Table 3 suite filtered to the option's scale.
pub fn suite_at_scale(options: &Options) -> Vec<Table3Benchmark> {
    table3_suite()
        .into_iter()
        .filter(|b| b.row.clusters <= options.scale.max_clusters())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Scale;

    #[test]
    fn scale_filters_the_suite() {
        let mut o = Options { scale: Scale::Small, ..Options::default() };
        let small = suite_at_scale(&o);
        // DNN_65K, CNN_65K, LeNet-MNIST, LeNet-ImageNet, AlexNet.
        assert_eq!(small.len(), 5);
        o.scale = Scale::Full;
        assert_eq!(suite_at_scale(&o).len(), 13);
    }

    #[test]
    fn comparison_on_smallest_benchmarks_produces_records() {
        let o = Options { scale: Scale::Small, budget_secs: 5, ..Options::default() };
        let records = run_comparison(&[Method::Random, Method::Proposed], &o);
        // 5 small benchmarks x 2 methods.
        assert_eq!(records.len(), 10);
        for r in &records {
            assert!(r.metrics.energy > 0.0, "{}: zero energy", r.benchmark);
        }
        // The proposed method must beat random on energy everywhere.
        for pair in records.chunks(2) {
            let (rnd, prop) = (&pair[0], &pair[1]);
            assert_eq!(rnd.method, "Random");
            assert!(
                prop.metrics.energy < rnd.metrics.energy,
                "{}: {} !< {}",
                prop.benchmark,
                prop.metrics.energy,
                rnd.metrics.energy
            );
        }
    }
}
