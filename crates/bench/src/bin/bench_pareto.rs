//! Pareto sweep over the congestion weight λc: energy-only FD versus the
//! composite objective with sim-in-the-loop NoC reweighting, on real
//! Table 3 workloads.
//!
//! For every workload and every λc the refinement runs at each requested
//! thread count and the placements are asserted **byte-identical** — the
//! composite objective inherits the engine's determinism guarantee. The
//! λc = 0 arm is pure energy (the PR-8 path, zero added FP work) and is
//! the baseline the energy-regression and `M_mc`-reduction ratios are
//! computed against.
//!
//! ```text
//! cargo run --release -p snnmap-bench --bin bench_pareto -- \
//!     --workloads LeNet-ImageNet,AlexNet --lambdas 0,0.5,1,2,4 \
//!     --threads 1,2 --json results/BENCH_pareto.json
//! ```

use std::path::PathBuf;

use serde::{Deserialize, Serialize};
use snnmap_bench::table::{write_json, Table};
use snnmap_core::{
    force_directed_budgeted, hsc_placement_threaded, FdConfig, FdRunOpts, Objective,
};
use snnmap_hw::{CostModel, Mesh, Placement};
use snnmap_metrics::{congestion_map, energy};
use snnmap_model::generators::table3_suite;
use snnmap_model::Pcn;
use snnmap_noc::NocReweighter;
use snnmap_trace::NoopSink;

/// Simulated cycles per sim-in-the-loop NoC run — the `snnmap map
/// --sim-in-loop` constant.
const SIM_CYCLES: u64 = 256;

/// Injection scale for the seeded NoC replays (the CLI's formula): the
/// hottest PCN connection injects with probability 1/4 per cycle.
fn noc_scale(pcn: &Pcn) -> f64 {
    let mut wmax = 0.0f64;
    for c in 0..pcn.num_clusters() {
        for (_, w) in pcn.out_edges(c) {
            wmax = wmax.max(w as f64);
        }
    }
    if wmax > 0.0 {
        0.25 / wmax
    } else {
        0.0
    }
}

/// FNV-1a over the cluster→coordinate table (the `bench_fd` digest).
fn digest(p: &Placement, clusters: u32) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    for c in 0..clusters {
        let coord = p.coord_of(c).expect("complete placement");
        eat((u64::from(coord.x) << 16) | u64::from(coord.y));
    }
    format!("{h:016x}")
}

/// One (workload, λc) point of the sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParetoPoint {
    /// Table 3 workload name.
    pub workload: String,
    /// Congestion weight (0 = pure-energy baseline arm).
    pub lambda_c: f64,
    /// Latency-tail weight (shared across the sweep).
    pub lambda_t: f64,
    /// Sim-in-the-loop cadence in sweeps (0 on the baseline arm).
    pub reweight_every: u64,
    /// FD sweeps performed.
    pub sweeps: u64,
    /// Pair swaps applied.
    pub swaps: u64,
    /// Measured spike-energy metric of the final placement.
    pub energy: f64,
    /// `M_ac`: mean expected traffic per router (eq. 12).
    pub m_ac: f64,
    /// `M_mc`: expected traffic of the hottest router (eq. 14).
    pub m_mc: f64,
    /// `energy / energy(λc = 0)` — the regression the congestion term buys.
    pub energy_ratio: f64,
    /// `M_mc / M_mc(λc = 0)` — below 1.0 means the hotspot got cooler.
    pub m_mc_ratio: f64,
    /// FNV-1a placement digest, asserted identical at every thread count.
    pub placement_digest: String,
    /// The thread counts that reproduced the digest.
    pub threads_checked: Vec<usize>,
}

/// The whole sweep record written to `--json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParetoBench {
    /// PCN/NoC seed.
    pub seed: u64,
    /// CPUs available to the process when the sweep ran.
    pub cpus: usize,
    /// Thread arms that exceeded the granted CPUs (digest checks still
    /// hold; their timings would be meaningless, so none are recorded).
    pub oversubscribed: Vec<usize>,
    /// FD sweep cap per run (0 = run to convergence).
    pub max_iters: u64,
    /// Simulated NoC cycles per reweight invocation.
    pub sim_cycles: u64,
    /// One entry per (workload, λc), baseline arm first per workload.
    pub points: Vec<ParetoPoint>,
}

struct Args {
    workloads: Vec<String>,
    lambdas: Vec<f64>,
    lambda_t: f64,
    reweight_every: u64,
    max_iters: u64,
    threads: Vec<usize>,
    seed: u64,
    json: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut workloads = vec!["LeNet-ImageNet".to_string(), "AlexNet".to_string()];
    let mut lambdas = vec![0.0, 0.5, 1.0, 2.0, 4.0];
    let mut lambda_t = 0.0;
    let mut reweight_every = 4;
    let mut max_iters: u64 = 64;
    let mut threads = vec![1usize, 2];
    let mut seed: u64 = 42;
    let mut json = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            return Err("snnmap congestion/energy Pareto sweep".to_string());
        }
        let value = it.next().ok_or_else(|| format!("missing value for {flag}"))?;
        match flag.as_str() {
            "--workloads" => {
                workloads = value.split(',').map(|w| w.trim().to_string()).collect();
            }
            "--lambdas" => {
                lambdas = value
                    .split(',')
                    .map(|l| l.trim().parse::<f64>())
                    .collect::<Result<_, _>>()
                    .map_err(|_| format!("bad --lambdas `{value}`"))?;
                if lambdas.iter().any(|l| !l.is_finite() || *l < 0.0) {
                    return Err("--lambdas wants finite non-negative weights".into());
                }
            }
            "--lambda-latency" => {
                lambda_t =
                    value.parse().map_err(|_| format!("bad --lambda-latency `{value}`"))?
            }
            "--reweight-every" => {
                reweight_every =
                    value.parse().map_err(|_| format!("bad --reweight-every `{value}`"))?
            }
            "--max-iters" => {
                max_iters = value.parse().map_err(|_| format!("bad --max-iters `{value}`"))?
            }
            "--threads" => {
                threads = value
                    .split(',')
                    .map(|t| t.trim().parse::<usize>())
                    .collect::<Result<_, _>>()
                    .map_err(|_| format!("bad --threads `{value}`"))?;
                if threads.is_empty() || threads.contains(&0) {
                    return Err("--threads wants a comma list of positive counts".into());
                }
            }
            "--seed" => seed = value.parse().map_err(|_| format!("bad --seed `{value}`"))?,
            "--json" => json = Some(PathBuf::from(value)),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(Args { workloads, lambdas, lambda_t, reweight_every, max_iters, threads, seed, json })
}

/// Runs one (workload, λc) point at every thread count, asserts the
/// digests agree, and measures the final placement.
#[allow(clippy::too_many_arguments)]
fn run_point(
    name: &str,
    pcn: &Pcn,
    mesh: Mesh,
    lambda_c: f64,
    lambda_t: f64,
    reweight_every: u64,
    max_iters: u64,
    threads: &[usize],
    seed: u64,
) -> ParetoPoint {
    let baseline = lambda_c == 0.0;
    let objective = if baseline {
        Objective::Energy
    } else {
        Objective::Composite { lambda_c, lambda_t }
    };
    let reweight = if baseline { 0 } else { reweight_every };
    let scale = noc_scale(pcn);

    let mut reference: Option<(Placement, u64, u64, String)> = None;
    for &t in threads {
        let mut placement = hsc_placement_threaded(pcn, mesh, t).expect("initial placement");
        let config = FdConfig {
            objective,
            reweight_every: (reweight > 0).then_some(reweight),
            max_iterations: (max_iters > 0).then_some(max_iters),
            threads: t,
            ..FdConfig::default()
        };
        let mut hook = (reweight > 0 && scale > 0.0)
            .then(|| NocReweighter::new(pcn, scale, SIM_CYCLES, seed));
        let mut opts = FdRunOpts::default();
        if let Some(h) = hook.as_mut() {
            opts.reweighter = Some(h);
        }
        let stats =
            force_directed_budgeted(pcn, &mut placement, &config, None, &mut opts, &mut NoopSink)
                .expect("FD");
        let d = digest(&placement, pcn.num_clusters());
        match &reference {
            None => reference = Some((placement, stats.iterations, stats.swaps, d)),
            Some((_, sweeps, swaps, rd)) => {
                assert_eq!(
                    &d, rd,
                    "{name} λc={lambda_c}: digest diverged at threads={t}"
                );
                assert_eq!(stats.iterations, *sweeps, "{name} λc={lambda_c} threads={t}");
                assert_eq!(stats.swaps, *swaps, "{name} λc={lambda_c} threads={t}");
            }
        }
    }
    let (placement, sweeps, swaps, placement_digest) = reference.expect("at least one arm");

    let e = energy(pcn, &placement, CostModel::paper_target()).expect("energy metric");
    let cong = congestion_map(pcn, &placement).expect("congestion map").stats();
    ParetoPoint {
        workload: name.to_string(),
        lambda_c,
        lambda_t,
        reweight_every: reweight,
        sweeps,
        swaps,
        energy: e,
        m_ac: cong.average,
        m_mc: cong.max,
        energy_ratio: 1.0, // filled in against the baseline arm below
        m_mc_ratio: 1.0,
        placement_digest,
        threads_checked: threads.to_vec(),
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            eprintln!(
                "usage: bench_pareto [--workloads A,B,..] [--lambdas F,F,..] \
                 [--lambda-latency F] [--reweight-every N] [--max-iters N (0 = converge)] \
                 [--threads A,B,..] [--seed N] [--json PATH]"
            );
            std::process::exit(2);
        }
    };

    let cpus = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
    let oversubscribed: Vec<usize> =
        args.threads.iter().copied().filter(|&t| t > cpus).collect();
    if !oversubscribed.is_empty() {
        eprintln!(
            "[bench_pareto] WARNING: thread arm(s) {oversubscribed:?} exceed the {cpus} \
             CPU(s) granted to this process; determinism checks still hold."
        );
    }

    let suite = table3_suite();
    let mut points: Vec<ParetoPoint> = Vec::new();
    for name in &args.workloads {
        let Some(bench) = suite.iter().find(|b| b.row.name == name) else {
            eprintln!("[bench_pareto] unknown workload `{name}`; Table 3 names:");
            for b in &suite {
                eprintln!("  {}", b.row.name);
            }
            std::process::exit(2);
        };
        eprintln!(
            "[bench_pareto] {}: building PCN ({} clusters on {0}'s {}x{} mesh)...",
            name, bench.row.clusters, bench.row.mesh_side, bench.row.mesh_side
        );
        let pcn = bench.pcn(args.seed).expect("Table 3 PCN");
        let mesh = Mesh::new(bench.row.mesh_side, bench.row.mesh_side).expect("mesh");

        // The λc = 0 energy arm always runs first: it is the ratio
        // denominator even when 0 is missing from --lambdas.
        let mut lambdas: Vec<f64> = vec![0.0];
        lambdas.extend(args.lambdas.iter().copied().filter(|&l| l > 0.0));

        let base_idx = points.len();
        for &lambda_c in &lambdas {
            eprintln!("[bench_pareto] {name}: λc={lambda_c}...");
            points.push(run_point(
                name,
                &pcn,
                mesh,
                lambda_c,
                args.lambda_t,
                args.reweight_every,
                args.max_iters,
                &args.threads,
                args.seed,
            ));
        }
        let (base_energy, base_mmc) = (points[base_idx].energy, points[base_idx].m_mc);
        for p in &mut points[base_idx..] {
            p.energy_ratio = p.energy / base_energy;
            p.m_mc_ratio = p.m_mc / base_mmc;
        }
    }

    println!(
        "\nCongestion/energy Pareto sweep (seed {}, cap {}, reweight every {} sweep(s), \
         λt = {})\n",
        args.seed,
        if args.max_iters == 0 { "none".to_string() } else { args.max_iters.to_string() },
        args.reweight_every,
        args.lambda_t
    );
    let mut t = Table::new(&[
        "Workload", "λc", "Sweeps", "Energy", "M_ac", "M_mc", "ΔE %", "ΔM_mc %", "Digest",
    ]);
    for p in &points {
        t.row(&[
            p.workload.clone(),
            format!("{}", p.lambda_c),
            p.sweeps.to_string(),
            format!("{:.4e}", p.energy),
            format!("{:.3}", p.m_ac),
            format!("{:.3}", p.m_mc),
            format!("{:+.2}", (p.energy_ratio - 1.0) * 100.0),
            format!("{:+.2}", (p.m_mc_ratio - 1.0) * 100.0),
            p.placement_digest.clone(),
        ]);
    }
    t.print();

    for name in &args.workloads {
        let best = points
            .iter()
            .filter(|p| &p.workload == name && p.lambda_c > 0.0)
            .min_by(|a, b| a.m_mc_ratio.total_cmp(&b.m_mc_ratio));
        if let Some(p) = best {
            println!(
                "\n{}: best M_mc reduction {:.1}% at λc={} (energy {:+.2}%)",
                name,
                (1.0 - p.m_mc_ratio) * 100.0,
                p.lambda_c,
                (p.energy_ratio - 1.0) * 100.0
            );
        }
    }
    println!(
        "\nall {} points reproduced their placement digest at threads {:?}",
        points.len(),
        args.threads
    );

    let record = ParetoBench {
        seed: args.seed,
        cpus,
        oversubscribed,
        max_iters: args.max_iters,
        sim_cycles: SIM_CYCLES,
        points,
    };
    if let Some(path) = &args.json {
        write_json(path, &record).expect("write json");
        println!("wrote {}", path.display());
    }
}
