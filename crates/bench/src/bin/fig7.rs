//! Regenerates Figure 7: the three potential-energy fields, printed as
//! value grids around the field origin.

use snnmap_bench::table::Table;
use snnmap_core::Potential;
use snnmap_hw::CostModel;

fn main() {
    let fields = [
        ("u_a(p) = |x| + |y|  (eq. 19)", Potential::L1),
        ("u_b(p) = (|x| + |y|)^2  (eq. 20)", Potential::L1Squared),
        ("u_c(p) = x^2 + y^2  (eq. 21)", Potential::L2Squared),
        (
            "u(p) = (||p||+1)*EN_r + ||p||*EN_w  (eq. 25)",
            Potential::energy_model(CostModel::paper_target()),
        ),
    ];
    const R: i32 = 4;
    for (name, field) in fields {
        println!("\n{name}\n");
        let mut t = Table::new(
            &std::iter::once("y\\x".to_string())
                .chain((-R..=R).map(|x| x.to_string()))
                .collect::<Vec<_>>()
                .iter()
                .map(|s| s.as_str())
                .collect::<Vec<_>>(),
        );
        for y in -R..=R {
            let cells: Vec<String> = std::iter::once(y.to_string())
                .chain((-R..=R).map(|x| format!("{:.1}", field.value(x, y))))
                .collect();
            t.row(&cells);
        }
        t.print();
    }
    println!(
        "\nThe quadratic fields (u_b, u_c) grow superlinearly with distance, so pairs far\n\
         apart gain disproportionate potential energy and are pulled together first (§4.4.2)."
    );
}
