//! Extension experiment X4: simulated latency vs offered load.
//!
//! The paper optimizes *expected* congestion analytically; this
//! experiment shows what that buys in executable terms — sweeping the
//! injection rate on the cycle-level NoC simulator, a good placement
//! keeps latency flat to a much higher offered load before queueing
//! (and eventually backpressure) sets in.

use snnmap_bench::args::Options;
use snnmap_bench::methods::Method;
use snnmap_bench::table::Table;
use snnmap_hw::Mesh;
use snnmap_model::generators::table3_suite;
use snnmap_noc::{NocConfig, NocSim, PcnTraffic, Routing};

fn main() {
    let options = Options::from_env();
    // A mid-size benchmark with real structure: LeNet-ImageNet.
    let bench = table3_suite().into_iter().find(|b| b.row.name == "LeNet-ImageNet").unwrap();
    let pcn = bench.pcn(options.seed).expect("builds");
    let mesh = Mesh::square_for(pcn.num_clusters() as u64).expect("fits");
    println!(
        "\nSimulated latency vs offered load on {} ({} clusters, {mesh})",
        bench.row.name,
        pcn.num_clusters()
    );
    println!("cycle-level simulation, random minimal routing, 2000 injection cycles\n");

    let loads = [0.005, 0.01, 0.02, 0.05, 0.1, 0.2];
    let mut t = Table::new(&[
        "Offered load (pkts/router/cycle)",
        "Random: avg lat",
        "Random: rejected",
        "Proposed: avg lat",
        "Proposed: rejected",
    ]);
    let placements: Vec<_> = [Method::Random, Method::Proposed]
        .iter()
        .map(|m| m.run(&pcn, mesh, None, options.seed).expect("fits").placement)
        .collect();
    for &load in &loads {
        let mut cells = vec![format!("{load}")];
        for placement in &placements {
            let scale = load * mesh.len() as f64 / pcn.total_traffic();
            let mut sim = NocSim::new(
                mesh,
                NocConfig {
                    routing: Routing::RandomMinimal,
                    seed: options.seed,
                    queue_capacity: 8,
                },
            );
            let mut traffic = PcnTraffic::new(&pcn, placement, scale, options.seed);
            traffic.run(&mut sim, 2_000);
            let s = sim.stats();
            let reject_pct = if s.injected + s.rejected > 0 {
                100.0 * s.rejected as f64 / (s.injected + s.rejected) as f64
            } else {
                0.0
            };
            cells.push(format!("{:.2}", s.average_latency()));
            cells.push(format!("{reject_pct:.1}%"));
        }
        t.row(&cells);
    }
    t.print();
    println!(
        "\nThe proposed placement's short routes keep delivered latency an order of magnitude\n\
         lower once the network is loaded (the random placement's long routes saturate shared\n\
         links first). At very high offered loads both placements reject injections at the\n\
         source ports — a single local port drains at one packet per cycle regardless of\n\
         placement — so the differentiator is delivered latency, not acceptance."
    );
}
