//! Resilience benchmark: an FD run interrupted at several sweep offsets
//! and resumed from its checkpoint must land on a placement
//! **byte-identical** (sha256 over the placement document) to the
//! uninterrupted run, at every thread count. Also measures the
//! disruption advantage of incremental fault repair over a full remap.
//!
//! ```text
//! cargo run --release -p snnmap-bench --bin bench_resume -- \
//!     --clusters 60000 --mesh 256x256 --sweeps 6 \
//!     --threads 1,4 --json results/BENCH_resume.json
//! ```

use std::path::PathBuf;
use std::time::Instant;

use serde::{Deserialize, Serialize};
use snnmap_bench::table::{write_json, Table};
use snnmap_core::{FdCheckpoint, FdRunOpts, Mapper, RunBudget};
use snnmap_hw::{Coord, FaultMap, Mesh, Placement};
use snnmap_io::render_placement;
use snnmap_model::generators::random_pcn;
use snnmap_trace::sha256_hex;

/// One interrupted-and-resumed measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResumeRun {
    /// Sweep offset the first run was killed at (its `--max-sweeps`).
    pub kill_at_sweep: u64,
    /// Stop reason of the killed run (always `sweep_cap_reached`).
    pub kill_stop: String,
    /// sha256 of the resumed run's final placement document.
    pub resumed_digest: String,
    /// Total sweeps after resuming (counts the checkpoint's sweeps).
    pub resumed_sweeps: u64,
    /// Whether the resumed placement is byte-identical to the
    /// uninterrupted one.
    pub identical: bool,
    /// Wall-clock seconds of kill + resume together.
    pub secs: f64,
}

/// All measurements at one thread count.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThreadSection {
    /// Worker threads.
    pub threads: usize,
    /// sha256 of the uninterrupted run's placement document.
    pub full_digest: String,
    /// Sweeps of the uninterrupted run.
    pub full_sweeps: u64,
    /// Wall-clock seconds of the uninterrupted run (init + FD).
    pub full_secs: f64,
    /// One entry per kill offset.
    pub kills: Vec<ResumeRun>,
}

/// Disruption comparison: incremental repair vs full remap after the
/// same hardware degradation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RepairSection {
    /// Cores killed under the live placement.
    pub new_dead_cores: u64,
    /// Clusters the incremental repair relocated (eviction + local FD).
    pub repair_moved: u64,
    /// Cores the region-masked FD pass was allowed to touch.
    pub repair_region_cores: u64,
    /// Clusters a full remap under the same faults relocates.
    pub full_remap_moved: u64,
}

/// The whole benchmark record written to `--json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResumeBench {
    /// PCN cluster count.
    pub clusters: u32,
    /// PCN connection count.
    pub connections: u64,
    /// Mesh as `RxC`.
    pub mesh: String,
    /// PCN generator seed.
    pub seed: u64,
    /// PCN average out-degree.
    pub degree: f64,
    /// Total sweep cap of the uninterrupted reference run.
    pub sweep_cap: u64,
    /// One section per `--threads` value, in the given order.
    pub runs: Vec<ThreadSection>,
    /// Incremental-repair disruption comparison.
    pub repair: RepairSection,
}

/// sha256 over the canonical placement document — the exact bytes
/// `snnmap map --out` would write, so "identical digest" means
/// "identical file on disk".
fn digest(p: &Placement) -> String {
    sha256_hex(render_placement(p).as_bytes())
}

struct Args {
    clusters: u32,
    mesh: Mesh,
    seed: u64,
    degree: f64,
    sweeps: u64,
    threads: Vec<usize>,
    json: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut clusters: u32 = 60_000;
    let mut mesh_spec = "256x256".to_string();
    let mut seed: u64 = 42;
    let mut degree: f64 = 4.0;
    let mut sweeps: u64 = 6;
    let mut threads = vec![1usize, 4];
    let mut json = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            return Err("snnmap checkpoint/resume benchmark".to_string());
        }
        let value = it.next().ok_or_else(|| format!("missing value for {flag}"))?;
        match flag.as_str() {
            "--clusters" => {
                clusters = value.parse().map_err(|_| format!("bad --clusters `{value}`"))?
            }
            "--mesh" => mesh_spec = value,
            "--seed" => seed = value.parse().map_err(|_| format!("bad --seed `{value}`"))?,
            "--degree" => {
                degree = value.parse().map_err(|_| format!("bad --degree `{value}`"))?
            }
            "--sweeps" => {
                sweeps = value.parse().map_err(|_| format!("bad --sweeps `{value}`"))?;
                if sweeps < 2 {
                    return Err("--sweeps wants at least 2 (kills happen strictly inside)".into());
                }
            }
            "--threads" => {
                threads = value
                    .split(',')
                    .map(|t| t.trim().parse::<usize>())
                    .collect::<Result<_, _>>()
                    .map_err(|_| format!("bad --threads `{value}`"))?;
                if threads.is_empty() || threads.contains(&0) {
                    return Err("--threads wants a comma list of positive counts".into());
                }
            }
            "--json" => json = Some(PathBuf::from(value)),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    let (r, c) = mesh_spec
        .split_once(['x', 'X'])
        .ok_or_else(|| format!("expected `--mesh RxC`, got `{mesh_spec}`"))?;
    let rows: u16 = r.parse().map_err(|_| format!("bad mesh rows `{r}`"))?;
    let cols: u16 = c.parse().map_err(|_| format!("bad mesh cols `{c}`"))?;
    let mesh = Mesh::new(rows, cols).map_err(|e| e.to_string())?;
    Ok(Args { clusters, mesh, seed, degree, sweeps, threads, json })
}

/// Kill offsets strictly inside `1..cap`: early, middle and late.
fn kill_offsets(cap: u64) -> Vec<u64> {
    let mut offs = vec![1, cap / 2, cap - 1];
    offs.retain(|&o| o >= 1 && o < cap);
    offs.dedup();
    offs
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            eprintln!(
                "usage: bench_resume [--clusters N] [--mesh RxC] [--seed N] [--degree F] \
                 [--sweeps N] [--threads A,B,..] [--json PATH]"
            );
            std::process::exit(2);
        }
    };

    eprintln!(
        "[bench_resume] building PCN: {} clusters, degree {}, seed {}...",
        args.clusters, args.degree, args.seed
    );
    let pcn = random_pcn(args.clusters, args.degree, args.seed).expect("PCN build");
    let offsets = kill_offsets(args.sweeps);
    assert!(offsets.len() >= 3 || args.sweeps < 4, "expected >=3 kill offsets");

    let mut sections: Vec<ThreadSection> = Vec::new();
    let mut baseline_placement: Option<Placement> = None;
    for &threads in &args.threads {
        let mapper = Mapper::builder().threads(threads).build();

        eprintln!("[bench_resume] threads={threads}: uninterrupted reference run...");
        let t0 = Instant::now();
        let mut opts = FdRunOpts {
            budget: RunBudget { max_sweeps: Some(args.sweeps), ..RunBudget::default() },
            ..FdRunOpts::default()
        };
        let full = mapper.map_budgeted(&pcn, args.mesh, &mut opts).expect("reference run");
        let full_secs = t0.elapsed().as_secs_f64();
        let full_stats = full.fd_stats.expect("FD ran");
        let full_digest = digest(&full.placement);
        if baseline_placement.is_none() {
            baseline_placement = Some(full.placement.clone());
        }

        let mut kills: Vec<ResumeRun> = Vec::new();
        for &offset in &offsets {
            eprintln!("[bench_resume] threads={threads}: kill at sweep {offset}, resume...");
            let t1 = Instant::now();
            let mut slot: Option<FdCheckpoint> = None;
            let kill_stop;
            {
                let mut writer =
                    |cp: &FdCheckpoint| -> Result<(), String> {
                        slot = Some(cp.clone());
                        Ok(())
                    };
                let mut opts = FdRunOpts {
                    budget: RunBudget { max_sweeps: Some(offset), ..RunBudget::default() },
                    on_checkpoint: Some(&mut writer),
                    ..FdRunOpts::default()
                };
                let killed =
                    mapper.map_budgeted(&pcn, args.mesh, &mut opts).expect("killed run");
                kill_stop = killed.fd_stats.expect("FD ran").stop.as_str().to_string();
            }
            let checkpoint = slot.expect("budgeted stop flushes a checkpoint");
            assert_eq!(checkpoint.sweeps, offset);

            let mut opts = FdRunOpts {
                budget: RunBudget { max_sweeps: Some(args.sweeps), ..RunBudget::default() },
                ..FdRunOpts::default()
            };
            let resumed = mapper.resume(&pcn, &checkpoint, &mut opts).expect("resumed run");
            let secs = t1.elapsed().as_secs_f64();
            let resumed_stats = resumed.fd_stats.expect("FD ran");
            let resumed_digest = digest(&resumed.placement);
            let identical = resumed_digest == full_digest;
            assert!(
                identical,
                "threads={threads}: resume from sweep {offset} diverged from the \
                 uninterrupted run"
            );
            assert_eq!(resumed_stats.iterations, full_stats.iterations);
            kills.push(ResumeRun {
                kill_at_sweep: offset,
                kill_stop,
                resumed_digest,
                resumed_sweeps: resumed_stats.iterations,
                identical,
                secs,
            });
        }
        sections.push(ThreadSection {
            threads,
            full_digest,
            full_sweeps: full_stats.iterations,
            full_secs,
            kills,
        });
    }

    // All thread counts agree with each other too (the engine is
    // thread-count invariant).
    for s in &sections[1..] {
        assert_eq!(
            s.full_digest, sections[0].full_digest,
            "threads={} diverged from threads={}",
            s.threads, sections[0].threads
        );
    }

    // Disruption: degrade the hardware under the live placement, then
    // compare the incremental repair against a from-scratch remap.
    eprintln!("[bench_resume] incremental repair vs full remap...");
    let live = baseline_placement.expect("at least one thread count ran");
    let previous = FaultMap::new(args.mesh);
    let mut current = FaultMap::new(args.mesh);
    let n = pcn.num_clusters();
    let step = (n / 12).max(1);
    let mut killed_cores: Vec<Coord> = Vec::new();
    for k in 0..12u32 {
        let cluster = (k * step) % n;
        let coord = live.coord_of(cluster).expect("complete placement");
        if !killed_cores.contains(&coord) {
            current.kill_core(coord).expect("in mesh");
            killed_cores.push(coord);
        }
    }

    let mapper = Mapper::builder().threads(args.threads[0]).build();
    let mut repaired = live.clone();
    let report = mapper
        .repair_incremental(
            &pcn,
            &mut repaired,
            &previous,
            &current,
            2,
            RunBudget { max_sweeps: Some(args.sweeps), ..RunBudget::default() },
        )
        .expect("incremental repair");

    let full_mapper =
        Mapper::builder().threads(args.threads[0]).fault_map(current.clone()).build();
    let mut opts = FdRunOpts {
        budget: RunBudget { max_sweeps: Some(args.sweeps), ..RunBudget::default() },
        ..FdRunOpts::default()
    };
    let remapped =
        full_mapper.map_budgeted(&pcn, args.mesh, &mut opts).expect("full remap");
    let full_remap_moved =
        (0..n).filter(|&c| remapped.placement.coord_of(c) != live.coord_of(c)).count() as u64;
    assert!(
        report.moved < full_remap_moved,
        "incremental repair must disturb fewer clusters: {} vs {}",
        report.moved,
        full_remap_moved
    );
    let repair = RepairSection {
        new_dead_cores: killed_cores.len() as u64,
        repair_moved: report.moved,
        repair_region_cores: report.region_cores,
        full_remap_moved,
    };

    println!(
        "\ncheckpoint/resume: {} clusters on {} (seed {}, {} sweeps)\n",
        args.clusters, args.mesh, args.seed, args.sweeps
    );
    let mut t = Table::new(&["Threads", "Killed at", "Resumed sweeps", "Identical", "Secs"]);
    for s in &sections {
        for k in &s.kills {
            t.row(&[
                s.threads.to_string(),
                k.kill_at_sweep.to_string(),
                k.resumed_sweeps.to_string(),
                k.identical.to_string(),
                format!("{:.3}", k.secs),
            ]);
        }
    }
    t.print();
    println!(
        "\nall {} kill/resume runs reproduced the uninterrupted placement byte-for-byte",
        sections.iter().map(|s| s.kills.len()).sum::<usize>()
    );
    println!(
        "repair: {} dead cores -> {} clusters moved (region {} cores) vs {} under full remap",
        repair.new_dead_cores, repair.repair_moved, repair.repair_region_cores,
        repair.full_remap_moved
    );

    let record = ResumeBench {
        clusters: pcn.num_clusters(),
        connections: pcn.num_connections(),
        mesh: format!("{}x{}", args.mesh.rows(), args.mesh.cols()),
        seed: args.seed,
        degree: args.degree,
        sweep_cap: args.sweeps,
        runs: sections,
        repair,
    };
    if let Some(path) = &args.json {
        write_json(path, &record).expect("write json");
        println!("wrote {}", path.display());
    }
}
