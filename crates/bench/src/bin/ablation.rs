//! Extension experiment: ablation of the FD design choices (§4.5) —
//! the λ queue fraction and the potential field — on ResNet (or the
//! largest benchmark within the chosen scale).

use snnmap_bench::ablation::{lambda_sweep, potential_sweep, tension_mode_sweep};
use snnmap_bench::args::Options;
use snnmap_bench::comparison::suite_at_scale;
use snnmap_bench::table::{fmt_value, write_json, Table};
use snnmap_hw::Mesh;

fn main() {
    let options = Options::from_env();
    let bench = suite_at_scale(&options)
        .into_iter()
        .max_by_key(|b| b.row.clusters)
        .expect("suite nonempty");
    eprintln!("[ablation] building {}...", bench.row.name);
    let pcn = bench.pcn(options.seed).expect("benchmark builds");
    let mesh = Mesh::square_for(pcn.num_clusters() as u64).expect("fits");

    println!(
        "\nFD ablations on {} ({} clusters, {} connections)\n",
        bench.row.name,
        pcn.num_clusters(),
        pcn.num_connections()
    );

    println!("lambda sweep (potential u_c):\n");
    let lambdas = [0.05, 0.1, 0.2, 0.3, 0.5, 0.8, 1.0];
    let lam = lambda_sweep(&pcn, mesh, &lambdas);
    let mut t = Table::new(&["Setting", "Energy", "Iterations", "Swaps", "Time (s)"]);
    for r in &lam {
        t.row(&[
            r.setting.clone(),
            fmt_value(r.energy),
            r.iterations.to_string(),
            r.swaps.to_string(),
            fmt_value(r.elapsed_secs),
        ]);
    }
    t.print();

    println!("\npotential-field sweep (lambda = 0.3):\n");
    let pot = potential_sweep(&pcn, mesh);
    let mut t = Table::new(&["Setting", "Energy", "Iterations", "Swaps", "Time (s)"]);
    for r in &pot {
        t.row(&[
            r.setting.clone(),
            fmt_value(r.energy),
            r.iterations.to_string(),
            r.swaps.to_string(),
            fmt_value(r.elapsed_secs),
        ]);
    }
    t.print();

    println!("\ntension bookkeeping (exact vs paper's naive force sum):\n");
    let ten = tension_mode_sweep(&pcn, mesh);
    let mut t = Table::new(&["Setting", "Energy", "Iterations", "Swaps", "Time (s)"]);
    for r in &ten {
        t.row(&[
            r.setting.clone(),
            fmt_value(r.energy),
            r.iterations.to_string(),
            r.swaps.to_string(),
            fmt_value(r.elapsed_secs),
        ]);
    }
    t.print();

    if let Some(path) = &options.json {
        let all: Vec<_> = lam.into_iter().chain(pot).chain(ten).collect();
        write_json(path, &all).expect("write json");
        println!("\nwrote {}", path.display());
    }
}
