//! Convergence-trace benchmark: runs the full proposed pipeline once
//! *without* tracing and once *with* an in-memory trace sink on the same
//! workload, asserts the two placements are **sha256-identical** (tracing
//! must never perturb the pipeline), and aggregates the collected
//! telemetry — per-phase spans, per-sweep FD convergence, thread-pool
//! counters — into a machine-readable `BENCH_trace.json`.
//!
//! ```text
//! cargo run --release -p snnmap-bench --bin bench_trace -- \
//!     --clusters 60000 --mesh 256x256 --max-iters 40 \
//!     --threads 4 --json results/BENCH_trace.json
//! ```

use std::path::PathBuf;
use std::time::Instant;

use serde::{Deserialize, Serialize};
use snnmap_bench::table::{write_json, Table};
use snnmap_core::Mapper;
use snnmap_hw::{Mesh, Placement};
use snnmap_model::generators::random_pcn;
use snnmap_trace::{MemorySink, Sha256, TraceEvent};

// The trace layer reports allocation deltas per phase; they are all zero
// unless the binary installs the counting allocator.
#[global_allocator]
static ALLOC: snnmap_trace::CountingAlloc = snnmap_trace::CountingAlloc::new();

/// One pipeline phase span from the trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TracePhase {
    /// Phase name (`toposort`, `hsc_init`, `fd`, ...).
    pub name: String,
    /// Wall-clock nanoseconds.
    pub wall_ns: u64,
    /// Heap bytes allocated during the phase.
    pub alloc_bytes: u64,
    /// Heap allocations during the phase.
    pub allocs: u64,
}

/// One FD sweep's convergence telemetry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceSweep {
    /// 1-based sweep number.
    pub sweep: u64,
    /// Queue length at sweep start.
    pub queue: u64,
    /// λ-selection cutoff (pairs considered this sweep).
    pub cutoff: u64,
    /// Swaps applied this sweep.
    pub applied: u64,
    /// Dirty clusters after the sweep.
    pub dirty: u64,
    /// Positive-tension pairs carried to the next queue.
    pub carried: u64,
    /// System energy after the sweep.
    pub energy: f64,
    /// Wall-clock nanoseconds of the sweep.
    pub wall_ns: u64,
}

/// The FD engine's configuration as traced.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceFdConfig {
    /// Potential field.
    pub potential: String,
    /// Tension mode.
    pub tension: String,
    /// λ queue fraction.
    pub lambda: f64,
    /// Iteration cap, if any.
    pub max_iterations: Option<u64>,
    /// Resolved worker threads.
    pub threads: usize,
}

/// The FD engine's final statistics as traced.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceFdDone {
    /// Sweeps performed.
    pub iterations: u64,
    /// Swaps applied in total.
    pub swaps: u64,
    /// Energy before refinement.
    pub initial_energy: f64,
    /// Energy after refinement.
    pub final_energy: f64,
    /// Whether the queue emptied before any cap fired.
    pub converged: bool,
}

/// Thread-pool utilization counters for the FD scope.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TracePar {
    /// Parallel-helper invocations.
    pub calls: u64,
    /// Items handed to the parallel helpers (workload-deterministic).
    pub items: u64,
    /// Invocations that actually fanned out (tuner-dependent).
    pub parallel_calls: u64,
    /// Worker threads spawned in total (tuner-dependent).
    pub workers_spawned: u64,
    /// Nanoseconds spent inside tuned parallel helpers.
    pub busy_ns: u64,
}

/// The whole record written to `--json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceBench {
    /// Trace schema version the telemetry was collected under.
    pub schema: u64,
    /// PCN cluster count.
    pub clusters: u32,
    /// PCN connection count.
    pub connections: u64,
    /// Mesh as `RxC`.
    pub mesh: String,
    /// PCN generator seed.
    pub seed: u64,
    /// PCN average out-degree.
    pub degree: f64,
    /// FD iteration cap.
    pub max_iters: u64,
    /// Worker threads requested.
    pub threads: usize,
    /// Wall-clock seconds of the untraced pipeline run.
    pub untraced_secs: f64,
    /// Wall-clock seconds of the traced pipeline run.
    pub traced_secs: f64,
    /// sha256 of the untraced placement's coordinate table.
    pub untraced_digest: String,
    /// sha256 of the traced placement (must equal `untraced_digest`).
    pub traced_digest: String,
    /// Per-phase spans, in pipeline order.
    pub phases: Vec<TracePhase>,
    /// The FD configuration event.
    pub fd_config: Option<TraceFdConfig>,
    /// Per-sweep convergence record.
    pub sweeps: Vec<TraceSweep>,
    /// Final FD statistics.
    pub fd_done: Option<TraceFdDone>,
    /// FD-scope thread-pool counters.
    pub par: Option<TracePar>,
}

/// sha256 over the cluster→coordinate table in cluster order, each
/// coordinate as `x.to_le_bytes() ++ y.to_le_bytes()`.
fn digest(p: &Placement, clusters: u32) -> String {
    let mut h = Sha256::new();
    for c in 0..clusters {
        let coord = p.coord_of(c).expect("complete placement");
        h.update(&coord.x.to_le_bytes());
        h.update(&coord.y.to_le_bytes());
    }
    h.finalize_hex()
}

struct Args {
    clusters: u32,
    mesh: Mesh,
    seed: u64,
    degree: f64,
    max_iters: u64,
    threads: usize,
    json: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut clusters: u32 = 60_000;
    let mut mesh_spec = "256x256".to_string();
    let mut seed: u64 = 42;
    let mut degree: f64 = 4.0;
    let mut max_iters: u64 = 40;
    let mut threads: usize = 4;
    let mut json = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            return Err("snnmap pipeline trace benchmark".to_string());
        }
        let value = it.next().ok_or_else(|| format!("missing value for {flag}"))?;
        match flag.as_str() {
            "--clusters" => {
                clusters = value.parse().map_err(|_| format!("bad --clusters `{value}`"))?
            }
            "--mesh" => mesh_spec = value,
            "--seed" => seed = value.parse().map_err(|_| format!("bad --seed `{value}`"))?,
            "--degree" => {
                degree = value.parse().map_err(|_| format!("bad --degree `{value}`"))?
            }
            "--max-iters" => {
                max_iters =
                    value.parse().map_err(|_| format!("bad --max-iters `{value}`"))?
            }
            "--threads" => {
                threads = value.parse().map_err(|_| format!("bad --threads `{value}`"))?;
                if threads == 0 {
                    return Err("--threads wants a positive count".into());
                }
            }
            "--json" => json = Some(PathBuf::from(value)),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    let (r, c) = mesh_spec
        .split_once(['x', 'X'])
        .ok_or_else(|| format!("expected `--mesh RxC`, got `{mesh_spec}`"))?;
    let rows: u16 = r.parse().map_err(|_| format!("bad mesh rows `{r}`"))?;
    let cols: u16 = c.parse().map_err(|_| format!("bad mesh cols `{c}`"))?;
    let mesh = Mesh::new(rows, cols).map_err(|e| e.to_string())?;
    Ok(Args { clusters, mesh, seed, degree, max_iters, threads, json })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            eprintln!(
                "usage: bench_trace [--clusters N] [--mesh RxC] [--seed N] [--degree F] \
                 [--max-iters N] [--threads N] [--json PATH]"
            );
            std::process::exit(2);
        }
    };

    eprintln!(
        "[bench_trace] building PCN: {} clusters, degree {}, seed {}...",
        args.clusters, args.degree, args.seed
    );
    let pcn = random_pcn(args.clusters, args.degree, args.seed).expect("PCN build");
    let mapper = Mapper::builder()
        .max_iterations(args.max_iters)
        .threads(args.threads)
        .build();

    eprintln!("[bench_trace] untraced pipeline on {}...", args.mesh);
    let t0 = Instant::now();
    let untraced = mapper.map(&pcn, args.mesh).expect("untraced map");
    let untraced_secs = t0.elapsed().as_secs_f64();
    let untraced_digest = digest(&untraced.placement, args.clusters);

    eprintln!("[bench_trace] traced pipeline (in-memory sink)...");
    let mut sink = MemorySink::new();
    let t1 = Instant::now();
    let traced = mapper.map_traced(&pcn, args.mesh, &mut sink).expect("traced map");
    let traced_secs = t1.elapsed().as_secs_f64();
    let traced_digest = digest(&traced.placement, args.clusters);

    // The tentpole guarantee: instrumentation observes, never perturbs.
    assert_eq!(
        untraced_digest, traced_digest,
        "tracing changed the placement — instrumentation is not passive"
    );
    assert_eq!(
        untraced.fd_stats.as_ref().map(|s| (s.iterations, s.swaps)),
        traced.fd_stats.as_ref().map(|s| (s.iterations, s.swaps)),
        "tracing changed the FD statistics"
    );

    let mut phases = Vec::new();
    let mut fd_config = None;
    let mut sweeps = Vec::new();
    let mut fd_done = None;
    let mut par = None;
    for event in sink.events() {
        match event {
            TraceEvent::Phase(p) => phases.push(TracePhase {
                name: p.name.clone(),
                wall_ns: p.wall_ns,
                alloc_bytes: p.alloc_bytes,
                allocs: p.allocs,
            }),
            TraceEvent::FdConfig(c) => {
                fd_config = Some(TraceFdConfig {
                    potential: c.potential.clone(),
                    tension: c.tension.clone(),
                    lambda: c.lambda,
                    max_iterations: c.max_iterations,
                    threads: c.threads,
                })
            }
            TraceEvent::FdSweep(s) => sweeps.push(TraceSweep {
                sweep: s.sweep,
                queue: s.queue,
                cutoff: s.cutoff,
                applied: s.applied,
                dirty: s.dirty,
                carried: s.carried,
                energy: s.energy,
                wall_ns: s.wall_ns,
            }),
            TraceEvent::FdDone(d) => {
                fd_done = Some(TraceFdDone {
                    iterations: d.iterations,
                    swaps: d.swaps,
                    initial_energy: d.initial_energy,
                    final_energy: d.final_energy,
                    converged: d.converged,
                })
            }
            TraceEvent::Par(p) if p.scope == "fd" => {
                par = Some(TracePar {
                    calls: p.calls,
                    items: p.items,
                    parallel_calls: p.parallel_calls,
                    workers_spawned: p.workers_spawned,
                    busy_ns: p.busy_ns,
                })
            }
            _ => {}
        }
    }

    println!(
        "\npipeline trace: {} clusters on {} (seed {}, cap {}, {} threads)\n",
        args.clusters, args.mesh, args.seed, args.max_iters, args.threads
    );
    let mut t = Table::new(&["Phase", "Wall (ms)", "Alloc (MiB)", "Allocs"]);
    for p in &phases {
        t.row(&[
            p.name.clone(),
            format!("{:.2}", p.wall_ns as f64 / 1e6),
            format!("{:.2}", p.alloc_bytes as f64 / (1024.0 * 1024.0)),
            p.allocs.to_string(),
        ]);
    }
    t.print();
    if !sweeps.is_empty() {
        println!();
        let mut t = Table::new(&["Sweep", "Queue", "Cutoff", "Applied", "Dirty", "Energy"]);
        for s in &sweeps {
            t.row(&[
                s.sweep.to_string(),
                s.queue.to_string(),
                s.cutoff.to_string(),
                s.applied.to_string(),
                s.dirty.to_string(),
                format!("{:.6e}", s.energy),
            ]);
        }
        t.print();
    }
    println!(
        "\nuntraced {:.3}s, traced {:.3}s; placements sha256-identical ({})",
        untraced_secs,
        traced_secs,
        &untraced_digest[..16]
    );

    let record = TraceBench {
        schema: snnmap_trace::schema::VERSION,
        clusters: pcn.num_clusters(),
        connections: pcn.num_connections(),
        mesh: format!("{}x{}", args.mesh.rows(), args.mesh.cols()),
        seed: args.seed,
        degree: args.degree,
        max_iters: args.max_iters,
        threads: args.threads,
        untraced_secs,
        traced_secs,
        untraced_digest,
        traced_digest,
        phases,
        fd_config,
        sweeps,
        fd_done,
        par,
    };
    if let Some(path) = &args.json {
        write_json(path, &record).expect("write json");
        println!("wrote {}", path.display());
    }
}
