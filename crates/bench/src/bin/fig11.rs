//! Regenerates Figure 11: average and maximum spike latency per
//! benchmark and method, normalized to random mapping.

use snnmap_bench::args::Options;
use snnmap_bench::comparison::{render_metric_table, run_comparison};
use snnmap_bench::methods::Method;
use snnmap_bench::table::write_json;
use snnmap_metrics::MetricsReport;

fn main() {
    let options = Options::from_env();
    let records = run_comparison(&Method::all(), &options);
    println!(
        "\nFigure 11: average / maximum latency, normalized to Random (scale: {:?})\n",
        options.scale
    );
    let avg: fn(&MetricsReport) -> f64 = |m| m.avg_latency;
    let max: fn(&MetricsReport) -> f64 = |m| m.max_latency;
    render_metric_table(&records, &[("AvgLatency", avg), ("MaxLatency", max)]).print();
    if let Some(path) = &options.json {
        write_json(path, &records).expect("write json");
        println!("\nwrote {}", path.display());
    }
}
