//! Whole-chip-loss benchmark: map the 60k/256×256 reference workload
//! onto a multi-chip board, kill one of its chips, and measure what the
//! incremental evacuation costs compared to a full remap — evacuation
//! wall-clock, clusters moved, and the interconnect-energy delta of the
//! degraded layout. The repair must stay capacity-valid on the surviving
//! chips and land byte-identically at every thread count.
//!
//! ```text
//! cargo run --release -p snnmap-bench --bin bench_chipfail -- \
//!     --clusters 60000 --board 8x8/32x32@4096,65536 --sweeps 6 \
//!     --chip 27 --threads 1,2,4 --json results/BENCH_chipfail.json
//! ```

use std::path::PathBuf;
use std::time::Instant;

use serde::{Deserialize, Serialize};
use snnmap_bench::table::{write_json, Table};
use snnmap_core::{validate_board, FdRunOpts, Mapper, RunBudget};
use snnmap_hw::{Board, CostModel, FaultMap, Placement};
use snnmap_io::render_placement;
use snnmap_model::generators::random_pcn;
use snnmap_model::{Pcn, PcnBuilder};
use snnmap_trace::sha256_hex;

/// One map-then-kill-then-repair measurement at a given thread count.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChipfailRun {
    /// Worker threads.
    pub threads: usize,
    /// Whether this arm asked for more threads than CPUs granted to
    /// the process. An oversubscribed arm still produces the identical
    /// placement — it just measures scheduling pressure, not speedup.
    pub oversubscribed: bool,
    /// Wall-clock seconds of the healthy board-aware map (init + FD).
    pub map_secs: f64,
    /// sha256 of the healthy placement document.
    pub baseline_digest: String,
    /// Interconnect energy of the healthy placement (eq. 9).
    pub baseline_energy: f64,
    /// Wall-clock seconds of the chip evacuation
    /// ([`Mapper::repair_incremental`]).
    pub repair_secs: f64,
    /// Clusters evicted off the dead chip.
    pub evicted: u64,
    /// Clusters whose coordinate changed (eviction + local FD).
    pub moved: u64,
    /// Cores the region-masked FD pass was allowed to touch.
    pub region_cores: u64,
    /// sha256 of the repaired placement document.
    pub repaired_digest: String,
    /// Interconnect energy after the evacuation.
    pub repaired_energy: f64,
}

/// The full-remap comparison arm: remapping from scratch under the same
/// chip loss.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RemapSection {
    /// Wall-clock seconds of the from-scratch faulted map.
    pub secs: f64,
    /// Clusters whose coordinate differs from the healthy baseline —
    /// the disruption a live system would pay to adopt it.
    pub moved: u64,
    /// Interconnect energy of the remapped placement.
    pub energy: f64,
}

/// The graceful-degradation demo arm: a board whose surviving capacity
/// cannot absorb the dead chip's load. The repair reports a typed
/// shortfall instead of erroring.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DegradedSection {
    /// The deliberately tiny board spec.
    pub board: String,
    /// The chip killed out of its two.
    pub chip: u32,
    /// Clusters left unplaced.
    pub unplaced: u64,
    /// Neuron demand of the unplaced clusters.
    pub demand_neurons: u64,
    /// Neuron capacity of the surviving free cores.
    pub spare_neurons: u64,
    /// Whether two independent repairs of the same loss produced the
    /// same typed report (degraded mode is deterministic too).
    pub deterministic: bool,
}

/// The whole benchmark record written to `--json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChipfailBench {
    /// PCN cluster count.
    pub clusters: u32,
    /// PCN connection count.
    pub connections: u64,
    /// Board spec the workload was mapped onto.
    pub board: String,
    /// The board's core mesh as `RxC`.
    pub mesh: String,
    /// Chips on the board.
    pub chips: u32,
    /// The chip killed mid-run.
    pub chip_killed: u32,
    /// PCN generator seed.
    pub seed: u64,
    /// PCN average out-degree.
    pub degree: f64,
    /// FD sweep cap of the healthy map and the full remap.
    pub sweep_cap: u64,
    /// FD sweep cap of the region-masked repair pass.
    pub repair_sweeps: u64,
    /// CPUs granted to the benchmark process.
    pub cpus: usize,
    /// One arm per `--threads` value, in the given order.
    pub runs: Vec<ChipfailRun>,
    /// The full-remap comparison under the same chip loss.
    pub full_remap: RemapSection,
    /// The over-capacity degraded-mode demo.
    pub degraded: DegradedSection,
}

/// Fixed evacuation knobs, matching the serve daemon's online repair so
/// the benchmark measures the same code path operators get.
const REPAIR_RADIUS: u16 = 2;
const REPAIR_SWEEPS: u64 = 16;

/// sha256 over the canonical placement document — the exact bytes
/// `snnmap map --out` would write.
fn digest(p: &Placement) -> String {
    sha256_hex(render_placement(p).as_bytes())
}

fn energy_of(pcn: &Pcn, p: &Placement) -> f64 {
    snnmap_metrics::energy(pcn, p, CostModel::paper_target()).expect("complete placement")
}

struct Args {
    clusters: u32,
    board: Board,
    board_spec: String,
    chip: u32,
    seed: u64,
    degree: f64,
    sweeps: u64,
    threads: Vec<usize>,
    json: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut clusters: u32 = 60_000;
    let mut board_spec = "8x8/32x32@4096,65536".to_string();
    let mut chip: u32 = 27;
    let mut seed: u64 = 42;
    let mut degree: f64 = 4.0;
    let mut sweeps: u64 = 6;
    let mut threads = vec![1usize, 2, 4];
    let mut json = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            return Err("snnmap whole-chip-loss benchmark".to_string());
        }
        let value = it.next().ok_or_else(|| format!("missing value for {flag}"))?;
        match flag.as_str() {
            "--clusters" => {
                clusters = value.parse().map_err(|_| format!("bad --clusters `{value}`"))?
            }
            "--board" => board_spec = value,
            "--chip" => chip = value.parse().map_err(|_| format!("bad --chip `{value}`"))?,
            "--seed" => seed = value.parse().map_err(|_| format!("bad --seed `{value}`"))?,
            "--degree" => {
                degree = value.parse().map_err(|_| format!("bad --degree `{value}`"))?
            }
            "--sweeps" => {
                sweeps = value.parse().map_err(|_| format!("bad --sweeps `{value}`"))?
            }
            "--threads" => {
                threads = value
                    .split(',')
                    .map(|t| t.trim().parse::<usize>())
                    .collect::<Result<_, _>>()
                    .map_err(|_| format!("bad --threads `{value}`"))?;
                if threads.is_empty() || threads.contains(&0) {
                    return Err("--threads wants a comma list of positive counts".into());
                }
            }
            "--json" => json = Some(PathBuf::from(value)),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    let board = Board::parse(&board_spec).map_err(|e| e.to_string())?;
    if chip >= board.num_chips() {
        return Err(format!("--chip {chip} is off the board ({} chips)", board.num_chips()));
    }
    Ok(Args { clusters, board, board_spec, chip, seed, degree, sweeps, threads, json })
}

/// The over-capacity demo: four 1-neuron clusters exactly filling a
/// `1x2/1x2@1,64` board, then one of its two chips dies. Two clusters
/// have nowhere to go — the repair must say so in a typed report, twice,
/// identically.
fn degraded_demo() -> DegradedSection {
    const SPEC: &str = "1x2/1x2@1,64";
    let board = Board::parse(SPEC).expect("demo board");
    let mut b = PcnBuilder::new();
    for _ in 0..4 {
        b.add_cluster(1, 1);
    }
    b.add_edge(0, 1, 1.0).expect("edge");
    b.add_edge(2, 3, 1.0).expect("edge");
    let pcn = b.build().expect("demo PCN");

    let mapper = Mapper::builder().board(board.clone()).build();
    let healthy = mapper.map(&pcn, board.mesh()).expect("demo map").placement;
    let previous = FaultMap::new(board.mesh());
    let mut current = previous.clone();
    current.kill_chip(&board, 1).expect("kill chip 1");

    let mut reports = Vec::new();
    for _ in 0..2 {
        let mut repaired = healthy.clone();
        let report = mapper
            .repair_incremental(
                &pcn,
                &mut repaired,
                &previous,
                &current,
                REPAIR_RADIUS,
                RunBudget { max_sweeps: Some(REPAIR_SWEEPS), ..RunBudget::default() },
            )
            .expect("degraded repair is Ok, not Err");
        reports.push(report.degraded.expect("capacity shortfall is reported"));
    }
    let deterministic = reports[0] == reports[1];
    assert!(deterministic, "degraded reports diverged between identical repairs");
    let d = reports.remove(0);
    assert!(!d.unplaced.is_empty(), "half the demo workload lost its only home");
    DegradedSection {
        board: SPEC.to_string(),
        chip: 1,
        unplaced: d.unplaced.len() as u64,
        demand_neurons: d.demand_neurons,
        spare_neurons: d.spare_neurons,
        deterministic,
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            eprintln!(
                "usage: bench_chipfail [--clusters N] [--board SPEC] [--chip N] [--seed N] \
                 [--degree F] [--sweeps N] [--threads A,B,..] [--json PATH]"
            );
            std::process::exit(2);
        }
    };

    let cpus = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
    let over: Vec<usize> = args.threads.iter().copied().filter(|&t| t > cpus).collect();
    if !over.is_empty() {
        eprintln!(
            "[bench_chipfail] WARNING: only {cpus} CPU(s) granted to this process, but \
             --threads asks for {over:?}; those arms measure scheduling pressure, not \
             speedup, and are marked \"oversubscribed\": true in the JSON artifact."
        );
    }

    let mesh = args.board.mesh();
    eprintln!(
        "[bench_chipfail] building PCN: {} clusters, degree {}, seed {}...",
        args.clusters, args.degree, args.seed
    );
    let pcn = random_pcn(args.clusters, args.degree, args.seed).expect("PCN build");

    let previous = FaultMap::new(mesh);
    let mut current = previous.clone();
    let dead_cores = current.kill_chip(&args.board, args.chip).expect("kill chip");
    eprintln!(
        "[bench_chipfail] chip {} of {} dies ({dead_cores} cores)",
        args.chip,
        args.board.num_chips()
    );

    let mut runs: Vec<ChipfailRun> = Vec::new();
    let mut baseline: Option<Placement> = None;
    for &threads in &args.threads {
        let mapper = Mapper::builder().threads(threads).board(args.board.clone()).build();

        eprintln!("[bench_chipfail] threads={threads}: healthy board-aware map...");
        let t0 = Instant::now();
        let mut opts = FdRunOpts {
            budget: RunBudget { max_sweeps: Some(args.sweeps), ..RunBudget::default() },
            ..FdRunOpts::default()
        };
        let healthy = mapper.map_budgeted(&pcn, mesh, &mut opts).expect("healthy map");
        let map_secs = t0.elapsed().as_secs_f64();
        let baseline_digest = digest(&healthy.placement);
        let baseline_energy = energy_of(&pcn, &healthy.placement);
        validate_board(&pcn, &healthy.placement, None, &args.board)
            .expect("healthy placement is capacity-valid");

        eprintln!("[bench_chipfail] threads={threads}: evacuating chip {}...", args.chip);
        let mut repaired = healthy.placement.clone();
        let t1 = Instant::now();
        let report = mapper
            .repair_incremental(
                &pcn,
                &mut repaired,
                &previous,
                &current,
                REPAIR_RADIUS,
                RunBudget { max_sweeps: Some(REPAIR_SWEEPS), ..RunBudget::default() },
            )
            .expect("chip evacuation");
        let repair_secs = t1.elapsed().as_secs_f64();
        assert!(
            report.degraded.is_none(),
            "the surviving {} chips must absorb one chip's load",
            args.board.num_chips() - 1
        );
        validate_board(&pcn, &repaired, Some(&current), &args.board)
            .expect("repaired placement is capacity-valid and fault-masked");

        if baseline.is_none() {
            baseline = Some(healthy.placement.clone());
        }
        runs.push(ChipfailRun {
            threads,
            oversubscribed: threads > cpus,
            map_secs,
            baseline_digest,
            baseline_energy,
            repair_secs,
            evicted: report.evicted.len() as u64,
            moved: report.moved,
            region_cores: report.region_cores,
            repaired_digest: digest(&repaired),
            repaired_energy: energy_of(&pcn, &repaired),
        });
    }

    // Determinism: every thread count produced the same healthy layout
    // and the same evacuation, byte for byte.
    for r in &runs[1..] {
        assert_eq!(
            r.baseline_digest, runs[0].baseline_digest,
            "threads={} healthy map diverged from threads={}",
            r.threads, runs[0].threads
        );
        assert_eq!(
            r.repaired_digest, runs[0].repaired_digest,
            "threads={} evacuation diverged from threads={}",
            r.threads, runs[0].threads
        );
    }

    // Full remap under the same loss: what a board operator would pay
    // without incremental repair.
    eprintln!("[bench_chipfail] full remap on the degraded board...");
    let live = baseline.expect("at least one thread count ran");
    let remapper = Mapper::builder()
        .threads(args.threads[0])
        .board(args.board.clone())
        .fault_map(current.clone())
        .build();
    let t2 = Instant::now();
    let mut opts = FdRunOpts {
        budget: RunBudget { max_sweeps: Some(args.sweeps), ..RunBudget::default() },
        ..FdRunOpts::default()
    };
    let remapped = remapper.map_budgeted(&pcn, mesh, &mut opts).expect("full remap");
    let remap_secs = t2.elapsed().as_secs_f64();
    validate_board(&pcn, &remapped.placement, Some(&current), &args.board)
        .expect("remapped placement is capacity-valid and fault-masked");
    let n = pcn.num_clusters();
    let full_remap_moved =
        (0..n).filter(|&c| remapped.placement.coord_of(c) != live.coord_of(c)).count() as u64;
    assert!(
        runs[0].moved < full_remap_moved,
        "incremental evacuation must disturb fewer clusters: {} vs {}",
        runs[0].moved,
        full_remap_moved
    );
    let full_remap = RemapSection {
        secs: remap_secs,
        moved: full_remap_moved,
        energy: energy_of(&pcn, &remapped.placement),
    };

    eprintln!("[bench_chipfail] over-capacity degraded-mode demo...");
    let degraded = degraded_demo();

    println!(
        "\nchip loss: {} clusters on {} (chip {} of {} dies, {} cores)\n",
        args.clusters,
        args.board,
        args.chip,
        args.board.num_chips(),
        dead_cores
    );
    let mut t = Table::new(&[
        "Threads", "Map (s)", "Repair (s)", "Evicted", "Moved", "Region", "Energy +%",
    ]);
    for r in &runs {
        let delta_pct = 100.0 * (r.repaired_energy - r.baseline_energy) / r.baseline_energy;
        t.row(&[
            format!("{}{}", r.threads, if r.oversubscribed { "*" } else { "" }),
            format!("{:.3}", r.map_secs),
            format!("{:.3}", r.repair_secs),
            r.evicted.to_string(),
            r.moved.to_string(),
            r.region_cores.to_string(),
            format!("{delta_pct:+.2}"),
        ]);
    }
    t.print();
    if runs.iter().any(|r| r.oversubscribed) {
        println!("\n* oversubscribed: more threads than the {cpus} CPU(s) granted");
    }
    println!(
        "\nevacuation moved {} clusters vs {} under a full remap ({:.1}x less disruption); \
         all thread counts byte-identical",
        runs[0].moved,
        full_remap.moved,
        full_remap.moved as f64 / runs[0].moved.max(1) as f64
    );
    println!(
        "degraded demo: board {} lost chip {} -> {} unplaced ({} neurons over {} spare), \
         deterministic={}",
        degraded.board,
        degraded.chip,
        degraded.unplaced,
        degraded.demand_neurons,
        degraded.spare_neurons,
        degraded.deterministic
    );

    let record = ChipfailBench {
        clusters: pcn.num_clusters(),
        connections: pcn.num_connections(),
        board: args.board_spec.clone(),
        mesh: format!("{}x{}", mesh.rows(), mesh.cols()),
        chips: args.board.num_chips(),
        chip_killed: args.chip,
        seed: args.seed,
        degree: args.degree,
        sweep_cap: args.sweeps,
        repair_sweeps: REPAIR_SWEEPS,
        cpus,
        runs,
        full_remap,
        degraded,
    };
    if let Some(path) = &args.json {
        write_json(path, &record).expect("write json");
        println!("wrote {}", path.display());
    }
}
