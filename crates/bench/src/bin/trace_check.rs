//! Validates a `--trace-out` JSONL stream against the versioned trace
//! schema (see `snnmap-io`'s `validate_trace`) and prints a per-event
//! summary. Exit codes: 0 valid, 1 invalid, 2 usage.
//!
//! ```text
//! cargo run --release -p snnmap-bench --bin trace_check -- run.jsonl
//! ```

use snnmap_io::validate_trace;

fn main() {
    let mut paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.iter().any(|a| a == "--help" || a == "-h") || paths.is_empty() {
        eprintln!("usage: trace_check <run.jsonl>...");
        std::process::exit(2);
    }
    paths.sort();
    let mut failed = false;
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                failed = true;
                continue;
            }
        };
        match validate_trace(&text) {
            Ok(summary) => {
                let events: Vec<String> = summary
                    .events
                    .iter()
                    .map(|(name, count)| format!("{name} x{count}"))
                    .collect();
                println!(
                    "{path}: ok — {} lines ({}){}",
                    summary.lines,
                    events.join(", "),
                    if summary.timing { ", with timing" } else { ", timing-free" }
                );
            }
            Err(e) => {
                eprintln!("{path}: INVALID — {e}");
                failed = true;
            }
        }
    }
    std::process::exit(i32::from(failed));
}
