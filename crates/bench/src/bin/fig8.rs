//! Regenerates Figure 8: performance of the space-filling curves and the
//! FD algorithm on ResNet — methods a) through j), all metrics normalized
//! to random mapping, plus solve times.

use std::time::{Duration, Instant};

use snnmap_bench::args::Options;
use snnmap_bench::table::{fmt_value, write_json, Table};
use snnmap_core::{InitialPlacement, Mapper, Potential};
use snnmap_hw::{CostModel, Mesh};
use snnmap_metrics::{evaluate_with, EvalOptions, MetricsReport};
use snnmap_model::generators::RealisticModel;
use snnmap_model::PartitionPolicy;

fn main() {
    let options = Options::from_env();
    eprintln!("[fig8] building ResNet PCN...");
    let pcn = RealisticModel::ResNet
        .layer_graph(options.seed)
        .partition_analytic(
            snnmap_hw::CoreConstraints::new(4096, u64::MAX).unwrap(),
            PartitionPolicy::table3(),
        )
        .expect("ResNet builds");
    let mesh = Mesh::square_for(pcn.num_clusters() as u64).expect("fits u16 mesh");
    let cost = CostModel::paper_target();
    let eval_opts =
        EvalOptions { congestion_sample: Some((options.congestion_sample, options.seed)) };
    let budget = Duration::from_secs(options.budget_secs);

    // Methods a) .. j) of Figure 8.
    let rnd = InitialPlacement::Random(options.seed);
    let methods: Vec<(&str, Mapper)> = vec![
        ("a) Random", Mapper::builder().initial_placement(rnd).fd_enabled(false).build()),
        (
            "b) HSC",
            Mapper::builder().initial_placement(InitialPlacement::Hilbert).fd_enabled(false).build(),
        ),
        (
            "c) ZigZag",
            Mapper::builder().initial_placement(InitialPlacement::ZigZag).fd_enabled(false).build(),
        ),
        (
            "d) Circle",
            Mapper::builder().initial_placement(InitialPlacement::Circle).fd_enabled(false).build(),
        ),
        (
            "e) FD(u_a), random init",
            Mapper::builder().initial_placement(rnd).potential(Potential::L1).time_budget(budget).build(),
        ),
        (
            "f) HSC+FD(u_a)",
            Mapper::builder().potential(Potential::L1).time_budget(budget).build(),
        ),
        (
            "g) FD(u_b), random init",
            Mapper::builder()
                .initial_placement(rnd)
                .potential(Potential::L1Squared)
                .time_budget(budget)
                .build(),
        ),
        (
            "h) HSC+FD(u_b)",
            Mapper::builder().potential(Potential::L1Squared).time_budget(budget).build(),
        ),
        (
            "i) FD(u_c), random init",
            Mapper::builder()
                .initial_placement(rnd)
                .potential(Potential::L2Squared)
                .time_budget(budget)
                .build(),
        ),
        (
            "j) HSC+FD(u_c)  [proposed]",
            Mapper::builder().potential(Potential::L2Squared).time_budget(budget).build(),
        ),
    ];

    let mut results: Vec<(String, MetricsReport, f64, bool)> = Vec::new();
    for (name, mapper) in &methods {
        eprintln!("[fig8] running {name}...");
        let t = Instant::now();
        let outcome = mapper.map(&pcn, mesh).expect("resnet fits");
        let elapsed = t.elapsed().as_secs_f64();
        let early = outcome.fd_stats.map(|s| !s.converged).unwrap_or(false);
        let metrics =
            evaluate_with(&pcn, &outcome.placement, cost, eval_opts).expect("placed");
        results.push((name.to_string(), metrics, elapsed, early));
    }

    let baseline = results[0].1;
    println!(
        "\nFigure 8: space-filling curves and FD on ResNet ({} clusters, {} connections, {mesh})",
        pcn.num_clusters(),
        pcn.num_connections()
    );
    println!("All metrics normalized to a) random mapping.\n");
    let mut t = Table::new(&[
        "Method",
        "Energy",
        "AvgLat",
        "MaxLat",
        "AvgCong",
        "MaxCong",
        "Time (s)",
        "",
    ]);
    let mut json = Vec::new();
    for (name, m, secs, early) in &results {
        let n = m.normalized_to(&baseline);
        t.row(&[
            name.clone(),
            format!("{:.3}", n.energy),
            format!("{:.3}", n.avg_latency),
            format!("{:.3}", n.max_latency),
            format!("{:.3}", n.avg_congestion),
            format!("{:.3}", n.max_congestion),
            fmt_value(*secs),
            if *early { "ES".to_string() } else { String::new() },
        ]);
        json.push(serde_json::json!({
            "method": name,
            "normalized": n,
            "absolute": m,
            "elapsed_secs": secs,
            "early_stopped": early,
        }));
    }
    t.print();

    if let Some(path) = &options.json {
        write_json(path, &json).expect("write json");
        println!("\nwrote {}", path.display());
    }
}
