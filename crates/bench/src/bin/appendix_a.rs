//! Regenerates Appendix A (Figure 13): the modified Hilbert curve on
//! arbitrary rectangles, rendered as ASCII grids of visiting order, with
//! the continuity/coverage properties checked.

use snnmap_curves::{assert_valid_continuous_traversal, Gilbert, SpaceFillingCurve};
use snnmap_hw::Mesh;

fn main() {
    // The three rectangle instances shown in Figure 13, plus a couple of
    // awkward shapes.
    for (rows, cols) in [(16u16, 8u16), (13, 19), (16, 12), (5, 11), (3, 7)] {
        let mesh = Mesh::new(rows, cols).expect("nonzero");
        let order = Gilbert.traversal(mesh).expect("gilbert covers any rectangle");
        assert_valid_continuous_traversal(mesh, &order);
        println!(
            "generalized Hilbert on {mesh}: {} cells, every step one hop, starts at {}",
            order.len(),
            order[0]
        );
        // Visiting order per cell.
        let mut grid = vec![0usize; mesh.len()];
        for (i, &c) in order.iter().enumerate() {
            grid[mesh.index_of(c)] = i;
        }
        let width = (mesh.len() - 1).to_string().len();
        for x in 0..rows {
            let line: Vec<String> = (0..cols)
                .map(|y| {
                    format!(
                        "{:>width$}",
                        grid[mesh.index_of(snnmap_hw::Coord::new(x, y))]
                    )
                })
                .collect();
            println!("  {}", line.join(" "));
        }
        println!();
    }
}
