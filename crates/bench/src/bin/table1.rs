//! Regenerates Table 1: capacity of several neuromorphic hardware
//! platforms.

use snnmap_bench::table::Table;
use snnmap_hw::presets;

fn main() {
    let mut t = Table::new(&[
        "Platform",
        "Neurons/core",
        "Synapses/core",
        "Cores/chip",
        "Chips/system",
        "System neurons",
        "System synapses",
    ]);
    for p in presets::all_platforms() {
        t.row(&[
            p.name.to_string(),
            p.neurons_per_core.to_string(),
            p.synapses_per_core.to_string(),
            p.cores_per_chip.to_string(),
            p.chips_per_system.to_string(),
            p.max_system_neurons().to_string(),
            p.max_system_synapses().to_string(),
        ]);
    }
    println!("Table 1: capacity of several neuromorphic hardware platforms\n");
    t.print();
}
