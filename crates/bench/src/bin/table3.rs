//! Regenerates Table 3: the benchmark suite, comparing our generated
//! G_SNN / G_PCN statistics against the paper's reported values.

use std::time::Instant;

use snnmap_bench::args::Options;
use snnmap_bench::comparison::suite_at_scale;
use snnmap_bench::table::{write_json, Table};

fn main() {
    let options = Options::from_env();
    let mut t = Table::new(&[
        "Application",
        "Neurons",
        "Synapses",
        "Clusters(ours)",
        "Clusters(paper)",
        "Conns(ours)",
        "Conns(paper)",
        "Hardware",
        "Build time",
    ]);
    let mut json = Vec::new();
    for b in suite_at_scale(&options) {
        let start = Instant::now();
        let graph = b.layer_graph(options.seed);
        let pcn = b.pcn(options.seed).expect("table 3 benchmarks build");
        let elapsed = start.elapsed();
        t.row(&[
            b.row.name.to_string(),
            graph.num_neurons().to_string(),
            graph.num_synapses().to_string(),
            pcn.num_clusters().to_string(),
            b.row.clusters.to_string(),
            pcn.num_connections().to_string(),
            b.row.connections.to_string(),
            format!("{}x{}", b.row.mesh_side, b.row.mesh_side),
            format!("{elapsed:.2?}"),
        ]);
        json.push(serde_json::json!({
            "name": b.row.name,
            "neurons": graph.num_neurons(),
            "synapses": graph.num_synapses(),
            "clusters": pcn.num_clusters(),
            "clusters_paper": b.row.clusters,
            "connections": pcn.num_connections(),
            "connections_paper": b.row.connections,
            "mesh_side": b.row.mesh_side,
            "build_secs": elapsed.as_secs_f64(),
        }));
    }
    println!("Table 3: benchmarks (scale: {:?})\n", options.scale);
    t.print();
    if let Some(path) = &options.json {
        write_json(path, &json).expect("write json");
        println!("\nwrote {}", path.display());
    }
}
