//! Regenerates Table 2: parameters of the target neuromorphic hardware.

use snnmap_bench::table::Table;
use snnmap_hw::presets;

fn main() {
    let (con, cost) = presets::paper_target();
    let mut t = Table::new(&["Parameter", "Value"]);
    t.row(&["CON_npc", &con.neurons_per_core.to_string()]);
    t.row(&["CON_spc", &format!("{}K", con.synapses_per_core / 1024)]);
    t.row(&["EN_r", &cost.en_r.to_string()]);
    t.row(&["EN_w", &cost.en_w.to_string()]);
    t.row(&["L_r", &cost.l_r.to_string()]);
    t.row(&["L_w", &cost.l_w.to_string()]);
    println!("Table 2: parameters of target neuromorphic hardware\n");
    t.print();
}
