//! Service-layer load benchmark: N concurrent clients against an
//! in-process `snnmap-serve` daemon, every returned placement asserted
//! **byte-identical** (sha256 over the placement document) to a serial
//! offline [`Mapper::map_budgeted`] run of the same spec — concurrency
//! must buy throughput without touching a single placement byte.
//!
//! ```text
//! cargo run --release -p snnmap-bench --bin bench_serve -- \
//!     --jobs 8 --clusters 4000 --mesh 64x64 --sweeps 200 \
//!     --workers 4 --json results/BENCH_serve.json
//! ```

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};
use snnmap_bench::table::{write_json, Table};
use snnmap_core::{FdRunOpts, InitialPlacement, Mapper, Potential, RunBudget};
use snnmap_hw::Mesh;
use snnmap_io::{render_pcn, render_placement};
use snnmap_model::generators::random_pcn;
use snnmap_serve::{ServeConfig, Server};
use snnmap_trace::sha256_hex;

/// One job's round trip through the daemon, checked against its serial
/// offline twin.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeJob {
    /// Daemon-assigned job id.
    pub id: u64,
    /// PCN generator seed of this job's workload.
    pub seed: u64,
    /// sha256 of the placement document the daemon served.
    pub served_digest: String,
    /// sha256 of the serial offline run's placement document.
    pub offline_digest: String,
    /// Whether the two documents are byte-identical.
    pub identical: bool,
    /// FD sweeps the daemon reported for the job.
    pub sweeps: u64,
    /// Stop reason the daemon reported.
    pub stop: String,
    /// Wall-clock seconds from POST to final status for this client.
    pub secs: f64,
}

/// The whole benchmark record written to `--json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeBench {
    /// Concurrent client count (= job count).
    pub jobs: usize,
    /// Daemon worker-pool size.
    pub workers: usize,
    /// CPUs available to the benchmark process — the pool cannot beat
    /// serial when this is 1, so read `speedup` against it.
    pub cpus: usize,
    /// PCN cluster count per job.
    pub clusters: u32,
    /// PCN average out-degree.
    pub degree: f64,
    /// Mesh as `RxC`.
    pub mesh: String,
    /// Sweep cap per job.
    pub sweep_cap: u64,
    /// Wall-clock seconds for all jobs through the daemon (submit of the
    /// first to completion of the last).
    pub concurrent_secs: f64,
    /// Wall-clock seconds for the same specs run back-to-back offline.
    pub serial_secs: f64,
    /// `serial_secs / concurrent_secs`.
    pub speedup: f64,
    /// Whether every job matched its offline twin.
    pub all_identical: bool,
    /// One entry per job.
    pub runs: Vec<ServeJob>,
}

struct Args {
    jobs: usize,
    workers: usize,
    clusters: u32,
    degree: f64,
    mesh: String,
    sweeps: u64,
    seed0: u64,
    json: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut jobs = 8usize;
    let mut workers = 4usize;
    let mut clusters: u32 = 4_000;
    let mut degree = 4.0f64;
    let mut mesh = "64x64".to_string();
    let mut sweeps: u64 = 200;
    let mut seed0: u64 = 100;
    let mut json = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            return Err("snnmap-serve concurrent-load benchmark".to_string());
        }
        let value = it.next().ok_or_else(|| format!("missing value for {flag}"))?;
        match flag.as_str() {
            "--jobs" => jobs = value.parse().map_err(|_| format!("bad --jobs `{value}`"))?,
            "--workers" => {
                workers = value.parse().map_err(|_| format!("bad --workers `{value}`"))?
            }
            "--clusters" => {
                clusters = value.parse().map_err(|_| format!("bad --clusters `{value}`"))?
            }
            "--degree" => {
                degree = value.parse().map_err(|_| format!("bad --degree `{value}`"))?
            }
            "--mesh" => mesh = value,
            "--sweeps" => {
                sweeps = value.parse().map_err(|_| format!("bad --sweeps `{value}`"))?
            }
            "--seed" => seed0 = value.parse().map_err(|_| format!("bad --seed `{value}`"))?,
            "--json" => json = Some(PathBuf::from(value)),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if jobs == 0 || sweeps == 0 {
        return Err("--jobs and --sweeps must be positive".into());
    }
    Ok(Args { jobs, workers, clusters, degree, mesh, sweeps, seed0, json })
}

/// One HTTP exchange; returns (status, raw head with headers, body).
fn request_full(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send");
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("read");
    let status = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad response: {text}"));
    let (head, body) = text
        .split_once("\r\n\r\n")
        .map(|(h, b)| (h.to_string(), b.to_string()))
        .unwrap_or_default();
    (status, head, body)
}

fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let (status, _, body) = request_full(addr, method, path, body);
    (status, body)
}

/// The `Retry-After` header's value in seconds, if present.
fn retry_after_secs(head: &str) -> Option<u64> {
    head.lines().find_map(|l| {
        let (name, value) = l.split_once(':')?;
        name.trim().eq_ignore_ascii_case("retry-after").then(|| value.trim().parse().ok())?
    })
}

fn json_field(body: &str, key: &str) -> Option<serde_json::Value> {
    let value: serde_json::Value = serde_json::from_str(body).ok()?;
    value.as_object()?.get(key).cloned()
}

fn json_str(body: &str, key: &str) -> Option<String> {
    match json_field(body, key)? {
        serde_json::Value::String(s) => Some(s),
        _ => None,
    }
}

fn json_u64(body: &str, key: &str) -> Option<u64> {
    match json_field(body, key)? {
        serde_json::Value::Number(n) => Some(n.as_f64() as u64),
        _ => None,
    }
}

/// One client: POST the job, poll to a terminal state, fetch the
/// placement. Returns (id, digest, sweeps, stop, secs).
fn drive_job(addr: SocketAddr, body: &str) -> (u64, String, u64, String, f64) {
    let t0 = Instant::now();
    // Honor daemon backpressure: a 429 (queue full) or 503 (draining)
    // carries a `Retry-After` hint; wait it out and resubmit instead of
    // hammering or giving up.
    let response = loop {
        let (status, head, response) = request_full(addr, "POST", "/jobs", body);
        match status {
            201 => break response,
            429 | 503 => {
                let wait = retry_after_secs(&head).unwrap_or(1).clamp(1, 30);
                eprintln!("[bench_serve] {status}, retrying in {wait}s: {response}");
                std::thread::sleep(Duration::from_secs(wait));
            }
            other => panic!("POST /jobs -> {other}: {response}"),
        }
    };
    let id = json_u64(&response, "id").expect("id");
    let status_body = loop {
        let (status, body) = request(addr, "GET", &format!("/jobs/{id}"), "");
        assert_eq!(status, 200, "{body}");
        match json_str(&body, "state").as_deref() {
            Some("done") => break body,
            Some("failed") | Some("cancelled") => panic!("job {id} ended badly: {body}"),
            _ => std::thread::sleep(Duration::from_millis(10)),
        }
    };
    let secs = t0.elapsed().as_secs_f64();
    let (code, placement) = request(addr, "GET", &format!("/jobs/{id}/placement"), "");
    assert_eq!(code, 200);
    let digest = sha256_hex(placement.as_bytes());
    assert_eq!(
        json_str(&status_body, "placement_sha256").as_deref(),
        Some(digest.as_str()),
        "daemon-reported digest must match the served bytes"
    );
    let sweeps = json_u64(&status_body, "sweeps").expect("sweeps");
    let stop = json_str(&status_body, "stop").expect("stop");
    (id, digest, sweeps, stop, secs)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            eprintln!(
                "usage: bench_serve [--jobs N] [--workers N] [--clusters N] [--degree F] \
                 [--mesh RxC] [--sweeps N] [--seed N] [--json PATH]"
            );
            std::process::exit(2);
        }
    };

    let (r, c) = args
        .mesh
        .split_once(['x', 'X'])
        .unwrap_or_else(|| panic!("expected `--mesh RxC`, got `{}`", args.mesh));
    let mesh = Mesh::new(r.parse().expect("mesh rows"), c.parse().expect("mesh cols"))
        .expect("valid mesh");

    eprintln!(
        "[bench_serve] building {} PCNs: {} clusters, degree {}, seeds {}..{}...",
        args.jobs,
        args.clusters,
        args.degree,
        args.seed0,
        args.seed0 + args.jobs as u64 - 1
    );
    let seeds: Vec<u64> = (0..args.jobs as u64).map(|j| args.seed0 + j).collect();
    let bodies: Vec<String> = seeds
        .iter()
        .map(|&seed| {
            let pcn = random_pcn(args.clusters, args.degree, seed).expect("PCN build");
            // threads=1 per job so the worker pool is the only source of
            // parallelism being measured; checkpoint_every=0 keeps spool
            // I/O out of the throughput number.
            serde_json::to_string(&serde_json::json!({
                "format": "snnmap-job-v1",
                "pcn": render_pcn(&pcn),
                "mesh": args.mesh,
                "max_sweeps": args.sweeps,
                "threads": 1,
                "checkpoint_every": 0,
            }))
            .expect("job body")
        })
        .collect();

    // Serial offline twins first: the ground truth digests plus the
    // baseline wall-clock the pool has to beat.
    eprintln!("[bench_serve] serial offline reference runs...");
    let mapper = Mapper::builder()
        .initial_placement(InitialPlacement::Hilbert)
        .potential(Potential::L2Squared)
        .lambda(0.3)
        .threads(1)
        .build();
    let t0 = Instant::now();
    let offline: Vec<String> = seeds
        .iter()
        .map(|&seed| {
            let pcn = random_pcn(args.clusters, args.degree, seed).expect("PCN build");
            let mut opts = FdRunOpts {
                budget: RunBudget { max_sweeps: Some(args.sweeps), ..RunBudget::default() },
                ..FdRunOpts::default()
            };
            let outcome = mapper.map_budgeted(&pcn, mesh, &mut opts).expect("offline run");
            sha256_hex(render_placement(&outcome.placement).as_bytes())
        })
        .collect();
    let serial_secs = t0.elapsed().as_secs_f64();

    let spool_dir = std::env::temp_dir().join("snnmap_bench_serve_spool");
    let _ = std::fs::remove_dir_all(&spool_dir);
    let server = Server::bind(&ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: args.workers,
        spool_dir: spool_dir.clone(),
        queue_capacity: args.jobs.max(8),
        ..ServeConfig::default()
    })
    .expect("bind daemon");
    let addr = server.local_addr().expect("local addr");
    let workers = server.workers();
    let shutdown = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&shutdown);
    let daemon = std::thread::spawn(move || server.run(&flag));

    eprintln!(
        "[bench_serve] {} concurrent clients against {} worker(s) at {addr}...",
        args.jobs, workers
    );
    let t1 = Instant::now();
    let clients: Vec<_> = bodies
        .iter()
        .cloned()
        .map(|body| std::thread::spawn(move || drive_job(addr, &body)))
        .collect();
    let results: Vec<_> = clients.into_iter().map(|h| h.join().expect("client")).collect();
    let concurrent_secs = t1.elapsed().as_secs_f64();

    shutdown.store(true, SeqCst);
    let report = daemon.join().expect("daemon");
    assert_eq!(report.jobs_total, args.jobs as u64);
    let _ = std::fs::remove_dir_all(&spool_dir);

    let mut runs: Vec<ServeJob> = Vec::new();
    for ((&seed, offline_digest), (id, served_digest, sweeps, stop, secs)) in
        seeds.iter().zip(&offline).zip(results)
    {
        let identical = &served_digest == offline_digest;
        assert!(
            identical,
            "job {id} (seed {seed}) diverged from its serial offline twin"
        );
        runs.push(ServeJob {
            id,
            seed,
            served_digest,
            offline_digest: offline_digest.clone(),
            identical,
            sweeps,
            stop,
            secs,
        });
    }
    runs.sort_by_key(|r| r.id);
    let speedup = serial_secs / concurrent_secs.max(1e-9);

    println!(
        "\nserve load: {} jobs x {} clusters on {} ({} sweeps), {} worker(s)\n",
        args.jobs, args.clusters, args.mesh, args.sweeps, workers
    );
    let mut t = Table::new(&["Job", "Seed", "Sweeps", "Stop", "Identical", "Secs"]);
    for r in &runs {
        t.row(&[
            r.id.to_string(),
            r.seed.to_string(),
            r.sweeps.to_string(),
            r.stop.clone(),
            r.identical.to_string(),
            format!("{:.3}", r.secs),
        ]);
    }
    t.print();
    let cpus = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
    println!(
        "\nall {} placements byte-identical to serial offline runs\n\
         concurrent {concurrent_secs:.3}s vs serial {serial_secs:.3}s -> {speedup:.2}x \
         ({cpus} CPU(s) available)",
        runs.len()
    );

    let record = ServeBench {
        jobs: args.jobs,
        workers,
        cpus,
        clusters: args.clusters,
        degree: args.degree,
        mesh: args.mesh.clone(),
        sweep_cap: args.sweeps,
        concurrent_secs,
        serial_secs,
        speedup,
        all_identical: runs.iter().all(|r| r.identical),
        runs,
    };
    if let Some(path) = &args.json {
        write_json(path, &record).expect("write json");
        println!("wrote {}", path.display());
    }
}
