//! FD engine benchmark: times the HSC initial placement and the
//! Force-Directed refinement at several thread counts on one synthetic
//! workload, asserts the refined placement is **byte-identical** across
//! all of them, and optionally dumps a machine-readable `BENCH_fd.json`.
//!
//! ```text
//! cargo run --release -p snnmap-bench --bin bench_fd -- \
//!     --clusters 60000 --mesh 256x256 --max-iters 40 \
//!     --threads 1,2,4 --json results/BENCH_fd.json
//! ```

use std::path::PathBuf;
use std::time::Instant;

use serde::{Deserialize, Serialize};
use snnmap_bench::table::{write_json, Table};
use snnmap_core::{force_directed, hsc_placement_threaded, FdConfig};
use snnmap_hw::{Mesh, Placement};
use snnmap_model::generators::random_pcn;

/// One (thread count) measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FdRun {
    /// Worker threads requested (explicit, never 0/auto here).
    pub threads: usize,
    /// Whether this arm requested more threads than the CPUs granted to
    /// the process. An oversubscribed arm still produces the identical
    /// placement, but its wall-clock says nothing about multi-core
    /// scaling — read it as "serial plus scheduling overhead".
    pub oversubscribed: bool,
    /// Wall-clock seconds of the HSC initial placement.
    pub init_secs: f64,
    /// Wall-clock seconds of the FD refinement.
    pub fd_secs: f64,
    /// FD sweeps performed.
    pub sweeps: u64,
    /// Pair swaps applied.
    pub swaps: u64,
    /// System energy before refinement.
    pub initial_energy: f64,
    /// System energy after refinement.
    pub final_energy: f64,
    /// Whether the queue emptied before any cap fired.
    pub converged: bool,
    /// FNV-1a digest of the final placement (identical across runs).
    pub placement_digest: String,
}

/// An externally measured reference timing (e.g. the serial engine of a
/// previous revision, run back-to-back on the same machine), recorded
/// verbatim for the JSON artifact.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FdBaseline {
    /// What the reference is (free text, e.g. a commit id).
    pub label: String,
    /// Its FD wall-clock seconds on the same workload.
    pub fd_secs: f64,
}

/// The whole benchmark record written to `--json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FdBench {
    /// PCN cluster count.
    pub clusters: u32,
    /// PCN connection count.
    pub connections: u64,
    /// Mesh as `RxC`.
    pub mesh: String,
    /// PCN generator seed.
    pub seed: u64,
    /// PCN average out-degree.
    pub degree: f64,
    /// CPUs available to the process when the benchmark ran.
    pub cpus: usize,
    /// FD iteration cap (0 = run to convergence).
    pub max_iters: u64,
    /// One entry per `--threads` value, in the given order.
    pub runs: Vec<FdRun>,
    /// Optional external reference timing (`--baseline-secs/-label`).
    pub baseline: Option<FdBaseline>,
}

/// FNV-1a over the cluster→coordinate table; collision-safe enough to
/// certify "these placements are identical" across runs in one process.
fn digest(p: &Placement, clusters: u32) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    for c in 0..clusters {
        let coord = p.coord_of(c).expect("complete placement");
        eat((u64::from(coord.x) << 16) | u64::from(coord.y));
    }
    format!("{h:016x}")
}

struct Args {
    clusters: u32,
    mesh: Mesh,
    seed: u64,
    degree: f64,
    max_iters: u64,
    threads: Vec<usize>,
    json: Option<PathBuf>,
    baseline_secs: Option<f64>,
    baseline_label: String,
}

fn parse_args() -> Result<Args, String> {
    let mut clusters: u32 = 60_000;
    let mut mesh_spec = "256x256".to_string();
    let mut seed: u64 = 42;
    let mut degree: f64 = 4.0;
    let mut max_iters: u64 = 40;
    let mut threads = vec![1usize, 2, 4];
    let mut json = None;
    let mut baseline_secs = None;
    let mut baseline_label = "reference serial engine".to_string();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            return Err("snnmap FD benchmark".to_string());
        }
        let value = it.next().ok_or_else(|| format!("missing value for {flag}"))?;
        match flag.as_str() {
            "--clusters" => {
                clusters = value.parse().map_err(|_| format!("bad --clusters `{value}`"))?
            }
            "--mesh" => mesh_spec = value,
            "--seed" => seed = value.parse().map_err(|_| format!("bad --seed `{value}`"))?,
            "--degree" => {
                degree = value.parse().map_err(|_| format!("bad --degree `{value}`"))?
            }
            "--max-iters" => {
                max_iters =
                    value.parse().map_err(|_| format!("bad --max-iters `{value}`"))?
            }
            "--threads" => {
                threads = value
                    .split(',')
                    .map(|t| t.trim().parse::<usize>())
                    .collect::<Result<_, _>>()
                    .map_err(|_| format!("bad --threads `{value}`"))?;
                if threads.is_empty() || threads.contains(&0) {
                    return Err("--threads wants a comma list of positive counts".into());
                }
            }
            "--json" => json = Some(PathBuf::from(value)),
            "--baseline-secs" => {
                baseline_secs = Some(
                    value.parse().map_err(|_| format!("bad --baseline-secs `{value}`"))?,
                )
            }
            "--baseline-label" => baseline_label = value,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    let (r, c) = mesh_spec
        .split_once(['x', 'X'])
        .ok_or_else(|| format!("expected `--mesh RxC`, got `{mesh_spec}`"))?;
    let rows: u16 = r.parse().map_err(|_| format!("bad mesh rows `{r}`"))?;
    let cols: u16 = c.parse().map_err(|_| format!("bad mesh cols `{c}`"))?;
    let mesh = Mesh::new(rows, cols).map_err(|e| e.to_string())?;
    Ok(Args {
        clusters,
        mesh,
        seed,
        degree,
        max_iters,
        threads,
        json,
        baseline_secs,
        baseline_label,
    })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            eprintln!(
                "usage: bench_fd [--clusters N] [--mesh RxC] [--seed N] [--degree F] \
                 [--max-iters N (0 = converge)] [--threads A,B,..] [--json PATH] \
                 [--baseline-secs F] [--baseline-label S]"
            );
            std::process::exit(2);
        }
    };

    eprintln!(
        "[bench_fd] building PCN: {} clusters, degree {}, seed {}...",
        args.clusters, args.degree, args.seed
    );
    let pcn = random_pcn(args.clusters, args.degree, args.seed).expect("PCN build");

    let cpus = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
    let over: Vec<usize> = args.threads.iter().copied().filter(|&t| t > cpus).collect();
    if !over.is_empty() {
        eprintln!(
            "[bench_fd] WARNING: only {cpus} CPU(s) granted to this process, but \
             thread arm(s) {over:?} were requested. Those arms are OVERSUBSCRIBED: \
             their timings measure scheduling overhead, not multi-core scaling, and \
             must not be quoted as speedup evidence. They are annotated \
             \"oversubscribed\": true in the JSON artifact."
        );
    }

    let mut runs: Vec<FdRun> = Vec::new();
    for &threads in &args.threads {
        eprintln!("[bench_fd] threads={threads}: init + FD on {}...", args.mesh);
        let t0 = Instant::now();
        let mut placement =
            hsc_placement_threaded(&pcn, args.mesh, threads).expect("initial placement");
        let init_secs = t0.elapsed().as_secs_f64();

        let config = FdConfig {
            max_iterations: (args.max_iters > 0).then_some(args.max_iters),
            threads,
            ..FdConfig::default()
        };
        let t1 = Instant::now();
        let stats = force_directed(&pcn, &mut placement, &config).expect("FD");
        let fd_secs = t1.elapsed().as_secs_f64();

        runs.push(FdRun {
            threads,
            oversubscribed: threads > cpus,
            init_secs,
            fd_secs,
            sweeps: stats.iterations,
            swaps: stats.swaps,
            initial_energy: stats.initial_energy,
            final_energy: stats.final_energy,
            converged: stats.converged,
            placement_digest: digest(&placement, args.clusters),
        });
    }

    // The whole point of the deterministic parallel engine: every thread
    // count must land on the same placement (and the same stats).
    for r in &runs[1..] {
        assert_eq!(
            r.placement_digest, runs[0].placement_digest,
            "threads={} diverged from threads={}",
            r.threads, runs[0].threads
        );
        assert_eq!(r.swaps, runs[0].swaps, "swap count diverged at threads={}", r.threads);
    }

    println!(
        "\nFD engine: {} clusters on {} (seed {}, cap {})\n",
        args.clusters,
        args.mesh,
        args.seed,
        if args.max_iters == 0 { "none".to_string() } else { args.max_iters.to_string() }
    );
    let mut t = Table::new(&[
        "Threads", "Init (s)", "FD (s)", "Sweeps", "Swaps", "Final energy", "Digest",
    ]);
    for r in &runs {
        t.row(&[
            if r.oversubscribed {
                format!("{}*", r.threads)
            } else {
                r.threads.to_string()
            },
            format!("{:.3}", r.init_secs),
            format!("{:.3}", r.fd_secs),
            r.sweeps.to_string(),
            r.swaps.to_string(),
            format!("{:.6e}", r.final_energy),
            r.placement_digest.clone(),
        ]);
    }
    t.print();
    if !over.is_empty() {
        println!("\n* oversubscribed: more threads than the {cpus} CPU(s) granted");
    }
    println!("\nall {} thread counts produced byte-identical placements", runs.len());

    let record = FdBench {
        clusters: pcn.num_clusters(),
        connections: pcn.num_connections(),
        mesh: format!("{}x{}", args.mesh.rows(), args.mesh.cols()),
        seed: args.seed,
        degree: args.degree,
        cpus,
        max_iters: args.max_iters,
        runs,
        baseline: args
            .baseline_secs
            .map(|fd_secs| FdBaseline { label: args.baseline_label.clone(), fd_secs }),
    };
    if let Some(path) = &args.json {
        write_json(path, &record).expect("write json");
        println!("wrote {}", path.display());
    }
}
