//! Regenerates Figure 6: why the Hilbert space-filling curve.
//!
//! Prints (a) banded distance-heatmap statistics for each curve, (b) the
//! mapping cost of each curve under the three connection images of
//! Figure 6.c, and (c) the normalized cost on the probability cloud of
//! random SNNs (Figure 6.e; the paper reports Hilbert 1.0 / ZigZag 2.63 /
//! Circle 6.33).

use snnmap_bench::args::Options;
use snnmap_bench::table::{write_json, Table};
use snnmap_curves::cost::{mask_cost, normalized_costs, ConnectionMask};
use snnmap_curves::heatmap::DistanceHeatmap;
use snnmap_curves::{Hilbert, Serpentine, SpaceFillingCurve, Spiral, ZigZag};
use snnmap_hw::{Coord, Mesh};

fn curves(mesh: Mesh) -> Vec<(&'static str, Vec<Coord>)> {
    vec![
        ("Hilbert", Hilbert.traversal(mesh).expect("pow2 square")),
        ("ZigZag", ZigZag.traversal(mesh).expect("any mesh")),
        ("Circle", Spiral.traversal(mesh).expect("any mesh")),
        ("Serpentine", Serpentine.traversal(mesh).expect("any mesh")),
    ]
}

fn main() {
    let options = Options::from_env();
    let mesh = Mesh::new(8, 8).expect("8x8");
    let orders = curves(mesh);

    println!("Figure 6.b: distance-heatmap locality (8x8 mesh)\n");
    let mut t = Table::new(&["Curve", "mean dist (|i-j|<=8)", "mean dist (all pairs)"]);
    for (name, order) in &orders {
        let hm = DistanceHeatmap::from_traversal(order);
        t.row(&[
            name.to_string(),
            format!("{:.3}", hm.banded_mean_distance(8)),
            format!("{:.3}", hm.mean_distance()),
        ]);
    }
    t.print();

    println!("\nFigure 6.c/d: cost under specific connection images (8x8 mesh)\n");
    let masks = [
        ("Full_connect_8_8", ConnectionMask::layered(&[8; 8])),
        ("LeNet-like", ConnectionMask::layered(&[16, 24, 12, 8, 4])),
        ("ResNet-like", {
            // Layered with skip connections one layer apart.
            let mut edges = Vec::new();
            let sizes = [8usize, 8, 8, 8, 8, 8, 8, 8];
            let mut start = 0usize;
            let mut starts = Vec::new();
            for w in sizes.windows(2) {
                starts.push(start);
                for i in 0..w[0] {
                    for j in 0..w[1] {
                        edges.push(((start + i) as u32, (start + w[0] + j) as u32));
                    }
                }
                start += w[0];
            }
            // Skips: layer k -> layer k+2, identity.
            for k in 0..sizes.len() - 2 {
                let a = (0..k).map(|i| sizes[i]).sum::<usize>();
                let b = (0..k + 2).map(|i| sizes[i]).sum::<usize>();
                for i in 0..sizes[k] {
                    edges.push(((a + i) as u32, (b + i) as u32));
                }
            }
            ConnectionMask::new(64, edges)
        }),
    ];
    let mut t = Table::new(&["Mask", "Hilbert", "ZigZag", "Circle", "Serpentine"]);
    let mut json = serde_json::Map::new();
    for (mask_name, mask) in &masks {
        let hil = mask_cost(&orders[0].1, mask);
        let cells: Vec<String> = std::iter::once(mask_name.to_string())
            .chain(orders.iter().map(|(_, o)| format!("{:.2}", mask_cost(o, mask) / hil)))
            .collect();
        t.row(&cells);
    }
    t.print();

    println!("\nFigure 6.e: normalized cost on the probability cloud");
    println!("(paper: Hilbert 1.0, ZigZag 2.63, Circle 6.33)\n");
    let cloud = ConnectionMask::probability_cloud(64, 500, options.seed);
    let costs = normalized_costs(&orders, &cloud);
    let mut t = Table::new(&["Curve", "Cost (normalized)", "Cost (absolute)"]);
    for (name, abs, norm) in &costs {
        t.row(&[name.to_string(), format!("{norm:.2}"), format!("{abs:.1}")]);
        json.insert(name.to_string(), serde_json::json!({"norm": norm, "abs": abs}));
    }
    t.print();

    if let Some(path) = &options.json {
        write_json(path, &json).expect("write json");
        println!("\nwrote {}", path.display());
    }
}
