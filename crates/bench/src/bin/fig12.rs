//! Regenerates Figure 12: average and maximum NoC congestion per
//! benchmark and method, normalized to random mapping.

use snnmap_bench::args::Options;
use snnmap_bench::comparison::{render_metric_table, run_comparison};
use snnmap_bench::methods::Method;
use snnmap_bench::table::write_json;
use snnmap_metrics::MetricsReport;

fn main() {
    let options = Options::from_env();
    let records = run_comparison(&Method::all(), &options);
    println!(
        "\nFigure 12: average / maximum congestion, normalized to Random (scale: {:?})\n",
        options.scale
    );
    let avg: fn(&MetricsReport) -> f64 = |m| m.avg_congestion;
    let max: fn(&MetricsReport) -> f64 = |m| m.max_congestion;
    render_metric_table(&records, &[("AvgCongestion", avg), ("MaxCongestion", max)]).print();
    if let Some(path) = &options.json {
        write_json(path, &records).expect("write json");
        println!("\nwrote {}", path.display());
    }
}
