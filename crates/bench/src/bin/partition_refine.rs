//! Extension experiment X3: does traffic-aware partition refinement on
//! top of Algorithm 1 help the downstream placement?
//!
//! For each explicitly materializable workload, partitions with first-fit
//! (Algorithm 1), then refines boundary neurons, and compares the
//! inter-cluster cut and the final mapped energy of both PCNs under the
//! proposed mapper.

use snnmap_bench::args::Options;
use snnmap_bench::table::{fmt_value, Table};
use snnmap_core::Mapper;
use snnmap_hw::{CoreConstraints, CostModel, Mesh};
use snnmap_metrics::energy;
use snnmap_model::generators::{random_snn, CnnSpec, DnnSpec, RealisticModel};
use snnmap_model::{
    partition_with_assignment, pcn_from_assignment, refine_partition, SnnNetwork,
};

fn main() {
    let options = Options::from_env();
    let cost = CostModel::paper_target();
    // Constraints sized so these small explicit graphs split into enough
    // clusters for placement to matter.
    let workloads: Vec<(&str, SnnNetwork, CoreConstraints)> = vec![
        (
            "LeNet-MNIST",
            RealisticModel::LeNetMnist.build(options.seed).expect("materializes"),
            CoreConstraints::new(256, 64 * 1024).unwrap(),
        ),
        (
            "DNN 4x1024",
            DnnSpec::new(&[1024; 4]).expect("valid shape").build(options.seed).expect("materializes"),
            CoreConstraints::new(128, u64::MAX).unwrap(),
        ),
        (
            "CNN 8x2048 f32",
            CnnSpec::new(&[2048; 8], 32)
                .expect("valid shape")
                .build(options.seed)
                .expect("materializes"),
            CoreConstraints::new(128, u64::MAX).unwrap(),
        ),
        (
            "random local SNN",
            random_snn(8192, 8.0, 256, options.seed).expect("builds"),
            CoreConstraints::new(128, u64::MAX).unwrap(),
        ),
    ];

    println!("\nPartition refinement (Algorithm 1 vs Algorithm 1 + boundary moves)\n");
    let mut t = Table::new(&[
        "Workload",
        "Clusters",
        "Cut before",
        "Cut after",
        "Cut ratio",
        "Moves",
        "Swaps",
        "Energy before",
        "Energy after",
        "Energy ratio",
    ]);
    for (name, snn, con) in workloads {
        let (pcn_base, mut assignment) =
            partition_with_assignment(&snn, con).expect("partitions");
        let stats = refine_partition(&snn, &mut assignment, con, 8);
        let pcn_refined = pcn_from_assignment(&snn, &assignment).expect("rebuilds");

        let map_energy = |pcn: &snnmap_model::Pcn| {
            let mesh = Mesh::square_for(pcn.num_clusters() as u64).expect("fits");
            let out = Mapper::builder().build().map(pcn, mesh).expect("maps");
            energy(pcn, &out.placement, cost).expect("evaluates")
        };
        let e_base = map_energy(&pcn_base);
        let e_refined = map_energy(&pcn_refined);

        t.row(&[
            name.to_string(),
            pcn_base.num_clusters().to_string(),
            fmt_value(stats.initial_cut),
            fmt_value(stats.final_cut),
            format!("{:.3}", stats.final_cut / stats.initial_cut.max(1e-12)),
            stats.moves.to_string(),
            stats.swaps.to_string(),
            fmt_value(e_base),
            fmt_value(e_refined),
            format!("{:.3}", e_refined / e_base.max(1e-12)),
        ]);
    }
    t.print();
    println!(
        "\nCut = inter-cluster traffic (eq. 5 total). Energy = M_ec of the proposed mapper's\n\
         placement of each PCN. Ratios < 1 mean refinement helped."
    );
}
