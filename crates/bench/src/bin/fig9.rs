//! Regenerates Figure 9: algorithm execution time vs problem scale
//! (log-log in the paper; here a table of solve times per benchmark and
//! method, with "ES" marking budget-capped early stops).

use snnmap_bench::args::Options;
use snnmap_bench::comparison::run_comparison;
use snnmap_bench::methods::Method;
use snnmap_bench::table::{fmt_value, write_json, Table};

fn main() {
    let options = Options::from_env();
    let records = run_comparison(&Method::all(), &options);

    println!(
        "\nFigure 9: execution time (seconds) vs problem scale (scale: {:?}, baseline budget {}s)\n",
        options.scale, options.budget_secs
    );
    let mut t = Table::new(&["Benchmark", "Clusters", "Method", "Time (s)", "Early stop"]);
    for r in &records {
        t.row(&[
            r.benchmark.clone(),
            r.clusters.to_string(),
            r.method.clone(),
            fmt_value(r.elapsed_secs),
            if r.early_stopped { "ES".to_string() } else { String::new() },
        ]);
    }
    t.print();

    if let Some(path) = &options.json {
        write_json(path, &records).expect("write json");
        println!("\nwrote {}", path.display());
    }
}
