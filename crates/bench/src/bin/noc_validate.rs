//! Extension experiment: cross-validate the analytic §3.3 metrics
//! against the cycle-driven NoC simulator.
//!
//! For each small benchmark and for both a random and the proposed
//! placement, injects PCN-derived spike traffic into the simulated mesh
//! (random minimal routing, matching the `Expe` congestion model) and
//! compares simulated mean latency and per-router traversal statistics
//! against the analytic predictions.

use snnmap_bench::args::{Options, Scale};
use snnmap_bench::comparison::suite_at_scale;
use snnmap_bench::methods::Method;
use snnmap_bench::table::{fmt_value, Table};
use snnmap_hw::{CostModel, Mesh};
use snnmap_metrics::{congestion_map, evaluate, evaluate_with, EvalOptions};
use snnmap_noc::{NocConfig, NocSim, PcnTraffic, Routing};

fn main() {
    let mut options = Options::from_env();
    // This experiment is meaningful at small scale only: the simulator
    // models every router cycle.
    if !matches!(options.scale, Scale::Small) {
        eprintln!("[noc_validate] forcing --scale small (cycle-level simulation)");
        options.scale = Scale::Small;
    }
    let cost = CostModel::paper_target();
    let cycles = 2_000u64;

    let mut t = Table::new(&[
        "Benchmark",
        "Method",
        "AvgLat (analytic)",
        "AvgLat (simulated)",
        "Cong corr",
        "Delivered",
    ]);
    for bench in suite_at_scale(&options) {
        let pcn = bench.pcn(options.seed).expect("benchmark builds");
        let mesh = Mesh::square_for(pcn.num_clusters() as u64).expect("fits");
        // Scale injection so the aggregate offered load is ~0.01 packets
        // per router per cycle (the analytic model is contention-free, so
        // the comparison belongs in the uncongested regime).
        let scale = 0.01 * mesh.len() as f64 / pcn.total_traffic().max(1e-12);
        for method in [Method::Random, Method::Proposed] {
            let run = method.run(&pcn, mesh, None, options.seed).expect("fits");
            let analytic = if pcn.num_connections() > options.congestion_sample {
                evaluate_with(
                    &pcn,
                    &run.placement,
                    cost,
                    EvalOptions { congestion_sample: Some((options.congestion_sample, 0)) },
                )
            } else {
                evaluate(&pcn, &run.placement, cost)
            }
            .expect("placed");

            let mut sim = NocSim::new(
                mesh,
                NocConfig {
                    routing: Routing::RandomMinimal,
                    seed: options.seed,
                    queue_capacity: 16,
                },
            );
            let mut traffic = PcnTraffic::new(&pcn, &run.placement, scale, options.seed);
            traffic.run(&mut sim, cycles);
            let stats = sim.stats();

            // Pearson correlation between analytic Con(x,y) and simulated
            // per-router traversals.
            let acc = congestion_map(&pcn, &run.placement).expect("placed");
            let corr = pearson(acc.map(), &stats.traversals);

            t.row(&[
                bench.row.name.to_string(),
                method.name().to_string(),
                fmt_value(analytic.avg_latency),
                fmt_value(stats.average_latency()),
                format!("{corr:.3}"),
                format!("{}/{}", stats.delivered, stats.injected),
            ]);
        }
    }
    println!("\nNoC cross-validation (random-minimal routing, {cycles} injection cycles)\n");
    t.print();
    println!(
        "\nAnalytic latency counts router+wire delays of an uncontended route; the simulator adds\n\
         queueing, so simulated >= analytic, converging as load drops. `Cong corr` is the Pearson\n\
         correlation between the Expe congestion map (eq. 13) and simulated router traversals."
    );
}

fn pearson(a: &[f64], b: &[u64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let n = a.len() as f64;
    let (ma, mb) = (
        a.iter().sum::<f64>() / n,
        b.iter().map(|&x| x as f64).sum::<f64>() / n,
    );
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        let (dx, dy) = (x - ma, y as f64 - mb);
        cov += dx * dy;
        va += dx * dx;
        vb += dy * dy;
    }
    if va == 0.0 || vb == 0.0 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}
