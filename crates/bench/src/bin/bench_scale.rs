//! Multilevel-pipeline scale benchmark: walks power-of-two meshes from
//! 64×64 up to 1024×1024, maps a synthetic PCN sized to each mesh with
//! the coarsen → place → refine pipeline at several thread counts,
//! asserts the placement digest is **byte-identical** across all of
//! them at every size, and (at 60k clusters / 256×256, the `bench_fd`
//! workload size) compares flat FD against multilevel over repeated
//! runs.
//!
//! Every instance is **id-scrambled** ([`scramble_pcn`]): `random_pcn`
//! draws 80% of edges within a ±√n window of nearby cluster ids, so the
//! raw id order encodes the communication geometry and the id-aware HSC
//! initial placement solves such instances nearly outright. Real
//! partitioner output carries no such guarantee — cluster ids are
//! arbitrary labels. Scrambling presents the identical graph in
//! adversarial id order, so the walk measures mapping on *structure*,
//! which is where coarsening earns its keep.
//!
//! ```text
//! cargo run --release -p snnmap-bench --bin bench_scale -- \
//!     --max-mesh 1024 --threads 1,2,4 --runs 3 \
//!     --json results/BENCH_scale.json
//! ```

use std::path::PathBuf;
use std::time::Instant;

use serde::{Deserialize, Serialize};
use snnmap_bench::table::{write_json, Table};
use snnmap_core::{
    force_directed, hsc_placement_threaded, FdConfig, MapOutcome, Mapper, MultilevelConfig,
};
use snnmap_hw::{Mesh, Placement};
use snnmap_model::generators::{random_pcn, scramble_pcn};
use snnmap_model::Pcn;

/// One multilevel run at one thread count.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScaleRun {
    /// Worker threads requested (explicit, never 0/auto here).
    pub threads: usize,
    /// Whether this arm requested more threads than the CPUs granted to
    /// the process (timings then measure scheduling overhead, not
    /// scaling; the placement is identical either way).
    pub oversubscribed: bool,
    /// Wall-clock seconds of everything before and between FD passes:
    /// coarsening, the coarsest HSC placement, projections, and the
    /// intermediate region-masked refinements.
    pub init_secs: f64,
    /// Wall-clock seconds of the finest-level FD pass.
    pub fd_secs: f64,
    /// Finest-level FD sweeps performed.
    pub sweeps: u64,
    /// Finest-level pair swaps applied.
    pub swaps: u64,
    /// System energy after the full pipeline.
    pub final_energy: f64,
    /// FNV-1a digest of the final placement (identical across threads).
    pub placement_digest: String,
}

/// All measurements for one mesh size of the walk.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScaleSize {
    /// Mesh as `RxC`.
    pub mesh: String,
    /// Core count of the mesh.
    pub cores: u64,
    /// PCN cluster count (~0.9× cores; exactly 60k at 256×256).
    pub clusters: u32,
    /// PCN connection count.
    pub connections: u64,
    /// One entry per `--threads` value, in the given order.
    pub runs: Vec<ScaleRun>,
}

/// Flat-vs-multilevel comparison at the `bench_fd` workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScaleComparison {
    /// Mesh as `RxC`.
    pub mesh: String,
    /// PCN cluster count.
    pub clusters: u32,
    /// Repetitions each arm was run (medians below).
    pub runs: usize,
    /// Sweep cap of the flat arm (`bench_fd`'s canonical setting).
    pub flat_max_iters: u64,
    /// Finest-level sweep cap of the multilevel arm (0 = run to
    /// convergence) — the same `--final-sweeps` the walk uses.
    pub multilevel_final_sweeps: u64,
    /// Median wall-clock seconds of flat HSC + FD at the cap.
    pub flat_secs_median: f64,
    /// Median final energy of the capped flat arm.
    pub flat_energy_median: f64,
    /// Median wall-clock seconds flat FD needs to *reach* the
    /// multilevel arm's final energy (sweeping past the cap in restart
    /// chunks until it matches, converges, or hits a sweep ceiling).
    pub flat_match_secs_median: f64,
    /// Median sweeps the time-to-match arm performed.
    pub flat_match_sweeps_median: f64,
    /// Median energy the time-to-match arm ended at (above the
    /// multilevel energy iff flat converged or hit the ceiling first).
    pub flat_match_energy_median: f64,
    /// Median wall-clock seconds of the full multilevel pipeline.
    pub multilevel_secs_median: f64,
    /// Median final energy of the multilevel arm.
    pub multilevel_energy_median: f64,
    /// `flat_match_secs_median / multilevel_secs_median` — how many
    /// times longer the flat engine works for a placement no better
    /// than the multilevel one.
    pub speedup: f64,
    /// `multilevel_energy_median / flat_energy_median` (≤ 1 means the
    /// multilevel placement is equal or better than the capped flat
    /// run's).
    pub energy_ratio: f64,
}

/// The whole benchmark record written to `--json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScaleBench {
    /// PCN generator seed.
    pub seed: u64,
    /// Seed of the deterministic cluster-id permutation applied to every
    /// instance before mapping (see the module docs for why).
    pub scramble_seed: u64,
    /// PCN average out-degree.
    pub degree: f64,
    /// CPUs available to the process when the benchmark ran.
    pub cpus: usize,
    /// Finest-level FD sweep cap used in the walk (0 = converge).
    pub final_sweeps: u64,
    /// One entry per mesh size, smallest first.
    pub sizes: Vec<ScaleSize>,
    /// Flat-vs-multilevel medians, when the walk covered 256×256.
    pub comparison: Option<ScaleComparison>,
}

/// FNV-1a over the cluster→coordinate table; same digest `bench_fd`
/// uses, so the two artifacts are cross-checkable.
fn digest(p: &Placement, clusters: u32) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    for c in 0..clusters {
        let coord = p.coord_of(c).expect("complete placement");
        eat((u64::from(coord.x) << 16) | u64::from(coord.y));
    }
    format!("{h:016x}")
}

/// The cluster count a mesh of `side`² cores gets: ~90% occupancy, and
/// exactly the `bench_fd` workload at 256×256 so the comparison arm and
/// the historical `BENCH_fd.json` numbers line up.
fn clusters_for(side: u16) -> u32 {
    if side == 256 {
        60_000
    } else {
        let cores = u64::from(side) * u64::from(side);
        (cores * 9 / 10) as u32
    }
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

struct Args {
    max_mesh: u16,
    seed: u64,
    scramble_seed: u64,
    degree: f64,
    threads: Vec<usize>,
    runs: usize,
    compare: bool,
    flat_max_iters: u64,
    final_sweeps: u64,
    json: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut max_mesh: u16 = 1024;
    let mut seed: u64 = 42;
    let mut scramble_seed: u64 = 1234;
    let mut degree: f64 = 4.0;
    let mut threads = vec![1usize, 2, 4];
    let mut runs: usize = 3;
    let mut compare = true;
    let mut flat_max_iters: u64 = 40;
    let mut final_sweeps: u64 = 5;
    let mut json = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            return Err("snnmap multilevel scale benchmark".to_string());
        }
        let value = it.next().ok_or_else(|| format!("missing value for {flag}"))?;
        match flag.as_str() {
            "--max-mesh" => {
                max_mesh = value.parse().map_err(|_| format!("bad --max-mesh `{value}`"))?;
                if !max_mesh.is_power_of_two() || max_mesh < 64 {
                    return Err("--max-mesh wants a power of two >= 64".into());
                }
            }
            "--seed" => seed = value.parse().map_err(|_| format!("bad --seed `{value}`"))?,
            "--scramble-seed" => {
                scramble_seed =
                    value.parse().map_err(|_| format!("bad --scramble-seed `{value}`"))?
            }
            "--degree" => {
                degree = value.parse().map_err(|_| format!("bad --degree `{value}`"))?
            }
            "--threads" => {
                threads = value
                    .split(',')
                    .map(|t| t.trim().parse::<usize>())
                    .collect::<Result<_, _>>()
                    .map_err(|_| format!("bad --threads `{value}`"))?;
                if threads.is_empty() || threads.contains(&0) {
                    return Err("--threads wants a comma list of positive counts".into());
                }
            }
            "--runs" => {
                runs = value.parse().map_err(|_| format!("bad --runs `{value}`"))?;
                if runs == 0 {
                    return Err("--runs must be positive".into());
                }
            }
            "--compare" => {
                compare = match value.as_str() {
                    "on" => true,
                    "off" => false,
                    other => return Err(format!("bad --compare `{other}` (on|off)")),
                }
            }
            "--flat-max-iters" => {
                flat_max_iters = value
                    .parse()
                    .map_err(|_| format!("bad --flat-max-iters `{value}`"))?
            }
            "--final-sweeps" => {
                final_sweeps =
                    value.parse().map_err(|_| format!("bad --final-sweeps `{value}`"))?
            }
            "--json" => json = Some(PathBuf::from(value)),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(Args {
        max_mesh,
        seed,
        scramble_seed,
        degree,
        threads,
        runs,
        compare,
        flat_max_iters,
        final_sweeps,
        json,
    })
}

/// Builds the multilevel mapper used everywhere in this benchmark.
fn ml_mapper(threads: usize, final_sweeps: u64) -> Mapper {
    Mapper::builder()
        .multilevel(MultilevelConfig {
            final_sweeps: (final_sweeps > 0).then_some(final_sweeps),
            ..MultilevelConfig::default()
        })
        .threads(threads)
        .build()
}

fn ml_run(pcn: &Pcn, mesh: Mesh, threads: usize, final_sweeps: u64) -> MapOutcome {
    ml_mapper(threads, final_sweeps).map(pcn, mesh).expect("multilevel mapping")
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            eprintln!(
                "usage: bench_scale [--max-mesh N (power of two >= 64)] [--seed N] \
                 [--scramble-seed N] [--degree F] [--threads A,B,..] [--runs N] \
                 [--compare on|off] [--flat-max-iters N] \
                 [--final-sweeps N (0 = converge)] [--json PATH]"
            );
            std::process::exit(2);
        }
    };
    let cpus = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
    let over: Vec<usize> = args.threads.iter().copied().filter(|&t| t > cpus).collect();
    if !over.is_empty() {
        eprintln!(
            "[bench_scale] WARNING: only {cpus} CPU(s) granted to this process, but \
             thread arm(s) {over:?} were requested. Those arms are OVERSUBSCRIBED: \
             their timings measure scheduling overhead, not multi-core scaling, and \
             must not be quoted as speedup evidence. They are annotated \
             \"oversubscribed\": true in the JSON artifact."
        );
    }

    let mut sizes: Vec<ScaleSize> = Vec::new();
    let mut comparison = None;
    let mut side: u16 = 64;
    while side <= args.max_mesh {
        let mesh = Mesh::new(side, side).expect("power-of-two mesh");
        let clusters = clusters_for(side);
        eprintln!(
            "[bench_scale] {mesh}: building PCN ({clusters} clusters, degree {}, seed {}, \
             scramble {})...",
            args.degree, args.seed, args.scramble_seed
        );
        let pcn = random_pcn(clusters, args.degree, args.seed).expect("PCN build");
        let pcn = scramble_pcn(&pcn, args.scramble_seed).expect("id scramble");

        let mut runs: Vec<ScaleRun> = Vec::new();
        for &threads in &args.threads {
            eprintln!("[bench_scale] {mesh}: multilevel map, threads={threads}...");
            let outcome = ml_run(&pcn, mesh, threads, args.final_sweeps);
            let stats = outcome.fd_stats.as_ref().expect("finest-level FD runs");
            runs.push(ScaleRun {
                threads,
                oversubscribed: threads > cpus,
                init_secs: outcome.init_elapsed.as_secs_f64(),
                fd_secs: outcome.fd_elapsed.as_secs_f64(),
                sweeps: stats.iterations,
                swaps: stats.swaps,
                final_energy: stats.final_energy,
                placement_digest: digest(&outcome.placement, clusters),
            });
        }

        // Determinism gate: every thread count must land on the same
        // placement at every mesh size, or the artifact is worthless.
        for r in &runs[1..] {
            assert_eq!(
                r.placement_digest, runs[0].placement_digest,
                "{mesh}: threads={} diverged from threads={}",
                r.threads, runs[0].threads
            );
            assert_eq!(r.swaps, runs[0].swaps, "{mesh}: swap count diverged");
        }

        sizes.push(ScaleSize {
            mesh: format!("{side}x{side}"),
            cores: u64::from(side) * u64::from(side),
            clusters,
            connections: pcn.num_connections(),
            runs,
        });

        // Flat-vs-multilevel medians at the bench_fd workload size, on
        // the scrambled instance. Three arms per rep: the multilevel
        // pipeline under the walk's own policy; flat HSC + FD at
        // bench_fd's canonical cap (continuity with BENCH_fd.json); and
        // flat HSC + FD run until it *matches* the multilevel energy —
        // the speedup is quoted against that last arm, because "3x
        // faster to a worse placement" is not a win anyone wants.
        if side == 256 && args.compare {
            let threads = *args.threads.last().expect("non-empty thread list");
            // Restart-chunk size and ceiling of the time-to-match arm.
            // Each chunk re-runs FD from the current placement, paying
            // one full queue rescan (~one sweep of cost) per 20 sweeps;
            // the ceiling bounds the arm when flat can neither match nor
            // converge in a sane benchmark budget.
            const MATCH_CHUNK: u64 = 20;
            const MATCH_CEILING: u64 = 4000;
            let mut flat_secs = Vec::new();
            let mut flat_energy = Vec::new();
            let mut match_secs = Vec::new();
            let mut match_sweeps = Vec::new();
            let mut match_energy = Vec::new();
            let mut ml_secs = Vec::new();
            let mut ml_energy = Vec::new();
            for rep in 0..args.runs {
                eprintln!(
                    "[bench_scale] {mesh}: comparison rep {}/{} (threads={threads})...",
                    rep + 1,
                    args.runs
                );
                // Multilevel first: its energy is the target to match.
                let t1 = Instant::now();
                let outcome = ml_run(&pcn, mesh, threads, args.final_sweeps);
                ml_secs.push(t1.elapsed().as_secs_f64());
                let target = outcome.fd_stats.expect("finest FD").final_energy;
                ml_energy.push(target);

                let t0 = Instant::now();
                let mut placement =
                    hsc_placement_threaded(&pcn, mesh, threads).expect("initial placement");
                let config = FdConfig {
                    max_iterations: (args.flat_max_iters > 0)
                        .then_some(args.flat_max_iters),
                    threads,
                    ..FdConfig::default()
                };
                let stats = force_directed(&pcn, &mut placement, &config).expect("FD");
                flat_secs.push(t0.elapsed().as_secs_f64());
                flat_energy.push(stats.final_energy);

                let t2 = Instant::now();
                let mut placement =
                    hsc_placement_threaded(&pcn, mesh, threads).expect("initial placement");
                let mut sweeps = 0u64;
                let energy = loop {
                    let config = FdConfig {
                        max_iterations: Some(MATCH_CHUNK),
                        threads,
                        ..FdConfig::default()
                    };
                    let stats = force_directed(&pcn, &mut placement, &config).expect("FD");
                    sweeps += stats.iterations;
                    if stats.final_energy <= target
                        || stats.converged
                        || sweeps >= MATCH_CEILING
                    {
                        break stats.final_energy;
                    }
                };
                match_secs.push(t2.elapsed().as_secs_f64());
                match_sweeps.push(sweeps as f64);
                match_energy.push(energy);
                eprintln!(
                    "[bench_scale]   flat matched {target:.4e} at sweep {sweeps} \
                     (energy {energy:.4e}, {:.2}s)",
                    match_secs[rep]
                );
            }
            comparison = Some(ScaleComparison {
                mesh: format!("{side}x{side}"),
                clusters,
                runs: args.runs,
                flat_max_iters: args.flat_max_iters,
                multilevel_final_sweeps: args.final_sweeps,
                flat_secs_median: median(flat_secs),
                flat_energy_median: median(flat_energy.clone()),
                flat_match_secs_median: median(match_secs.clone()),
                flat_match_sweeps_median: median(match_sweeps),
                flat_match_energy_median: median(match_energy),
                multilevel_secs_median: median(ml_secs.clone()),
                multilevel_energy_median: median(ml_energy.clone()),
                speedup: median(match_secs) / median(ml_secs),
                energy_ratio: median(ml_energy) / median(flat_energy),
            });
        }

        side = match side.checked_mul(2) {
            Some(next) => next,
            None => break,
        };
    }

    println!(
        "\nmultilevel scale walk (seed {}, scramble {}, degree {})\n",
        args.seed, args.scramble_seed, args.degree
    );
    let mut t = Table::new(&[
        "Mesh", "Clusters", "Threads", "Init (s)", "FD (s)", "Sweeps", "Final energy",
        "Digest",
    ]);
    for s in &sizes {
        for r in &s.runs {
            t.row(&[
                s.mesh.clone(),
                s.clusters.to_string(),
                if r.oversubscribed {
                    format!("{}*", r.threads)
                } else {
                    r.threads.to_string()
                },
                format!("{:.3}", r.init_secs),
                format!("{:.3}", r.fd_secs),
                r.sweeps.to_string(),
                format!("{:.6e}", r.final_energy),
                r.placement_digest.clone(),
            ]);
        }
    }
    t.print();
    if !over.is_empty() {
        println!("\n* oversubscribed: more threads than the {cpus} CPU(s) granted");
    }
    println!(
        "\nall {} mesh sizes produced byte-identical placements across thread counts",
        sizes.len()
    );

    if let Some(c) = &comparison {
        println!(
            "\nflat vs multilevel at {} / {} clusters (medians of {} runs):",
            c.mesh, c.clusters, c.runs
        );
        println!(
            "  flat (cap {}):  {:.3}s, energy {:.6e}",
            c.flat_max_iters, c.flat_secs_median, c.flat_energy_median
        );
        println!(
            "  flat-to-match:  {:.3}s, energy {:.6e} ({:.0} sweeps)",
            c.flat_match_secs_median, c.flat_match_energy_median, c.flat_match_sweeps_median
        );
        println!(
            "  multilevel:     {:.3}s, energy {:.6e}",
            c.multilevel_secs_median, c.multilevel_energy_median
        );
        println!(
            "  speedup {:.2}x to equal-or-better energy; energy ratio vs capped flat \
             {:.4} (<= 1 means equal or better)",
            c.speedup, c.energy_ratio
        );
        if c.speedup < 3.0 || c.energy_ratio > 1.0 {
            eprintln!(
                "[bench_scale] WARNING: target is >= 3x speedup at equal-or-better \
                 energy; this machine measured {:.2}x at ratio {:.4}",
                c.speedup, c.energy_ratio
            );
        }
    }

    let record = ScaleBench {
        seed: args.seed,
        scramble_seed: args.scramble_seed,
        degree: args.degree,
        cpus,
        final_sweeps: args.final_sweeps,
        sizes,
        comparison,
    };
    if let Some(path) = &args.json {
        write_json(path, &record).expect("write json");
        println!("wrote {}", path.display());
    }
}
