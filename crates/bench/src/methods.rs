//! The compared mapping approaches behind one interface (§5.1.3).

use std::fmt;
use std::time::{Duration, Instant};

use snnmap_baselines::{
    BaselineMapper, Budget, DfSynthesizerMapper, PsoMapper, RandomMapper, TrueNorthMapper,
};
use snnmap_core::{CoreError, Mapper};
use snnmap_hw::{Mesh, Placement};
use snnmap_model::Pcn;

/// One of the five approaches the paper evaluates (§5.1.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Random mapping — the normalization baseline.
    Random,
    /// TrueNorth layer-wise greedy.
    TrueNorth,
    /// DFSynthesizer iterative swap.
    DfSynthesizer,
    /// Discrete PSO.
    Pso,
    /// The paper's approach: HSC + FD with the `u_c` potential
    /// (method j of Figure 8).
    Proposed,
}

impl Method {
    /// All five methods in the paper's plotting order.
    pub fn all() -> [Method; 5] {
        [Method::Random, Method::TrueNorth, Method::DfSynthesizer, Method::Pso, Method::Proposed]
    }

    /// Display name used in figures.
    pub fn name(&self) -> &'static str {
        match self {
            Method::Random => "Random",
            Method::TrueNorth => "TrueNorth",
            Method::DfSynthesizer => "DFSynthesizer",
            Method::Pso => "PSO",
            Method::Proposed => "Proposed",
        }
    }

    /// Runs the method on a PCN under a wall-clock budget.
    ///
    /// # Errors
    ///
    /// [`CoreError::MeshTooSmall`] if the PCN outnumbers the cores.
    pub fn run(
        &self,
        pcn: &Pcn,
        mesh: Mesh,
        budget_limit: Option<Duration>,
        seed: u64,
    ) -> Result<MethodRun, CoreError> {
        self.run_with_threads(pcn, mesh, budget_limit, seed, 0)
    }

    /// [`Method::run`] with an explicit worker-thread count for the
    /// proposed mapper (`0` = auto; baselines are serial and ignore it).
    /// The proposed placement is bit-identical for every thread count.
    ///
    /// # Errors
    ///
    /// [`CoreError::MeshTooSmall`] if the PCN outnumbers the cores.
    pub fn run_with_threads(
        &self,
        pcn: &Pcn,
        mesh: Mesh,
        budget_limit: Option<Duration>,
        seed: u64,
        threads: usize,
    ) -> Result<MethodRun, CoreError> {
        let start = Instant::now();
        let budget = match budget_limit {
            Some(d) => Budget::limited(d),
            None => Budget::unlimited(),
        };
        let (placement, early_stopped) = match self {
            Method::Random => run_baseline(&RandomMapper::new(seed), pcn, mesh, budget)?,
            Method::TrueNorth => run_baseline(&TrueNorthMapper::new(), pcn, mesh, budget)?,
            Method::DfSynthesizer => {
                run_baseline(&DfSynthesizerMapper::new(seed), pcn, mesh, budget)?
            }
            Method::Pso => run_baseline(&PsoMapper::new(seed), pcn, mesh, budget)?,
            Method::Proposed => {
                let mut builder = Mapper::builder().threads(threads);
                if let Some(d) = budget_limit {
                    builder = builder.time_budget(d);
                }
                let outcome = builder.build().map(pcn, mesh)?;
                let es = outcome.fd_stats.map(|s| !s.converged).unwrap_or(false);
                (outcome.placement, es)
            }
        };
        Ok(MethodRun { placement, elapsed: start.elapsed(), early_stopped })
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

fn run_baseline(
    mapper: &dyn BaselineMapper,
    pcn: &Pcn,
    mesh: Mesh,
    budget: Budget,
) -> Result<(Placement, bool), CoreError> {
    let out = mapper.map(pcn, mesh, budget)?;
    Ok((out.placement, out.early_stopped))
}

/// The outcome of one method run.
#[derive(Debug, Clone)]
pub struct MethodRun {
    /// The produced placement.
    pub placement: Placement,
    /// Wall-clock solve time.
    pub elapsed: Duration,
    /// Whether the run hit its budget before finishing (the paper's "ES"
    /// marker).
    pub early_stopped: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use snnmap_model::generators::random_pcn;

    #[test]
    fn every_method_runs_on_a_small_pcn() {
        let pcn = random_pcn(16, 3.0, 1).unwrap();
        let mesh = Mesh::new(4, 4).unwrap();
        for m in Method::all() {
            let run = m.run(&pcn, mesh, None, 7).unwrap();
            assert!(run.placement.is_complete(), "{m}");
            assert!(!run.early_stopped, "{m}");
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = Method::all().iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn budgeted_run_flags_early_stop() {
        let pcn = random_pcn(100, 4.0, 2).unwrap();
        let mesh = Mesh::new(10, 10).unwrap();
        let run = Method::TrueNorth.run(&pcn, mesh, Some(Duration::ZERO), 0).unwrap();
        assert!(run.early_stopped);
        assert!(run.placement.is_complete());
    }
}
