//! Plain-text tables and JSON result dumps.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// A simple column-aligned text table for experiment output.
///
/// # Examples
///
/// ```
/// use snnmap_bench::table::Table;
///
/// let mut t = Table::new(&["method", "energy"]);
/// t.row(&["Random", "1.00"]);
/// t.row(&["Proposed", "0.08"]);
/// let s = t.render();
/// assert!(s.contains("Proposed"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row; missing cells render empty, extra cells are kept.
    pub fn row<S: AsRef<str>>(&mut self, cells: &[S]) -> &mut Self {
        self.rows.push(cells.iter().map(|c| c.as_ref().to_string()).collect());
        self
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain(std::iter::once(self.headers.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (i, w) in widths.iter().enumerate() {
                let empty = String::new();
                let c = cells.get(i).unwrap_or(&empty);
                let _ = write!(out, "{c:<w$}  ");
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Writes a serializable result to a JSON file (pretty-printed).
///
/// # Errors
///
/// Propagates I/O and serialization errors.
pub fn write_json<T: serde::Serialize>(
    path: &Path,
    value: &T,
) -> Result<(), Box<dyn std::error::Error>> {
    fs::write(path, serde_json::to_string_pretty(value)?)?;
    Ok(())
}

/// Human-friendly formatting for wide-ranging floats (3 significant-ish
/// digits, scientific for very large/small).
pub fn fmt_value(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1e6 || v.abs() < 1e-3 {
        format!("{v:.3e}")
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["a", "bbbb"]);
        t.row(&["xxxxx", "y"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        // The second column starts at the same offset in header and row.
        let h = lines[0].find("bbbb").unwrap();
        let r = lines[2].find('y').unwrap();
        assert_eq!(h, r);
    }

    #[test]
    fn ragged_rows_are_tolerated() {
        let mut t = Table::new(&["a"]);
        t.row(&["1", "2", "3"]);
        t.row(&[] as &[&str]);
        assert!(t.render().contains('3'));
    }

    #[test]
    fn fmt_value_ranges() {
        assert_eq!(fmt_value(0.0), "0");
        assert_eq!(fmt_value(1.5), "1.500");
        assert_eq!(fmt_value(123.4), "123.4");
        assert!(fmt_value(1.23e9).contains('e'));
        assert!(fmt_value(0.00012).contains('e'));
    }

    #[test]
    fn write_json_roundtrips() {
        let dir = std::env::temp_dir().join("snnmap_bench_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.json");
        write_json(&path, &vec![1, 2, 3]).unwrap();
        let back: Vec<i32> =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
    }
}
