//! Minimal shared CLI option parsing for the experiment binaries.

use std::collections::HashMap;

/// Benchmark-scale presets: which Table 3 applications a run includes,
/// by cluster count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// ≤ 256 clusters (DNN_65K, CNN_65K, LeNets, AlexNet).
    Small,
    /// ≤ 8192 clusters (adds DNN_16M, CNN_16M, MobileNet, InceptionV3,
    /// ResNet) — the default.
    Medium,
    /// ≤ 65 536 clusters (adds DNN_268M, CNN_268M).
    Large,
    /// Everything including DNN_4B (1 M clusters).
    Full,
}

impl Scale {
    /// Maximum cluster count included at this scale.
    pub fn max_clusters(&self) -> u64 {
        match self {
            Scale::Small => 256,
            Scale::Medium => 8_192,
            Scale::Large => 65_536,
            Scale::Full => u64::MAX,
        }
    }
}

/// Parsed common options.
#[derive(Debug, Clone)]
pub struct Options {
    /// `--scale small|medium|large|full` (default medium).
    pub scale: Scale,
    /// `--budget-secs N`: wall-clock cap per baseline run (default 120).
    pub budget_secs: u64,
    /// `--seed N` (default 42).
    pub seed: u64,
    /// `--json PATH`: also dump machine-readable results.
    pub json: Option<std::path::PathBuf>,
    /// `--sample N`: congestion edge-sample cap (default 200 000).
    pub congestion_sample: u64,
    /// `--threads N`: worker threads for the proposed mapper (default 0 =
    /// auto; the placement is bit-identical for every value).
    pub threads: usize,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            scale: Scale::Medium,
            budget_secs: 120,
            seed: 42,
            json: None,
            congestion_sample: 200_000,
            threads: 0,
        }
    }
}

impl Options {
    /// Parses `std::env::args`, exiting with a usage message on error or
    /// `--help`.
    pub fn from_env() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(o) => o,
            Err(msg) => {
                eprintln!("{msg}");
                eprintln!(
                    "usage: [--scale small|medium|large|full] [--budget-secs N] \
                     [--seed N] [--json PATH] [--sample N] [--threads N]"
                );
                std::process::exit(2);
            }
        }
    }

    /// Parses an iterator of arguments.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown flags, missing or
    /// malformed values, and `--help`.
    pub fn parse(args: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut opts = Options::default();
        let mut map = HashMap::new();
        let mut it = args.peekable();
        while let Some(flag) = it.next() {
            if flag == "--help" || flag == "-h" {
                return Err("snnmap experiment binary".to_string());
            }
            let value = it.next().ok_or_else(|| format!("missing value for {flag}"))?;
            map.insert(flag, value);
        }
        for (flag, value) in map {
            match flag.as_str() {
                "--scale" => {
                    opts.scale = match value.as_str() {
                        "small" => Scale::Small,
                        "medium" => Scale::Medium,
                        "large" => Scale::Large,
                        "full" => Scale::Full,
                        other => return Err(format!("unknown scale `{other}`")),
                    }
                }
                "--budget-secs" => {
                    opts.budget_secs =
                        value.parse().map_err(|_| format!("bad --budget-secs `{value}`"))?
                }
                "--seed" => {
                    opts.seed = value.parse().map_err(|_| format!("bad --seed `{value}`"))?
                }
                "--sample" => {
                    opts.congestion_sample =
                        value.parse().map_err(|_| format!("bad --sample `{value}`"))?
                }
                "--threads" => {
                    opts.threads =
                        value.parse().map_err(|_| format!("bad --threads `{value}`"))?
                }
                "--json" => opts.json = Some(value.into()),
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        Ok(opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, String> {
        Options::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.scale, Scale::Medium);
        assert_eq!(o.budget_secs, 120);
        assert_eq!(o.seed, 42);
        assert_eq!(o.threads, 0);
    }

    #[test]
    fn parses_all_flags() {
        let o = parse(&[
            "--scale", "full", "--budget-secs", "5", "--seed", "7", "--json", "/tmp/x.json",
            "--sample", "100", "--threads", "4",
        ])
        .unwrap();
        assert_eq!(o.scale, Scale::Full);
        assert_eq!(o.budget_secs, 5);
        assert_eq!(o.seed, 7);
        assert_eq!(o.congestion_sample, 100);
        assert_eq!(o.threads, 4);
        assert!(o.json.is_some());
    }

    #[test]
    fn rejects_unknown_and_malformed() {
        assert!(parse(&["--bogus", "1"]).is_err());
        assert!(parse(&["--seed"]).is_err());
        assert!(parse(&["--seed", "abc"]).is_err());
        assert!(parse(&["--scale", "tiny"]).is_err());
    }

    #[test]
    fn scale_thresholds() {
        assert_eq!(Scale::Small.max_clusters(), 256);
        assert!(Scale::Full.max_clusters() > 1_000_000);
    }
}
