//! Experiment harness for the ASPLOS '23 reproduction.
//!
//! Each paper artifact has a dedicated binary (see `src/bin/`); this
//! library holds the shared machinery:
//!
//! * [`methods`] — the five §5.1.3 approaches behind one interface,
//! * [`comparison`] — the Figures 9–12 sweep over the Table 3 suite,
//! * [`ablation`] — λ/potential/curve ablations of the FD design choices,
//! * [`table`] — plain-text table rendering and JSON result dumps,
//! * [`args`] — the tiny CLI option parser the binaries share.
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `table1` | Table 1 — platform capacities |
//! | `table2` | Table 2 — target hardware constants |
//! | `table3` | Table 3 — benchmark suite statistics |
//! | `fig6` | Figure 6 — space-filling-curve cost analysis |
//! | `fig8` | Figure 8 — methods a)–j) on ResNet |
//! | `fig9` | Figure 9 — solve time vs problem scale |
//! | `fig10`–`fig12` | Figures 10–12 — energy / latency / congestion |
//! | `appendix_a` | Appendix A — Hilbert curves on arbitrary rectangles |
//! | `ablation` | extension — FD design-choice ablations |
//! | `noc_validate` | extension — analytic metrics vs NoC simulation |

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod ablation;
pub mod args;
pub mod comparison;
pub mod methods;
pub mod table;
