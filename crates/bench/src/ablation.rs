//! Ablations of the FD design choices called out in §4.5 and DESIGN.md.

use std::time::Instant;

use serde::{Deserialize, Serialize};
use snnmap_core::{force_directed, hsc_placement, FdConfig, Potential, TensionMode};
use snnmap_hw::{CostModel, Mesh};
use snnmap_metrics::energy;
use snnmap_model::Pcn;

/// One ablation measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationRecord {
    /// The varied knob, e.g. `lambda=0.30` or `potential=L2Squared`.
    pub setting: String,
    /// Final `M_ec` energy.
    pub energy: f64,
    /// FD iterations to convergence (or cap).
    pub iterations: u64,
    /// Swaps applied.
    pub swaps: u64,
    /// Wall-clock seconds of the FD phase.
    pub elapsed_secs: f64,
}

/// Sweeps λ over the HSC-initialized FD run (§4.5 design choice 2 fixes
/// λ = 30% as the practical speed/quality balance; this regenerates the
/// evidence).
///
/// # Panics
///
/// Panics if the PCN does not fit the mesh (ablations run on Table 3
/// instances, which always fit).
pub fn lambda_sweep(pcn: &Pcn, mesh: Mesh, lambdas: &[f64]) -> Vec<AblationRecord> {
    let cost = CostModel::paper_target();
    lambdas
        .iter()
        .map(|&lambda| {
            let mut placement = hsc_placement(pcn, mesh).expect("benchmark fits mesh");
            let cfg = FdConfig { lambda, ..FdConfig::default() };
            let t = Instant::now();
            let stats = force_directed(pcn, &mut placement, &cfg).expect("complete placement");
            AblationRecord {
                setting: format!("lambda={lambda:.2}"),
                energy: energy(pcn, &placement, cost).expect("placed"),
                iterations: stats.iterations,
                swaps: stats.swaps,
                elapsed_secs: t.elapsed().as_secs_f64(),
            }
        })
        .collect()
}

/// Sweeps the potential field (§4.4.2, Figure 7) over the
/// HSC-initialized FD run.
///
/// # Panics
///
/// Panics if the PCN does not fit the mesh.
pub fn potential_sweep(pcn: &Pcn, mesh: Mesh) -> Vec<AblationRecord> {
    let cost = CostModel::paper_target();
    let potentials = [
        ("u_a (L1)", Potential::L1),
        ("u_b (L1^2)", Potential::L1Squared),
        ("u_c (L2^2)", Potential::L2Squared),
        ("energy-model", Potential::energy_model(cost)),
    ];
    potentials
        .iter()
        .map(|(name, potential)| {
            let mut placement = hsc_placement(pcn, mesh).expect("benchmark fits mesh");
            let cfg = FdConfig { potential: *potential, ..FdConfig::default() };
            let t = Instant::now();
            let stats = force_directed(pcn, &mut placement, &cfg).expect("complete placement");
            AblationRecord {
                setting: format!("potential={name}"),
                energy: energy(pcn, &placement, cost).expect("placed"),
                iterations: stats.iterations,
                swaps: stats.swaps,
                elapsed_secs: t.elapsed().as_secs_f64(),
            }
        })
        .collect()
}

/// Compares exact tension bookkeeping against the paper's naive force
/// sum (DESIGN.md design decision 1) on the HSC-initialized FD run.
///
/// # Panics
///
/// Panics if the PCN does not fit the mesh.
pub fn tension_mode_sweep(pcn: &Pcn, mesh: Mesh) -> Vec<AblationRecord> {
    let cost = CostModel::paper_target();
    [(TensionMode::Exact, "tension=exact"), (TensionMode::PaperNaive, "tension=naive(paper)")]
        .into_iter()
        .map(|(mode, name)| {
            let mut placement = hsc_placement(pcn, mesh).expect("benchmark fits mesh");
            let cfg = FdConfig { tension_mode: mode, ..FdConfig::default() };
            let t = Instant::now();
            let stats = force_directed(pcn, &mut placement, &cfg).expect("complete placement");
            AblationRecord {
                setting: name.to_string(),
                energy: energy(pcn, &placement, cost).expect("placed"),
                iterations: stats.iterations,
                swaps: stats.swaps,
                elapsed_secs: t.elapsed().as_secs_f64(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use snnmap_model::generators::random_pcn;

    #[test]
    fn lambda_sweep_produces_converged_records() {
        let pcn = random_pcn(64, 4.0, 3).unwrap();
        let mesh = Mesh::new(8, 8).unwrap();
        let records = lambda_sweep(&pcn, mesh, &[0.1, 0.3, 1.0]);
        assert_eq!(records.len(), 3);
        for r in &records {
            assert!(r.energy > 0.0);
            assert!(r.iterations > 0);
        }
        // Smaller lambda swaps fewer pairs per sweep, so needs at least as
        // many sweeps.
        assert!(records[0].iterations >= records[2].iterations);
    }

    #[test]
    fn tension_sweep_produces_two_records() {
        let pcn = random_pcn(49, 4.0, 7).unwrap();
        let mesh = Mesh::new(7, 7).unwrap();
        let records = tension_mode_sweep(&pcn, mesh);
        assert_eq!(records.len(), 2);
        assert!(records[0].setting.contains("exact"));
    }

    #[test]
    fn potential_sweep_covers_all_fields() {
        let pcn = random_pcn(36, 3.0, 5).unwrap();
        let mesh = Mesh::new(6, 6).unwrap();
        let records = potential_sweep(&pcn, mesh);
        assert_eq!(records.len(), 4);
        assert!(records.iter().any(|r| r.setting.contains("u_c")));
    }
}
