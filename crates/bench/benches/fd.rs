//! Criterion benchmarks for the Force-Directed engine.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use snnmap_core::{force_directed, hsc_placement, random_placement, FdConfig};
use snnmap_hw::Mesh;
use snnmap_model::generators::random_pcn;

fn bench_fd_convergence(c: &mut Criterion) {
    let mut g = c.benchmark_group("fd_converge");
    g.sample_size(10);
    for clusters in [256u32, 1024, 4096] {
        let pcn = random_pcn(clusters, 4.0, 7).unwrap();
        let mesh = Mesh::square_for(clusters as u64).unwrap();
        let init = hsc_placement(&pcn, mesh).unwrap();
        g.bench_with_input(BenchmarkId::new("from_hsc", clusters), &clusters, |b, _| {
            b.iter_batched(
                || init.clone(),
                |mut p| force_directed(&pcn, &mut p, &FdConfig::default()).unwrap(),
                BatchSize::LargeInput,
            )
        });
        let rnd = random_placement(&pcn, mesh, 3).unwrap();
        g.bench_with_input(BenchmarkId::new("from_random", clusters), &clusters, |b, _| {
            b.iter_batched(
                || rnd.clone(),
                |mut p| force_directed(&pcn, &mut p, &FdConfig::default()).unwrap(),
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fd_convergence);
criterion_main!(benches);
