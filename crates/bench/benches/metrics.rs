//! Criterion benchmarks for the §3.3 metric evaluations.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use snnmap_core::hsc_placement;
use snnmap_hw::{CostModel, Mesh};
use snnmap_metrics::{average_latency, congestion_map, energy, evaluate};
use snnmap_model::generators::random_pcn;

fn bench_metrics(c: &mut Criterion) {
    let cost = CostModel::paper_target();
    let mut g = c.benchmark_group("metrics");
    for clusters in [1024u32, 4096] {
        let pcn = random_pcn(clusters, 4.0, 5).unwrap();
        let mesh = Mesh::square_for(clusters as u64).unwrap();
        let p = hsc_placement(&pcn, mesh).unwrap();
        g.bench_with_input(BenchmarkId::new("energy", clusters), &clusters, |b, _| {
            b.iter(|| energy(black_box(&pcn), black_box(&p), cost).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("avg_latency", clusters), &clusters, |b, _| {
            b.iter(|| average_latency(black_box(&pcn), black_box(&p), cost).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("congestion_map", clusters), &clusters, |b, _| {
            b.iter(|| congestion_map(black_box(&pcn), black_box(&p)).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("evaluate_all", clusters), &clusters, |b, _| {
            b.iter(|| evaluate(black_box(&pcn), black_box(&p), cost).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_metrics);
criterion_main!(benches);
