//! Criterion benchmarks for the end-to-end mapping pipeline (the paper's
//! headline cost: toposort + Hilbert + FD).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use snnmap_core::{hsc_placement, toposort, Mapper};
use snnmap_hw::Mesh;
use snnmap_model::generators::random_pcn;

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("placement");
    g.sample_size(10);
    for clusters in [1024u32, 4096] {
        let pcn = random_pcn(clusters, 4.0, 9).unwrap();
        let mesh = Mesh::square_for(clusters as u64).unwrap();
        g.bench_with_input(BenchmarkId::new("toposort", clusters), &clusters, |b, _| {
            b.iter(|| toposort(black_box(&pcn)))
        });
        g.bench_with_input(BenchmarkId::new("hsc_init", clusters), &clusters, |b, _| {
            b.iter(|| hsc_placement(black_box(&pcn), mesh).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("full_mapper", clusters), &clusters, |b, _| {
            b.iter(|| Mapper::builder().build().map(black_box(&pcn), mesh).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
