//! Criterion micro-benchmarks for space-filling-curve generation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use snnmap_curves::{Gilbert, Hilbert, SpaceFillingCurve};
use snnmap_hw::Mesh;

fn bench_d2xy(c: &mut Criterion) {
    c.bench_function("hilbert_d2xy_1024", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for d in 0..1024u64 {
                let (x, y) = Hilbert::d2xy(black_box(1024), black_box(d * 1021));
                acc = acc.wrapping_add(x ^ y);
            }
            acc
        })
    });
}

fn bench_traversals(c: &mut Criterion) {
    let mut g = c.benchmark_group("curve_traversal");
    for side in [64u16, 256, 1024] {
        let mesh = Mesh::new(side, side).unwrap();
        g.bench_with_input(BenchmarkId::new("hilbert", side), &mesh, |b, &m| {
            b.iter(|| Hilbert.traversal(black_box(m)).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("gilbert", side), &mesh, |b, &m| {
            b.iter(|| Gilbert.traversal(black_box(m)).unwrap())
        });
    }
    // A non-square rectangle only gilbert covers.
    let rect = Mesh::new(300, 700).unwrap();
    g.bench_function("gilbert_300x700", |b| {
        b.iter(|| Gilbert.traversal(black_box(rect)).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_d2xy, bench_traversals);
criterion_main!(benches);
