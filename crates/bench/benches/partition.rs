//! Criterion benchmarks for neuron partitioning: explicit Algorithm 1 vs
//! the analytic layer-level closed form.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use snnmap_hw::CoreConstraints;
use snnmap_model::generators::{CnnSpec, DnnSpec};
use snnmap_model::{partition, PartitionPolicy};

fn bench_partition(c: &mut Criterion) {
    let mut g = c.benchmark_group("partition");
    // Explicit Algorithm 1 over a materialized two-million-synapse
    // network.
    let snn = DnnSpec::new(&[1000, 1000, 1000]).unwrap().build(1).unwrap();
    let con = CoreConstraints::new(64, 1 << 30).unwrap();
    g.bench_function("explicit_2M_synapses", |b| {
        b.iter(|| partition(black_box(&snn), con).unwrap())
    });

    // Analytic partitioning of CNN_16M: 16.7M neurons, 528M synapses —
    // never materialized.
    let graph = CnnSpec::cnn_16m().layer_graph(0);
    let con = CoreConstraints::new(4096, u64::MAX).unwrap();
    g.bench_function("analytic_cnn16m", |b| {
        b.iter(|| {
            graph
                .partition_analytic(con, PartitionPolicy::table3())
                .unwrap()
                .num_connections()
        })
    });

    // Analytic partitioning of DNN_16M (dense: 258 048 connections).
    let graph = DnnSpec::dnn_16m().layer_graph(0);
    g.bench_function("analytic_dnn16m", |b| {
        b.iter(|| {
            graph
                .partition_analytic(con, PartitionPolicy::table3())
                .unwrap()
                .num_connections()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_partition);
criterion_main!(benches);
