//! Seeded, deterministic fault injection for the snnmap stack.
//!
//! A *failpoint* is a named site in production code (e.g. `spool.write`,
//! `checkpoint.rename`) that consults this registry before doing real
//! work. When the registry is disabled — the default — the consult is a
//! single relaxed atomic load and nothing else, so shipping the hooks
//! costs nothing. When a chaos schedule is installed, each failpoint
//! draws from its own [SplitMix64] stream seeded from the global seed
//! and the failpoint name, so a given `(seed, spec)` pair replays the
//! exact same failure schedule on every run, on every machine.
//!
//! Schedules are written as `<seed>:<spec>` where `<spec>` is a
//! comma-separated list of `<failpoint>=<fault>[@<trigger>]` rules:
//!
//! ```text
//! SNNMAP_CHAOS="42:spool.write=enospc@#2,checkpoint.write=torn@1in3"
//! ```
//!
//! Faults: `enospc` (disk full), `torn` (partial write, truncated at a
//! seeded byte offset), `fail` (generic I/O error), `short` (partial
//! read), `disconnect` (peer hangup mid-stream). Triggers: bare (every
//! hit), `#N` (only the Nth hit, 1-based), `#N+` (the Nth hit and every
//! one after), `1inN` (each hit fires with seeded probability 1/N).
//!
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c

pub mod cfs;

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{Mutex, MutexGuard};

/// Environment variable holding the chaos schedule (`<seed>:<spec>`).
pub const ENV_VAR: &str = "SNNMAP_CHAOS";

/// What an armed failpoint injects at its call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Write fails with `ENOSPC` (disk full); nothing is written.
    Enospc,
    /// Write persists only a seeded prefix of the payload, then errors.
    Torn,
    /// The operation fails outright with a generic injected I/O error.
    Fail,
    /// Read returns only a seeded prefix of the content (no error).
    Short,
    /// The peer connection drops mid-stream.
    Disconnect,
}

impl FaultKind {
    fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "enospc" => Self::Enospc,
            "torn" => Self::Torn,
            "fail" => Self::Fail,
            "short" => Self::Short,
            "disconnect" => Self::Disconnect,
            _ => return None,
        })
    }

    /// The spec-grammar name of this fault.
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Enospc => "enospc",
            Self::Torn => "torn",
            Self::Fail => "fail",
            Self::Short => "short",
            Self::Disconnect => "disconnect",
        }
    }
}

/// One injected fault, as returned by [`check`].
///
/// `cut` is a fresh seeded draw; sites that truncate payloads reduce it
/// modulo `len + 1` so every offset (including 0 and `len`) is
/// reachable across seeds.
#[derive(Debug, Clone, Copy)]
pub struct Fault {
    pub kind: FaultKind,
    pub cut: u64,
}

impl Fault {
    /// The truncation offset for a payload of `len` bytes.
    pub fn cut_for(&self, len: usize) -> usize {
        (self.cut % (len as u64 + 1)) as usize
    }
}

/// When an armed failpoint actually fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Trigger {
    /// Every hit.
    Always,
    /// Only the `n`th hit (1-based).
    Nth(u64),
    /// The `n`th hit and every hit after it.
    From(u64),
    /// Each hit independently with seeded probability `1/n`.
    OneIn(u64),
}

/// A malformed `SNNMAP_CHAOS` schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosError(String);

impl fmt::Display for ChaosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid chaos spec: {}", self.0)
    }
}

impl std::error::Error for ChaosError {}

fn err(msg: impl Into<String>) -> ChaosError {
    ChaosError(msg.into())
}

/// SplitMix64: tiny, seedable, full-period 2^64 generator.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a, used to fold the failpoint name into its per-point seed.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[derive(Debug)]
struct Rule {
    kind: FaultKind,
    trigger: Trigger,
    /// Times this failpoint was consulted while armed.
    hits: u64,
    /// Times it actually fired.
    injected: u64,
    rng: u64,
}

#[derive(Debug)]
struct Chaos {
    seed: u64,
    spec: String,
    rules: BTreeMap<String, Rule>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static INJECTED_TOTAL: AtomicU64 = AtomicU64::new(0);
static REGISTRY: Mutex<Option<Chaos>> = Mutex::new(None);

fn registry() -> MutexGuard<'static, Option<Chaos>> {
    // A panic while holding the lock leaves only counters in a
    // half-updated state; the schedule itself is still coherent.
    REGISTRY.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn parse_trigger(s: &str) -> Result<Trigger, ChaosError> {
    if let Some(rest) = s.strip_prefix('#') {
        let (digits, from) = match rest.strip_suffix('+') {
            Some(d) => (d, true),
            None => (rest, false),
        };
        let n: u64 = digits
            .parse()
            .map_err(|_| err(format!("bad hit count in trigger `{s}`")))?;
        if n == 0 {
            return Err(err(format!("trigger `{s}` is 1-based; #0 never fires")));
        }
        return Ok(if from { Trigger::From(n) } else { Trigger::Nth(n) });
    }
    if let Some(rest) = s.strip_prefix("1in") {
        let n: u64 = rest
            .parse()
            .map_err(|_| err(format!("bad denominator in trigger `{s}`")))?;
        if n == 0 {
            return Err(err("trigger `1in0` divides by zero"));
        }
        return Ok(Trigger::OneIn(n));
    }
    Err(err(format!("unknown trigger `{s}` (expected #N, #N+ or 1inN)")))
}

fn parse_spec(seed: u64, spec: &str) -> Result<Chaos, ChaosError> {
    let mut rules = BTreeMap::new();
    for part in spec.split(',') {
        let part = part.trim();
        if part.is_empty() {
            return Err(err("empty rule (stray comma?)"));
        }
        let (name, rhs) = part
            .split_once('=')
            .ok_or_else(|| err(format!("rule `{part}` is missing `=<fault>`")))?;
        let name = name.trim();
        if name.is_empty() {
            return Err(err(format!("rule `{part}` has an empty failpoint name")));
        }
        let (fault, trigger) = match rhs.split_once('@') {
            Some((f, t)) => (f.trim(), parse_trigger(t.trim())?),
            None => (rhs.trim(), Trigger::Always),
        };
        let kind = FaultKind::parse(fault).ok_or_else(|| {
            err(format!(
                "unknown fault `{fault}` (expected enospc, torn, fail, short or disconnect)"
            ))
        })?;
        let prior = rules.insert(
            name.to_string(),
            Rule {
                kind,
                trigger,
                hits: 0,
                injected: 0,
                rng: seed ^ fnv1a(name.as_bytes()),
            },
        );
        if prior.is_some() {
            return Err(err(format!("failpoint `{name}` configured twice")));
        }
    }
    if rules.is_empty() {
        return Err(err("schedule has no rules"));
    }
    Ok(Chaos { seed, spec: spec.to_string(), rules })
}

/// Installs a chaos schedule, replacing any previous one and resetting
/// all hit/injection counters.
pub fn install(seed: u64, spec: &str) -> Result<(), ChaosError> {
    let chaos = parse_spec(seed, spec)?;
    let mut guard = registry();
    INJECTED_TOTAL.store(0, Relaxed);
    *guard = Some(chaos);
    ENABLED.store(true, Relaxed);
    Ok(())
}

/// Installs the schedule from `SNNMAP_CHAOS` (format `<seed>:<spec>`),
/// if set. Returns `Ok(true)` when a schedule was installed, `Ok(false)`
/// when the variable is unset or empty.
pub fn install_from_env() -> Result<bool, ChaosError> {
    let raw = match std::env::var(ENV_VAR) {
        Ok(v) if !v.trim().is_empty() => v,
        _ => return Ok(false),
    };
    let (seed, spec) = raw
        .split_once(':')
        .ok_or_else(|| err(format!("{ENV_VAR} must look like `<seed>:<spec>`")))?;
    let seed: u64 = seed
        .trim()
        .parse()
        .map_err(|_| err(format!("bad seed `{}` in {ENV_VAR}", seed.trim())))?;
    install(seed, spec)?;
    Ok(true)
}

/// Disarms every failpoint and drops the schedule (and its counters).
pub fn uninstall() {
    ENABLED.store(false, Relaxed);
    *registry() = None;
    INJECTED_TOTAL.store(0, Relaxed);
}

/// Whether a schedule is currently installed.
pub fn enabled() -> bool {
    ENABLED.load(Relaxed)
}

/// Consults the failpoint `name`. Returns `Some(fault)` when the
/// schedule says this hit must fail. The disabled fast path is a single
/// relaxed atomic load.
pub fn check(name: &str) -> Option<Fault> {
    if !ENABLED.load(Relaxed) {
        return None;
    }
    let mut guard = registry();
    let rule = guard.as_mut()?.rules.get_mut(name)?;
    rule.hits += 1;
    let fire = match rule.trigger {
        Trigger::Always => true,
        Trigger::Nth(n) => rule.hits == n,
        Trigger::From(n) => rule.hits >= n,
        Trigger::OneIn(n) => splitmix64(&mut rule.rng) % n == 0,
    };
    if !fire {
        return None;
    }
    rule.injected += 1;
    INJECTED_TOTAL.fetch_add(1, Relaxed);
    let cut = splitmix64(&mut rule.rng);
    Some(Fault { kind: rule.kind, cut })
}

/// Total faults injected since the schedule was installed.
pub fn injected_total() -> u64 {
    INJECTED_TOTAL.load(Relaxed)
}

/// Per-failpoint `(name, hits, injected)` counters, sorted by name.
pub fn injection_counts() -> Vec<(String, u64, u64)> {
    registry()
        .as_ref()
        .map(|c| {
            c.rules
                .iter()
                .map(|(name, r)| (name.clone(), r.hits, r.injected))
                .collect()
        })
        .unwrap_or_default()
}

/// The installed `(seed, spec)`, if any.
pub fn active_spec() -> Option<(u64, String)> {
    registry().as_ref().map(|c| (c.seed, c.spec.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is process-global; tests that install schedules must
    /// not interleave.
    static LOCK: Mutex<()> = Mutex::new(());

    fn serial() -> MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn disabled_is_inert() {
        let _guard = serial();
        uninstall();
        assert!(!enabled());
        assert!(check("spool.write").is_none());
        assert_eq!(injected_total(), 0);
        assert!(active_spec().is_none());
    }

    #[test]
    fn always_fires_every_hit() {
        let _guard = serial();
        install(1, "spool.write=enospc").unwrap();
        for _ in 0..3 {
            let f = check("spool.write").expect("always fires");
            assert_eq!(f.kind, FaultKind::Enospc);
        }
        assert!(check("spool.rename").is_none(), "unconfigured points stay clean");
        assert_eq!(injected_total(), 3);
        assert_eq!(injection_counts(), vec![("spool.write".to_string(), 3, 3)]);
        uninstall();
    }

    #[test]
    fn nth_and_from_triggers() {
        let _guard = serial();
        install(1, "a=fail@#2,b=fail@#2+").unwrap();
        assert!(check("a").is_none());
        assert!(check("a").is_some());
        assert!(check("a").is_none(), "#N fires exactly once");
        assert!(check("b").is_none());
        assert!(check("b").is_some());
        assert!(check("b").is_some(), "#N+ keeps firing");
        uninstall();
    }

    #[test]
    fn one_in_n_is_seed_deterministic() {
        let _guard = serial();
        let run = |seed: u64| -> Vec<bool> {
            install(seed, "p=torn@1in3").unwrap();
            let fired = (0..64).map(|_| check("p").is_some()).collect();
            uninstall();
            fired
        };
        let a = run(7);
        assert_eq!(a, run(7), "same seed, same schedule");
        assert_ne!(a, run(8), "different seed, different schedule");
        let fires = a.iter().filter(|&&f| f).count();
        assert!((8..=40).contains(&fires), "1in3 over 64 hits fired {fires} times");
    }

    #[test]
    fn torn_cuts_are_seeded_and_cover_the_range() {
        let _guard = serial();
        install(11, "w=torn").unwrap();
        let cuts: Vec<usize> =
            (0..32).map(|_| check("w").unwrap().cut_for(10)).collect();
        assert!(cuts.iter().all(|&c| c <= 10));
        assert!(cuts.iter().collect::<std::collections::BTreeSet<_>>().len() > 3);
        uninstall();
        install(11, "w=torn").unwrap();
        let replay: Vec<usize> =
            (0..32).map(|_| check("w").unwrap().cut_for(10)).collect();
        assert_eq!(cuts, replay, "reinstalling the same seed replays the cuts");
        uninstall();
    }

    #[test]
    fn install_replaces_and_resets() {
        let _guard = serial();
        install(1, "a=fail").unwrap();
        check("a");
        install(1, "b=fail").unwrap();
        assert_eq!(injected_total(), 0, "reinstall resets counters");
        assert!(check("a").is_none(), "old rules are gone");
        assert!(check("b").is_some());
        uninstall();
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "",
            "a",
            "a=",
            "=fail",
            "a=explode",
            "a=fail@",
            "a=fail@#0",
            "a=fail@1in0",
            "a=fail@sometimes",
            "a=fail,a=torn",
            "a=fail,,b=torn",
        ] {
            assert!(parse_spec(1, bad).is_err(), "spec `{bad}` must be rejected");
        }
        let e = parse_spec(1, "a=explode").unwrap_err();
        assert!(e.to_string().contains("explode"), "{e}");
    }

    #[test]
    fn fault_names_round_trip() {
        for kind in [
            FaultKind::Enospc,
            FaultKind::Torn,
            FaultKind::Fail,
            FaultKind::Short,
            FaultKind::Disconnect,
        ] {
            assert_eq!(FaultKind::parse(kind.as_str()), Some(kind));
        }
    }
}
