//! Chaos-aware filesystem seam.
//!
//! Production code routes its spool/checkpoint I/O through these
//! wrappers instead of `std::fs`. With no schedule installed each call
//! is one relaxed atomic load plus the real `std::fs` call; with a
//! schedule armed, the named failpoint can turn the call into a disk
//! realistically misbehaving: `enospc` before any byte lands, `torn`
//! persisting a seeded prefix, `fail`/`disconnect` erroring outright,
//! `short` handing back truncated-but-valid reads.

use std::fs;
use std::io;
use std::path::Path;

use crate::{check, Fault, FaultKind};

/// `ENOSPC` the way the kernel reports it, so callers exercising
/// `raw_os_error` / `ErrorKind` mapping see the real thing.
fn enospc() -> io::Error {
    #[cfg(unix)]
    {
        io::Error::from_raw_os_error(28)
    }
    #[cfg(not(unix))]
    {
        io::Error::other("injected ENOSPC: no space left on device")
    }
}

fn injected(fp: &str, what: &str) -> io::Error {
    io::Error::other(format!("injected {what} at failpoint `{fp}`"))
}

/// `fs::write` behind the failpoint `fp`.
///
/// `torn` writes the seeded prefix and then errors — exactly the state
/// a crash mid-`write(2)` leaves behind. `enospc` and `fail` error
/// before any byte lands.
pub fn write(fp: &str, path: &Path, bytes: &[u8]) -> io::Result<()> {
    if let Some(fault) = check(fp) {
        match fault.kind {
            FaultKind::Enospc => return Err(enospc()),
            FaultKind::Torn => {
                fs::write(path, &bytes[..fault.cut_for(bytes.len())])?;
                return Err(injected(fp, "torn write"));
            }
            FaultKind::Fail | FaultKind::Short | FaultKind::Disconnect => {
                return Err(injected(fp, "write failure"));
            }
        }
    }
    fs::write(path, bytes)
}

/// `fs::rename` behind the failpoint `fp`. A rename is atomic on POSIX,
/// so every injected fault leaves the target untouched: the fault model
/// is "the rename did not happen", never "half a rename".
pub fn rename(fp: &str, from: &Path, to: &Path) -> io::Result<()> {
    if let Some(fault) = check(fp) {
        let what = match fault.kind {
            FaultKind::Enospc => return Err(enospc()),
            _ => "rename failure",
        };
        return Err(injected(fp, what));
    }
    fs::rename(from, to)
}

/// `fs::read_to_string` behind the failpoint `fp`.
///
/// `short` and `torn` return `Ok` with a seeded prefix (clipped to a
/// char boundary) — the dangerous case, because the caller sees no
/// error and must reject the content on its own. Other faults error.
pub fn read_to_string(fp: &str, path: &Path) -> io::Result<String> {
    let fault = check(fp);
    match fault {
        Some(Fault { kind: FaultKind::Short | FaultKind::Torn, .. }) => {
            let mut text = fs::read_to_string(path)?;
            let fault = fault.expect("matched Some above");
            let mut cut = fault.cut_for(text.len());
            while !text.is_char_boundary(cut) {
                cut -= 1;
            }
            text.truncate(cut);
            Ok(text)
        }
        Some(Fault { kind: FaultKind::Enospc, .. }) => Err(enospc()),
        Some(_) => Err(injected(fp, "read failure")),
        None => fs::read_to_string(path),
    }
}

/// `fs::create_dir` behind the failpoint `fp`. Injected faults map to
/// "the directory was not created".
pub fn create_dir(fp: &str, path: &Path) -> io::Result<()> {
    if let Some(fault) = check(fp) {
        if fault.kind == FaultKind::Enospc {
            return Err(enospc());
        }
        return Err(injected(fp, "mkdir failure"));
    }
    fs::create_dir(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    static LOCK: Mutex<()> = Mutex::new(());

    fn serial() -> MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("snnmap_chaos_cfs");
        fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn passthrough_when_disabled() {
        let _guard = serial();
        crate::uninstall();
        let path = tmp("plain.txt");
        write("spool.write", &path, b"hello").unwrap();
        assert_eq!(read_to_string("spool.read", &path).unwrap(), "hello");
        let to = tmp("plain2.txt");
        rename("spool.rename", &path, &to).unwrap();
        assert_eq!(fs::read_to_string(&to).unwrap(), "hello");
        fs::remove_file(&to).unwrap();
    }

    #[test]
    fn enospc_leaves_no_bytes() {
        let _guard = serial();
        crate::install(3, "w=enospc").unwrap();
        let path = tmp("enospc.txt");
        let _ = fs::remove_file(&path);
        let e = write("w", &path, b"payload").unwrap_err();
        #[cfg(unix)]
        assert_eq!(e.raw_os_error(), Some(28), "{e}");
        assert!(!path.exists(), "ENOSPC must not create the file");
        crate::uninstall();
    }

    #[test]
    fn torn_write_persists_a_prefix_then_errors() {
        let _guard = serial();
        crate::install(9, "w=torn").unwrap();
        let payload = b"0123456789abcdef";
        let path = tmp("torn.txt");
        let e = write("w", &path, payload).unwrap_err();
        assert!(e.to_string().contains("torn"), "{e}");
        let on_disk = fs::read(&path).unwrap();
        assert!(on_disk.len() <= payload.len());
        assert_eq!(&payload[..on_disk.len()], &on_disk[..], "prefix, not garbage");
        crate::uninstall();
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn short_read_truncates_on_char_boundary() {
        let _guard = serial();
        let path = tmp("short.txt");
        fs::write(&path, "héllo wörld, héllo wörld").unwrap();
        crate::install(5, "r=short").unwrap();
        for _ in 0..32 {
            let text = read_to_string("r", &path).unwrap();
            assert!("héllo wörld, héllo wörld".starts_with(&text));
        }
        crate::uninstall();
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn failed_rename_leaves_source_intact() {
        let _guard = serial();
        let from = tmp("ren_src.txt");
        let to = tmp("ren_dst.txt");
        fs::write(&from, "data").unwrap();
        let _ = fs::remove_file(&to);
        crate::install(2, "mv=fail").unwrap();
        assert!(rename("mv", &from, &to).is_err());
        assert!(from.exists() && !to.exists(), "failed rename moves nothing");
        crate::uninstall();
        fs::remove_file(&from).unwrap();
    }

    #[test]
    fn create_dir_fault() {
        let _guard = serial();
        let dir = tmp("newdir");
        let _ = fs::remove_dir(&dir);
        crate::install(4, "mk=fail").unwrap();
        assert!(create_dir("mk", &dir).is_err());
        assert!(!dir.exists());
        crate::uninstall();
        create_dir("mk", &dir).unwrap();
        fs::remove_dir(&dir).unwrap();
    }
}
