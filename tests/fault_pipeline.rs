//! End-to-end acceptance test for fault-aware mapping: a seeded 5%
//! uniform fault rate on the paper's Table 2 target hardware still
//! yields a complete, injective, validated placement with monotone FD
//! energy descent — and the fault map itself is deterministic per seed.

use snnmap::core::{repair, validate, Mapper};
use snnmap::hw::{presets, FaultInjector, FaultMap, FaultPattern, Mesh};
use snnmap::model::generators::table3_suite;

fn five_percent_faults(mesh: Mesh) -> FaultMap {
    let pattern = FaultPattern::Uniform { core_rate: 0.05, link_rate: 0.05 };
    FaultInjector::new(7).inject(mesh, &pattern).expect("valid rate")
}

#[test]
fn fault_aware_pipeline_meets_acceptance_criteria() {
    // LeNet-ImageNet: 251 clusters, partitioned against the Table 2
    // per-core constraints, on a mesh with ~5% headroom over the
    // cluster count once 5% of cores are dead.
    let bench = table3_suite()
        .into_iter()
        .find(|b| b.row.name == "LeNet-ImageNet")
        .expect("Table 3 contains LeNet-ImageNet");
    let pcn = bench.pcn(42).expect("benchmark generates");
    let mesh = Mesh::new(17, 17).expect("valid mesh");
    let faults = five_percent_faults(mesh);
    assert!(pcn.num_clusters() as usize <= mesh.len() - faults.num_dead_cores() as usize);

    let outcome = Mapper::builder()
        .fault_map(faults.clone())
        .build()
        .map(&pcn, mesh)
        .expect("fault-aware mapping succeeds");
    let placement = &outcome.placement;

    // Complete and injective.
    assert_eq!(placement.placed_count(), pcn.num_clusters());
    assert!(placement.check_consistency().is_ok(), "{:?}", placement.check_consistency());

    // Zero clusters on faulty cores.
    for (cluster, coord) in placement.iter_placed() {
        assert!(!faults.is_dead(coord), "cluster {cluster} placed on dead core {coord}");
    }

    // FD ran and never increased energy.
    let stats = outcome.fd_stats.expect("proposed mapper runs FD");
    assert!(
        stats.final_energy <= stats.initial_energy + 1e-9,
        "energy rose: {} -> {}",
        stats.initial_energy,
        stats.final_energy
    );

    // validate() agrees. (Capacity is checked without CON_spc: Table 3
    // benchmarks deliberately keep over-budget fan-in singletons, see
    // `snnmap_model::partition` — the neuron budget is what Algorithm 1
    // enforces.)
    let (constraints, _cost) = presets::paper_target();
    let report = validate(&pcn, placement, Some(&faults), None).expect("inputs compatible");
    assert!(report.is_ok(), "{report}");
    for cluster in 0..pcn.num_clusters() {
        assert!(pcn.neurons_in(cluster) <= constraints.neurons_per_core);
    }

    // repair() on a valid placement has nothing to do.
    let mut repaired = placement.clone();
    let outcome =
        repair(&pcn, &mut repaired, Some(&faults), None).expect("repair runs");
    assert!(outcome.moved.is_empty() && outcome.unrepaired.is_empty());
}

#[test]
fn fault_injection_is_deterministic_per_seed() {
    let mesh = Mesh::new(17, 17).expect("valid mesh");
    let a = five_percent_faults(mesh);
    let b = five_percent_faults(mesh);
    assert_eq!(a, b);
    assert!(a.num_dead_cores() > 0, "5% of 289 cores must kill some");
}
