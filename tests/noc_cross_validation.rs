//! Integration tests validating the analytic metrics (§3.3) against the
//! cycle-level NoC simulator.

use snnmap::metrics::congestion_map;
use snnmap::noc::{NocConfig, NocSim, PcnTraffic, Routing};
use snnmap::prelude::*;

#[test]
fn simulated_latency_matches_analytic_at_low_load() {
    let (_, cost) = snnmap::hw::presets::paper_target();
    let pcn = snnmap::model::generators::random_pcn(64, 4.0, 11).expect("builds");
    let mesh = Mesh::new(8, 8).expect("mesh");
    let placement = Mapper::builder().build().map(&pcn, mesh).expect("maps").placement;
    let analytic = evaluate(&pcn, &placement, cost).expect("eval");

    let scale = 0.01 * mesh.len() as f64 / pcn.total_traffic();
    let mut sim = NocSim::new(
        mesh,
        NocConfig { routing: Routing::RandomMinimal, seed: 5, queue_capacity: 16 },
    );
    let mut traffic = PcnTraffic::new(&pcn, &placement, scale, 5);
    traffic.run(&mut sim, 5_000);
    let s = sim.stats();
    assert!(s.delivered > 100, "need a meaningful sample, got {}", s.delivered);
    // L_w = 0.01 per hop separates the models by under 1%; queueing at
    // this load adds a similarly small amount.
    let rel = (s.average_latency() - analytic.avg_latency).abs() / analytic.avg_latency;
    assert!(
        rel < 0.10,
        "simulated {} vs analytic {} ({:.1}% off)",
        s.average_latency(),
        analytic.avg_latency,
        rel * 100.0
    );
}

#[test]
fn expe_congestion_map_correlates_with_simulated_traversals() {
    let pcn = snnmap::model::generators::random_pcn(100, 4.0, 13).expect("builds");
    let mesh = Mesh::new(10, 10).expect("mesh");
    let placement = Mapper::builder().build().map(&pcn, mesh).expect("maps").placement;

    let analytic = congestion_map(&pcn, &placement).expect("eval");
    let scale = 0.02 * mesh.len() as f64 / pcn.total_traffic();
    let mut sim = NocSim::new(
        mesh,
        NocConfig { routing: Routing::RandomMinimal, seed: 3, queue_capacity: 16 },
    );
    let mut traffic = PcnTraffic::new(&pcn, &placement, scale, 3);
    traffic.run(&mut sim, 10_000);
    let sim_map = &sim.stats().traversals;

    // Pearson correlation between analytic Con(x, y) and simulated
    // traversal counts.
    let a = analytic.map();
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = sim_map.iter().map(|&x| x as f64).sum::<f64>() / n;
    let (mut cov, mut va, mut vb) = (0.0, 0.0, 0.0);
    for (&x, &y) in a.iter().zip(sim_map) {
        let (dx, dy) = (x - ma, y as f64 - mb);
        cov += dx * dy;
        va += dx * dx;
        vb += dy * dy;
    }
    let corr = cov / (va.sqrt() * vb.sqrt());
    assert!(corr > 0.9, "congestion correlation too weak: {corr}");
}

#[test]
fn xy_and_random_minimal_deliver_identical_payload_counts() {
    let pcn = snnmap::model::generators::random_pcn(36, 3.0, 17).expect("builds");
    let mesh = Mesh::new(6, 6).expect("mesh");
    let placement = Mapper::builder().build().map(&pcn, mesh).expect("maps").placement;
    let scale = 0.05 * mesh.len() as f64 / pcn.total_traffic();

    let deliver = |routing| {
        let mut sim = NocSim::new(mesh, NocConfig { routing, seed: 7, queue_capacity: 32 });
        // Same traffic seed: identical injection sequence as long as no
        // rejections occur (large queues at low load).
        let mut traffic = PcnTraffic::new(&pcn, &placement, scale, 9);
        traffic.run(&mut sim, 2_000);
        assert_eq!(sim.stats().rejected, 0, "load should be below rejection");
        sim.stats().delivered
    };
    assert_eq!(deliver(Routing::Xy), deliver(Routing::RandomMinimal));
}
