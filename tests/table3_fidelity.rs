//! Fidelity tests: the generated benchmark suite tracks the paper's
//! Table 3 within documented tolerances (the guarantees EXPERIMENTS.md
//! reports are enforced here, so regressions in the generators fail CI).

use snnmap::model::generators::table3_suite;

/// Benchmarks small enough to build in test time (everything except the
/// 28-second DNN_4B; its shape is pinned by the same closed forms the
/// smaller DNNs verify).
fn testable() -> impl Iterator<Item = snnmap::model::generators::Table3Benchmark> {
    table3_suite().into_iter().filter(|b| b.row.name != "DNN_4B")
}

#[test]
fn neuron_totals_within_5_percent() {
    for b in testable() {
        let g = b.layer_graph(0);
        let ours = g.num_neurons() as f64;
        let paper = b.row.neurons as f64;
        assert!(
            (ours - paper).abs() / paper < 0.05,
            "{}: {ours} neurons vs paper {paper}",
            b.row.name
        );
    }
}

#[test]
fn synapse_totals_within_10_percent() {
    for b in testable() {
        let g = b.layer_graph(0);
        let ours = g.num_synapses() as f64;
        let paper = b.row.synapses as f64;
        assert!(
            (ours - paper).abs() / paper < 0.10,
            "{}: {ours} synapses vs paper {paper}",
            b.row.name
        );
    }
}

#[test]
fn cluster_counts_within_2_percent() {
    for b in testable() {
        let pcn = b.pcn(0).expect("builds");
        let ours = pcn.num_clusters() as f64;
        let paper = b.row.clusters as f64;
        assert!(
            (ours - paper).abs() / paper <= 0.02,
            "{}: {ours} clusters vs paper {paper}",
            b.row.name
        );
    }
}

#[test]
fn synthetic_dnns_match_table3_exactly() {
    // Rows whose printed Table 3 values are exact (the larger DNNs print
    // rounded values like "4M"; their closed forms are checked in the
    // generator unit tests instead).
    for b in table3_suite() {
        if b.row.name != "DNN_65K" && b.row.name != "DNN_16M" {
            continue;
        }
        let pcn = b.pcn(0).expect("builds");
        assert_eq!(pcn.num_clusters() as u64, b.row.clusters, "{}", b.row.name);
        assert_eq!(pcn.num_connections(), b.row.connections, "{}", b.row.name);
    }
}

#[test]
fn connection_counts_within_3x() {
    // The least constrained column (depends on the unspecified neuron
    // ordering of the paper's conversion flow); hold the order of
    // magnitude.
    for b in testable() {
        let pcn = b.pcn(0).expect("builds");
        let ours = pcn.num_connections() as f64;
        let paper = b.row.connections as f64;
        let ratio = if ours > paper { ours / paper } else { paper / ours };
        assert!(ratio <= 3.0, "{}: {ours} connections vs paper {paper}", b.row.name);
    }
}

#[test]
fn every_benchmark_fits_the_paper_mesh_within_one_side() {
    // Our cluster counts track the paper's within 2%, which can tip a
    // count just over the paper's exact square (e.g. InceptionV3: 3621 on
    // the paper's 60x60 = 3600); the harness then sizes 61x61. Assert we
    // never need more than one extra row/column.
    for b in testable() {
        let pcn = b.pcn(0).expect("builds");
        let side = b.row.mesh_side as u64 + 1;
        assert!(
            pcn.num_clusters() as u64 <= side * side,
            "{}: {} clusters cannot fit {side}x{side}",
            b.row.name,
            pcn.num_clusters()
        );
    }
}
