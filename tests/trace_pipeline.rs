//! End-to-end tests of the observability layer: the traced pipeline must
//! produce the same placement as the untraced one, the JSONL rendering
//! must validate against the versioned schema, and the telemetry must be
//! internally consistent with the returned statistics.

use snnmap::core::Mapper;
use snnmap::hw::Mesh;
use snnmap::io::validate_trace;
use snnmap::model::generators::random_pcn;
use snnmap::trace::{JsonlSink, MemorySink, Sha256, TraceEvent};

fn placement_sha256(p: &snnmap::hw::Placement, clusters: u32) -> String {
    let mut h = Sha256::new();
    for c in 0..clusters {
        let coord = p.coord_of(c).expect("complete placement");
        h.update(&coord.x.to_le_bytes());
        h.update(&coord.y.to_le_bytes());
    }
    h.finalize_hex()
}

#[test]
fn traced_and_untraced_pipelines_are_sha256_identical() {
    let pcn = random_pcn(400, 4.0, 11).unwrap();
    let mesh = Mesh::new(20, 20).unwrap();
    let mapper = Mapper::builder().max_iterations(25).threads(2).build();

    let plain = mapper.map(&pcn, mesh).unwrap();
    let mut sink = MemorySink::new();
    let traced = mapper.map_traced(&pcn, mesh, &mut sink).unwrap();

    assert_eq!(
        placement_sha256(&plain.placement, 400),
        placement_sha256(&traced.placement, 400),
        "tracing perturbed the placement"
    );

    // The telemetry agrees with the returned statistics.
    let stats = traced.fd_stats.expect("FD ran");
    let sweeps: Vec<_> = sink
        .events()
        .iter()
        .filter_map(|e| match e {
            TraceEvent::FdSweep(s) => Some(s.clone()),
            _ => None,
        })
        .collect();
    assert_eq!(sweeps.len() as u64, stats.iterations);
    assert_eq!(sweeps.iter().map(|s| s.applied).sum::<u64>(), stats.swaps);
    let last_energy = sweeps.last().expect("at least one sweep").energy;
    assert_eq!(last_energy.to_bits(), stats.final_energy.to_bits());
}

#[test]
fn jsonl_stream_from_the_real_pipeline_validates_and_replays_byte_stably() {
    let pcn = random_pcn(200, 4.0, 5).unwrap();
    let mesh = Mesh::new(15, 15).unwrap();
    let mapper = Mapper::builder().max_iterations(10).build();

    let run = || {
        let mut sink = JsonlSink::new(Vec::new()).with_timing(false);
        mapper.map_traced(&pcn, mesh, &mut sink).unwrap();
        String::from_utf8(sink.finish().unwrap()).unwrap()
    };
    let (a, b) = (run(), run());
    assert_eq!(a, b, "timing-off replays must be byte-identical");

    let summary = validate_trace(&a).unwrap();
    assert_eq!(summary.count("run"), 1);
    assert_eq!(summary.count("fd_config"), 1);
    assert_eq!(summary.count("fd_done"), 1);
    assert!(summary.count("fd_sweep") >= 1);
    assert!(summary.count("phase") >= 3, "toposort, init, fd spans expected");
    assert!(!summary.timing);

    // With timing on, the same stream still validates.
    let mut sink = JsonlSink::new(Vec::new());
    mapper.map_traced(&pcn, mesh, &mut sink).unwrap();
    let timed = String::from_utf8(sink.finish().unwrap()).unwrap();
    assert!(validate_trace(&timed).unwrap().timing);
}

#[test]
fn noc_counters_flow_through_the_same_sink() {
    use snnmap::noc::{NocConfig, NocSim, PcnTraffic};

    let pcn = random_pcn(36, 3.0, 9).unwrap();
    let mesh = Mesh::new(6, 6).unwrap();
    let outcome = Mapper::builder().max_iterations(5).build().map(&pcn, mesh).unwrap();

    let mut sim = NocSim::new(mesh, NocConfig::default());
    let mut traffic = PcnTraffic::new(&pcn, &outcome.placement, 1.0, 42);
    traffic.run(&mut sim, 200);

    let mut sink = MemorySink::new();
    sim.record_trace(&mut sink);
    let [TraceEvent::Noc(n)] = sink.events() else {
        panic!("expected exactly one noc event, got {:?}", sink.events());
    };
    let stats = sim.stats();
    assert_eq!(n.injected, stats.injected);
    assert_eq!(n.delivered, stats.delivered);
    assert!(n.cycles >= 200);
}
