//! End-to-end integration tests across the workspace crates: SNN
//! generation → partitioning → placement → metrics.

use snnmap::core::{InitialPlacement, Mapper, Potential};
use snnmap::metrics::energy;
use snnmap::model::{partition, PartitionPolicy};
use snnmap::prelude::*;

fn paper_constraints() -> (CoreConstraints, CostModel) {
    snnmap::hw::presets::paper_target()
}

#[test]
fn full_pipeline_on_materialized_dnn() {
    // Materialize -> Algorithm 1 -> HSC+FD -> metrics, checking every
    // interface contract along the way.
    let (con, cost) = paper_constraints();
    let snn =
        DnnSpec::new(&[512, 1024, 512, 128]).expect("valid shape").build(1).expect("small enough");
    let pcn = partition(&snn, con).expect("partitions");
    assert_eq!(pcn.total_neurons(), snn.num_neurons() as u64);
    assert!(
        (pcn.total_traffic() + pcn.intra_traffic() - snn.total_traffic()).abs()
            < 1e-6 * snn.total_traffic()
    );

    let mesh = Mesh::square_for(pcn.num_clusters() as u64).expect("fits");
    let outcome = Mapper::builder().build().map(&pcn, mesh).expect("maps");
    outcome.placement.check_consistency().expect("valid placement");
    let report = evaluate(&pcn, &outcome.placement, cost).expect("evaluates");
    assert!(report.energy > 0.0);
    assert!(report.avg_latency <= report.max_latency);
    assert!(report.avg_congestion <= report.max_congestion);
}

#[test]
fn analytic_and_materialized_paths_agree_end_to_end() {
    // The same application through both partitioning paths must produce
    // the same PCN shape and, after identical mapping, identical energy.
    let (con, cost) = paper_constraints();
    let spec = DnnSpec::new(&[300, 700, 300]).expect("valid shape");
    let graph = spec.layer_graph(3);
    let snn = graph.materialize(10_000_000).expect("small enough");

    let via_explicit = partition(&snn, con).expect("explicit");
    let via_analytic =
        graph.partition_analytic(con, PartitionPolicy::strict()).expect("analytic");
    assert_eq!(via_explicit.num_clusters(), via_analytic.num_clusters());
    assert_eq!(via_explicit.num_connections(), via_analytic.num_connections());

    let mesh = Mesh::square_for(via_explicit.num_clusters() as u64).expect("fits");
    let mapper = Mapper::builder().build();
    let a = mapper.map(&via_explicit, mesh).expect("maps");
    let b = mapper.map(&via_analytic, mesh).expect("maps");
    let ea = energy(&via_explicit, &a.placement, cost).expect("eval");
    let eb = energy(&via_analytic, &b.placement, cost).expect("eval");
    assert!((ea - eb).abs() < 1e-6 * ea.max(1.0), "{ea} vs {eb}");
}

#[test]
fn proposed_beats_every_curve_init_on_every_small_benchmark() {
    // §5.2's central comparison, run over the small end of the Table 3
    // suite: the full pipeline must dominate raw curve placements.
    let (_, cost) = paper_constraints();
    for bench in snnmap::model::generators::table3_suite() {
        if bench.row.clusters > 300 {
            continue;
        }
        let pcn = bench.pcn(1).expect("builds");
        let mesh = Mesh::square_for(pcn.num_clusters() as u64).expect("fits");
        let proposed = Mapper::builder().build().map(&pcn, mesh).expect("maps");
        let e_prop = energy(&pcn, &proposed.placement, cost).expect("eval");
        for init in [
            InitialPlacement::ZigZag,
            InitialPlacement::Circle,
            InitialPlacement::Random(9),
        ] {
            let other = Mapper::builder()
                .initial_placement(init)
                .fd_enabled(false)
                .build()
                .map(&pcn, mesh)
                .expect("maps");
            let e_other = energy(&pcn, &other.placement, cost).expect("eval");
            assert!(
                e_prop <= e_other * 1.001,
                "{}: proposed {e_prop} vs {init:?} {e_other}",
                bench.row.name
            );
        }
    }
}

#[test]
fn fd_monotonically_improves_any_initialization() {
    let (_, cost) = paper_constraints();
    let pcn = snnmap::model::generators::random_pcn(100, 5.0, 3).expect("builds");
    let mesh = Mesh::new(10, 10).expect("mesh");
    for init in [
        InitialPlacement::Hilbert,
        InitialPlacement::ZigZag,
        InitialPlacement::Circle,
        InitialPlacement::Serpentine,
        InitialPlacement::Random(4),
    ] {
        let before = Mapper::builder()
            .initial_placement(init)
            .fd_enabled(false)
            .build()
            .map(&pcn, mesh)
            .expect("maps");
        let after = Mapper::builder()
            .initial_placement(init)
            .potential(Potential::energy_model(cost))
            .build()
            .map(&pcn, mesh)
            .expect("maps");
        let eb = energy(&pcn, &before.placement, cost).expect("eval");
        let ea = energy(&pcn, &after.placement, cost).expect("eval");
        assert!(ea <= eb + 1e-9, "{init:?}: FD worsened energy {eb} -> {ea}");
    }
}

#[test]
fn lenet_mnist_matches_paper_pcn_shape() {
    let bench = &snnmap::model::generators::table3_suite()[7];
    assert_eq!(bench.row.name, "LeNet-MNIST");
    let pcn = bench.pcn(0).expect("builds");
    assert_eq!(pcn.num_clusters() as u64, bench.row.clusters);
    let mesh = Mesh::square_for(pcn.num_clusters() as u64).expect("fits");
    assert_eq!(mesh.rows(), bench.row.mesh_side);
}
