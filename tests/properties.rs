//! Workspace-level property-based tests on the core invariants.

use proptest::prelude::*;
use snnmap::core::{force_directed, hsc_placement, toposort, FdConfig, Potential};
use snnmap::curves::{Gilbert, Hilbert, Serpentine, SpaceFillingCurve, Spiral};
use snnmap::metrics::{energy, evaluate};
use snnmap::model::generators::random_pcn;
use snnmap::model::partition;
use snnmap::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Serpentine and spiral traversals are continuous permutations on
    /// any mesh; the generalized Hilbert curve is a permutation with at
    /// most one diagonal junction.
    #[test]
    fn curves_are_continuous_permutations(rows in 1u16..40, cols in 1u16..40) {
        let mesh = Mesh::new(rows, cols).unwrap();
        for curve in [&Serpentine as &dyn SpaceFillingCurve, &Spiral] {
            let order = curve.traversal(mesh).unwrap();
            snnmap::curves::assert_valid_continuous_traversal(mesh, &order);
        }
        let order = Gilbert.traversal(mesh).unwrap();
        snnmap::curves::assert_valid_traversal_with_jumps(mesh, &order, 2, 1);
    }

    /// Hilbert d2xy/xy2d are inverse bijections on pow2 squares.
    #[test]
    fn hilbert_bijection(k in 0u32..6, d in 0u64..4096) {
        let side = 1u32 << k;
        let d = d % (side as u64 * side as u64);
        let (x, y) = Hilbert::d2xy(side, d);
        prop_assert!(x < side && y < side);
        prop_assert_eq!(Hilbert::xy2d(side, x, y), d);
    }

    /// Partitioning preserves neurons and traffic and respects CON_npc.
    #[test]
    fn partition_invariants(
        l1 in 1u32..40, l2 in 1u32..40, l3 in 1u32..40, npc in 1u32..64
    ) {
        let snn = DnnSpec::new(&[l1 as u64, l2 as u64, l3 as u64]).unwrap().build(0).unwrap();
        let pcn = partition(&snn, CoreConstraints::new(npc, u64::MAX).unwrap()).unwrap();
        prop_assert_eq!(pcn.total_neurons(), (l1 + l2 + l3) as u64);
        for c in 0..pcn.num_clusters() {
            prop_assert!(pcn.neurons_in(c) <= npc);
        }
        let total = pcn.total_traffic() + pcn.intra_traffic();
        prop_assert!((total - snn.total_traffic()).abs() < 1e-6 * snn.total_traffic().max(1.0));
    }

    /// Toposort is a permutation respecting DAG edges for layered nets.
    #[test]
    fn toposort_respects_layered_edges(seed in 0u64..500) {
        let pcn = random_pcn(60, 3.0, seed).unwrap();
        let order = toposort(&pcn);
        let mut seen = vec![false; 60];
        for &c in &order {
            prop_assert!(!seen[c as usize]);
            seen[c as usize] = true;
        }
        prop_assert!(seen.into_iter().all(|s| s));
    }

    /// FD never increases energy and leaves a consistent placement, for
    /// every potential and random graph.
    #[test]
    fn fd_descends_energy(seed in 0u64..200, pot in 0usize..4) {
        let (_, cost) = snnmap::hw::presets::paper_target();
        let potential = [
            Potential::L1,
            Potential::L1Squared,
            Potential::L2Squared,
            Potential::energy_model(cost),
        ][pot];
        let pcn = random_pcn(49, 4.0, seed).unwrap();
        let mesh = Mesh::new(7, 7).unwrap();
        let mut placement = hsc_placement(&pcn, mesh).unwrap();
        let before = energy(&pcn, &placement, cost).unwrap();
        let stats = force_directed(
            &pcn,
            &mut placement,
            &FdConfig { potential, ..FdConfig::default() },
        )
        .unwrap();
        prop_assert!(stats.final_energy <= stats.initial_energy + 1e-9);
        placement.check_consistency().unwrap();
        if matches!(potential, Potential::EnergyModel { .. }) {
            let after = energy(&pcn, &placement, cost).unwrap();
            prop_assert!(after <= before + 1e-9);
        }
    }

    /// Metric sanity on arbitrary placements: avg <= max, congestion
    /// coverage is 1 for exact evaluation, and metrics scale linearly in
    /// edge weights.
    #[test]
    fn metric_sanity(seed in 0u64..200) {
        let (_, cost) = snnmap::hw::presets::paper_target();
        let pcn = random_pcn(30, 3.0, seed).unwrap();
        let mesh = Mesh::new(6, 6).unwrap();
        let placement = hsc_placement(&pcn, mesh).unwrap();
        let r = evaluate(&pcn, &placement, cost).unwrap();
        prop_assert!(r.avg_latency <= r.max_latency + 1e-12);
        prop_assert!(r.avg_congestion <= r.max_congestion + 1e-12);
        prop_assert_eq!(r.congestion_coverage, 1.0);
    }
}
