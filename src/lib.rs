//! # snnmap
//!
//! A reproduction of *Mapping Very Large Scale Spiking Neuron Network to
//! Neuromorphic Hardware* (ASPLOS '23): Hilbert space-filling-curve initial
//! placement plus Force-Directed refinement for mapping partitioned SNN
//! clusters onto 2D-mesh neuromorphic hardware, together with the hardware
//! model, workload generators, quality metrics, baseline mappers, and a NoC
//! simulator used for evaluation.
//!
//! This facade crate re-exports the workspace crates under stable paths:
//!
//! * [`hw`] — mesh, constraints, cost model, placements,
//! * [`model`] — SNN graphs, partitioner, PCN, workload generators,
//! * [`curves`] — Hilbert / gilbert / ZigZag / spiral space-filling curves,
//! * [`metrics`] — the five §3.3 placement-quality metrics,
//! * [`core`] — toposort, Hilbert initial placement, the FD engine, the
//!   end-to-end [`Mapper`](snnmap_core::Mapper),
//! * [`baselines`] — Random, TrueNorth, DFSynthesizer, and PSO mappers,
//! * [`noc`] — a cycle-driven 2D-mesh NoC simulator,
//! * [`io`] — `.pcn` edge-list and placement-JSON file formats,
//! * [`lif`] — a leaky integrate-and-fire simulator for measuring spike
//!   traffic densities by execution,
//! * [`trace`] — the zero-cost-when-disabled observability layer: trace
//!   sinks, the versioned JSONL event schema, allocation counters.
//!
//! # Quickstart
//!
//! ```
//! use snnmap::prelude::*;
//!
//! // A small synthetic DNN on a toy core with 64 neurons per core.
//! let (_, cost) = snnmap::hw::presets::paper_target();
//! let snn = DnnSpec::new(&[64, 128, 64])?.build(42)?;
//! let pcn = partition(&snn, CoreConstraints::new(64, 1 << 20).unwrap())?;
//! let mesh = Mesh::square_for(pcn.num_clusters() as u64)?;
//!
//! let mapper = Mapper::builder().potential(Potential::L2Squared).build();
//! let outcome = mapper.map(&pcn, mesh)?;
//! let report = evaluate(&pcn, &outcome.placement, cost)?;
//! assert!(report.energy > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use snnmap_baselines as baselines;
pub use snnmap_core as core;
pub use snnmap_curves as curves;
pub use snnmap_hw as hw;
pub use snnmap_metrics as metrics;
pub use snnmap_model as model;
pub use snnmap_io as io;
pub use snnmap_lif as lif;
pub use snnmap_noc as noc;
pub use snnmap_trace as trace;

/// Commonly used items, for glob import in examples and applications.
pub mod prelude {
    pub use snnmap_core::{Mapper, Potential};
    pub use snnmap_curves::{Gilbert, Hilbert, SpaceFillingCurve, Spiral, ZigZag};
    pub use snnmap_hw::{Coord, CoreConstraints, CostModel, Mesh, Placement};
    pub use snnmap_metrics::{evaluate, MetricsReport};
    pub use snnmap_model::generators::{CnnSpec, DnnSpec, RealisticModel};
    pub use snnmap_model::{partition, Pcn, SnnNetwork};
}
