//! Drive the cycle-level NoC simulator with traffic from a mapped SNN
//! and compare simulated behaviour against the analytic metrics.
//!
//! ```sh
//! cargo run --release --example noc_simulation
//! ```

use snnmap::core::InitialPlacement;
use snnmap::noc::{NocConfig, NocSim, PcnTraffic, Routing};
use snnmap::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A mid-size application: LeNet on ImageNet-scale inputs.
    let (constraints, cost) = snnmap::hw::presets::paper_target();
    let _ = constraints;
    let pcn = RealisticModel::LeNetImageNet
        .layer_graph(3)
        .partition_analytic(
            CoreConstraints::new(4096, u64::MAX).unwrap(),
            snnmap::model::PartitionPolicy::table3(),
        )?;
    let mesh = Mesh::square_for(pcn.num_clusters() as u64)?;
    println!("{pcn} on {mesh}\n");

    for (name, mapper) in [
        (
            "random",
            Mapper::builder()
                .initial_placement(InitialPlacement::Random(5))
                .fd_enabled(false)
                .build(),
        ),
        ("proposed", Mapper::builder().build()),
    ] {
        let placement = mapper.map(&pcn, mesh)?.placement;
        let analytic = evaluate(&pcn, &placement, cost)?;

        // Low offered load so queueing stays negligible and the analytic
        // (contention-free) model applies.
        let scale = 0.01 * mesh.len() as f64 / pcn.total_traffic();
        let mut sim = NocSim::new(
            mesh,
            NocConfig { routing: Routing::RandomMinimal, seed: 1, queue_capacity: 16 },
        );
        let mut traffic = PcnTraffic::new(&pcn, &placement, scale, 2);
        traffic.run(&mut sim, 3_000);
        let s = sim.stats();

        println!("{name} placement:");
        println!("  analytic avg latency   {:.3}", analytic.avg_latency);
        println!("  simulated avg latency  {:.3}", s.average_latency());
        println!(
            "  simulated congestion   avg {:.2}, max {} traversals over {} delivered spikes",
            s.average_traversals(),
            s.max_traversals(),
            s.delivered
        );
        println!();
    }
    Ok(())
}
