//! Measure spike traffic by actually executing the SNN, then map with
//! the measured densities — the paper's `w_S` semantics made literal.
//!
//! The generators default to seeded-random spike densities; here we
//! instead run LeNet-MNIST under a leaky integrate-and-fire simulation
//! with Poisson input drive, count every neuron's spikes, and feed the
//! measured per-synapse densities through partition → placement →
//! metrics. The comparison shows how much placement quality depends on
//! weighting the real hot paths.
//!
//! ```sh
//! cargo run --release --example measured_traffic
//! ```

use snnmap::lif::{measure_traffic, LifConfig};
use snnmap::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // LeNet-MNIST topology, edge weights now interpreted as synaptic
    // strengths for the dynamics (scaled to a regime with activity).
    let topology = RealisticModel::LeNetMnist.build(3)?;
    println!("topology: {topology}");

    let cfg = LifConfig { input_rate: 0.5, input_strength: 1.2, ..LifConfig::default() };
    let measured = measure_traffic(&topology, &cfg, 5_000, 11)?;
    let active = measured.spike_rates.iter().filter(|&&r| r > 0.0).count();
    println!(
        "simulated {} steps: {} spikes total, {}/{} neurons active, peak rate {:.3}",
        measured.steps,
        measured.total_spikes,
        active,
        topology.num_neurons(),
        measured.spike_rates.iter().cloned().fold(0.0, f64::max),
    );

    // Map both versions of the application and compare.
    let con = CoreConstraints::new(256, 64 * 1024).unwrap();
    let cost = CostModel::paper_target();
    for (name, snn) in [("uniform-ish weights", &topology), ("measured densities", &measured.network)]
    {
        let pcn = partition(snn, con)?;
        let mesh = Mesh::square_for(pcn.num_clusters() as u64)?;
        let outcome = Mapper::builder().build().map(&pcn, mesh)?;
        let report = evaluate(&pcn, &outcome.placement, cost)?;
        println!(
            "{name:<22} {} connections, energy {:.4e}, avg latency {:.3}",
            pcn.num_connections(),
            report.energy,
            report.avg_latency
        );
    }
    println!(
        "\nThe PCN topology is identical; only the traffic weights differ. With measured\n\
         densities the optimizer concentrates on the paths that actually carry spikes,\n\
         which is exactly the information the paper's `w_S` provides."
    );
    Ok(())
}
