//! Map the same application onto different published hardware profiles
//! (Table 1): per-core capacities change the partition, which changes
//! the cluster network, which changes the placement problem.
//!
//! ```sh
//! cargo run --release --example custom_hardware
//! ```

use snnmap::hw::presets;
use snnmap::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One application, materialized once: LeNet on MNIST.
    let snn = RealisticModel::LeNetMnist.build(7)?;
    println!("application: {snn}\n");
    let cost = CostModel::paper_target();

    println!(
        "{:<14} {:>14} {:>10} {:>12} {:>14} {:>10}",
        "platform", "neurons/core", "clusters", "mesh", "energy", "avg lat"
    );
    for platform in presets::all_platforms() {
        let con = platform.core_constraints();
        let pcn = partition(&snn, con)?;
        let mesh = Mesh::square_for(pcn.num_clusters() as u64)?;
        let outcome = Mapper::builder().build().map(&pcn, mesh)?;
        let report = evaluate(&pcn, &outcome.placement, cost)?;
        println!(
            "{:<14} {:>14} {:>10} {:>12} {:>14.0} {:>10.3}",
            platform.name,
            platform.neurons_per_core,
            pcn.num_clusters(),
            mesh.to_string(),
            report.energy,
            report.avg_latency,
        );
    }
    println!(
        "\nSmaller cores mean more clusters and a larger mesh: total interconnect energy\n\
         grows, and the placement algorithm has more to win. The same pipeline serves\n\
         every profile — only `CoreConstraints` changes."
    );
    Ok(())
}
