//! ResNet mapping study: the paper's Figure 8 workflow in miniature.
//!
//! Builds the ResNet benchmark (28.5 M neurons, 11.6 B synapses) through
//! the analytic layer-level partitioner, then compares initial-placement
//! strategies and potential fields on the resulting 7000-cluster PCN.
//!
//! ```sh
//! cargo run --release --example resnet_study
//! ```

use std::time::Instant;

use snnmap::core::{InitialPlacement, Mapper, Potential};
use snnmap::model::PartitionPolicy;
use snnmap::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = RealisticModel::ResNet.layer_graph(0);
    println!("building {graph}");
    let pcn = graph.partition_analytic(
        CoreConstraints::new(4096, u64::MAX).unwrap(),
        PartitionPolicy::table3(),
    )?;
    let mesh = Mesh::square_for(pcn.num_clusters() as u64)?;
    println!("PCN: {pcn} on {mesh}\n");

    let cost = CostModel::paper_target();
    let configs: Vec<(&str, Mapper)> = vec![
        (
            "random",
            Mapper::builder()
                .initial_placement(InitialPlacement::Random(1))
                .fd_enabled(false)
                .build(),
        ),
        ("HSC only", Mapper::builder().fd_enabled(false).build()),
        ("HSC + FD(u_a)", Mapper::builder().potential(Potential::L1).build()),
        ("HSC + FD(u_c)", Mapper::builder().potential(Potential::L2Squared).build()),
        (
            "HSC + FD(energy)",
            Mapper::builder().potential(Potential::energy_model(cost)).build(),
        ),
    ];

    let mut baseline_energy = None;
    for (name, mapper) in configs {
        let t = Instant::now();
        let outcome = mapper.map(&pcn, mesh)?;
        let energy = snnmap::metrics::energy(&pcn, &outcome.placement, cost)?;
        let base = *baseline_energy.get_or_insert(energy);
        println!(
            "{name:<18} energy {energy:>14.0}  ({:>6.3} of random)  in {:.2?}",
            energy / base,
            t.elapsed()
        );
    }
    Ok(())
}
