//! Quickstart: map a small SNN onto a mesh and inspect the quality
//! metrics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use snnmap::core::InitialPlacement;
use snnmap::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe an SNN application: a small dense network, materialized
    //    neuron by neuron (G_SNN of the paper, §3.2).
    let snn = DnnSpec::new(&[256, 512, 512, 128])?.build(42)?;
    println!("application: {snn}");

    // 2. Partition it into per-core clusters with Algorithm 1 under the
    //    paper's target hardware constraints (Table 2).
    let (constraints, cost) = snnmap::hw::presets::paper_target();
    let pcn = partition(&snn, constraints)?;
    println!("partitioned:  {pcn}");

    // 3. Pick the smallest square mesh that fits and run the paper's
    //    mapper: Hilbert-curve initial placement + Force-Directed
    //    refinement (u_c potential, lambda = 0.3).
    let mesh = Mesh::square_for(pcn.num_clusters() as u64)?;
    let outcome = Mapper::builder().build().map(&pcn, mesh)?;
    let stats = outcome.fd_stats.expect("FD enabled by default");
    println!(
        "mapped onto {mesh}: {} FD iterations, {} swaps, energy {:.0} -> {:.0}",
        stats.iterations, stats.swaps, stats.initial_energy, stats.final_energy
    );

    // 4. Evaluate all five quality metrics (§3.3) and compare against a
    //    random placement.
    let report = evaluate(&pcn, &outcome.placement, cost)?;
    let random = Mapper::builder()
        .initial_placement(InitialPlacement::Random(7))
        .fd_enabled(false)
        .build()
        .map(&pcn, mesh)?;
    let baseline = evaluate(&pcn, &random.placement, cost)?;
    let rel = report.normalized_to(&baseline);
    println!("\nmetric            proposed    vs random");
    println!("energy            {:>10.0}  {:>8.3}", report.energy, rel.energy);
    println!("avg latency       {:>10.3}  {:>8.3}", report.avg_latency, rel.avg_latency);
    println!("max latency       {:>10.2}  {:>8.3}", report.max_latency, rel.max_latency);
    println!("avg congestion    {:>10.1}  {:>8.3}", report.avg_congestion, rel.avg_congestion);
    println!("max congestion    {:>10.1}  {:>8.3}", report.max_congestion, rel.max_congestion);
    Ok(())
}
