//! Billion-scale mapping: the paper's headline experiment.
//!
//! Maps DNN_4B — 4.3 billion neurons, 1.1 quadrillion synapses, one
//! million clusters on a 1024×1024 mesh — end to end. The neuron-level
//! graph is never materialized (it cannot be, anywhere); the PCN is
//! derived analytically from the layered structure, exactly as first-fit
//! partitioning would produce it.
//!
//! The paper reports 26 seconds on a 40-core Xeon (single-threaded
//! algorithm); expect the same order of magnitude here.
//!
//! ```sh
//! cargo run --release --example billion_scale            # DNN_268M (default)
//! cargo run --release --example billion_scale -- --4b    # the full DNN_4B
//! ```

use std::time::Instant;

use snnmap::metrics::{evaluate_with, EvalOptions};
use snnmap::model::PartitionPolicy;
use snnmap::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let full = std::env::args().any(|a| a == "--4b");
    let spec = if full { DnnSpec::dnn_4b() } else { DnnSpec::dnn_268m() };
    println!("benchmark: {}", spec.name());

    let t = Instant::now();
    let graph = spec.layer_graph(0);
    println!(
        "layer graph: {} neurons, {} synapses ({:.2?})",
        graph.num_neurons(),
        graph.num_synapses(),
        t.elapsed()
    );

    let t = Instant::now();
    let pcn = graph.partition_analytic(
        CoreConstraints::new(4096, u64::MAX).unwrap(),
        PartitionPolicy::table3(),
    )?;
    println!(
        "analytic partition: {} clusters, {} connections ({:.2?})",
        pcn.num_clusters(),
        pcn.num_connections(),
        t.elapsed()
    );

    let mesh = Mesh::square_for(pcn.num_clusters() as u64)?;
    let t = Instant::now();
    let outcome = Mapper::builder().build().map(&pcn, mesh)?;
    let stats = outcome.fd_stats.expect("FD enabled");
    println!(
        "mapped onto {mesh} in {:.2?} (init {:.2?}, FD {:.2?}; {} iterations, {} swaps)",
        t.elapsed(),
        outcome.init_elapsed,
        outcome.fd_elapsed,
        stats.iterations,
        stats.swaps
    );
    println!(
        "FD energy: {:.3e} -> {:.3e} ({:.1}% reduction)",
        stats.initial_energy,
        stats.final_energy,
        100.0 * (1.0 - stats.final_energy / stats.initial_energy)
    );

    let cost = CostModel::paper_target();
    let t = Instant::now();
    let report = evaluate_with(
        &pcn,
        &outcome.placement,
        cost,
        EvalOptions { congestion_sample: Some((200_000, 0)) },
    )?;
    println!("metrics ({:.2?}): {report:#?}", t.elapsed());
    Ok(())
}
